//! Minimal in-tree stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! benchmark groups with `sample_size`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros — over a simple wall-clock measurement loop:
//! each benchmark is auto-calibrated to a target time, run `sample_size`
//! times, and the mean/min per-iteration latency is printed. No statistics,
//! no HTML reports.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `group/name/parameter` style id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

trait IntoBenchName {
    fn into_bench_name(self) -> String;
}

impl IntoBenchName for BenchmarkId {
    fn into_bench_name(self) -> String {
        self.name
    }
}

impl IntoBenchName for &str {
    fn into_bench_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchName for String {
    fn into_bench_name(self) -> String {
        self
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    target: Duration,
}

impl Bencher {
    /// Times `routine`, auto-calibrating the iteration count.
    pub fn iter<T, R: FnMut() -> T>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that fills ~1/sample_count of
        // the target measurement time.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target / (self.sample_count as u32) || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no measurement)");
            return;
        }
        let per_iter = |d: &Duration| d.as_nanos() as f64 / self.iters_per_sample as f64;
        let mean = self.samples.iter().map(per_iter).sum::<f64>() / self.samples.len() as f64;
        let min = self
            .samples
            .iter()
            .map(per_iter)
            .fold(f64::INFINITY, f64::min);
        println!(
            "{name:<40} mean {:>12} min {:>12}",
            fmt_nanos(mean),
            fmt_nanos(min)
        );
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The top-level harness.
pub struct Criterion {
    sample_size: usize,
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            target: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("\n== group {name}");
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            target: self.target,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, self.target, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    target: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchNameSealed,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id.into_bench_name_sealed());
        run_bench(&name, self.sample_size, self.target, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id.name);
        run_bench(&name, self.sample_size, self.target, |b| f(b, input));
        self
    }

    /// Ends the group (reports are emitted eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// Sealed name conversion so `&str`, `String`, and [`BenchmarkId`] all work
/// as `bench_function` ids, as in real criterion.
pub trait IntoBenchNameSealed {
    #[doc(hidden)]
    fn into_bench_name_sealed(self) -> String;
}

impl<T: IntoBenchName> IntoBenchNameSealed for T {
    fn into_bench_name_sealed(self) -> String {
        self.into_bench_name()
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, target: Duration, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_count: sample_size,
        target,
    };
    f(&mut bencher);
    bencher.report(name);
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
