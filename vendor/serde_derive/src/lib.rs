//! Derive macros for the in-tree `serde` stub.
//!
//! A deliberately small, dependency-free implementation: the input item is
//! parsed with a hand-rolled scanner over `proc_macro::TokenTree`s (no
//! `syn`/`quote`), and the generated impls are assembled as source strings.
//! Supported shapes — which cover everything in this workspace:
//!
//! - non-generic structs with named fields, tuple structs, unit structs;
//! - non-generic enums with unit, tuple (incl. newtype), and struct
//!   variants.
//!
//! Field/variant attributes (`#[serde(...)]`) are not supported and the
//! macro panics on generics, so misuse fails at compile time rather than
//! silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Item {
    is_enum: bool,
    name: String,
    /// For structs: single entry keyed by the struct name.
    variants: Vec<(String, Fields)>,
}

/// Derives `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item {
                is_enum: false,
                name: name.clone(),
                variants: vec![(name, fields)],
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item {
                is_enum: true,
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    *i += 1;
                }
                *i += 1; // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

/// Splits a field/variant list on top-level commas, tracking `<...>` depth
/// so commas inside generic arguments don't count. `->`/`>>` sequences are
/// plain puncts, so `-` immediately before `>` is ignored for depth.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    let mut prev_dash = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' if !prev_dash && angle > 0 => angle -= 1,
                ',' if angle == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|tokens| {
            let mut i = 0usize;
            skip_attrs_and_vis(&tokens, &mut i);
            match &tokens[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    split_top_level(stream)
        .into_iter()
        .map(|tokens| {
            let mut i = 0usize;
            skip_attrs_and_vis(&tokens, &mut i);
            let name = match &tokens[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other}"),
            };
            i += 1;
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                None => Fields::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                    panic!("serde_derive stub: explicit discriminants are not supported")
                }
                other => panic!("serde_derive: unexpected variant body {other:?}"),
            };
            (name, fields)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

const SER_ERR: &str = "<S::Error as ::serde::ser::Error>::custom";

fn value_expr(var: &str) -> String {
    format!("match ::serde::to_value({var}) {{ Ok(v) => v, Err(e) => return Err({SER_ERR}(e)) }}")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if item.is_enum {
        let arms: Vec<String> = item
            .variants
            .iter()
            .map(|(vname, fields)| match fields {
                Fields::Unit => format!(
                    "{name}::{vname} => serializer.serialize_value(\
                     ::serde::Value::String(\"{vname}\".to_string())),"
                ),
                Fields::Tuple(1) => format!(
                    "{name}::{vname}(f0) => {{\
                       let mut m = ::serde::Map::new();\
                       m.insert(\"{vname}\".to_string(), {val});\
                       serializer.serialize_value(::serde::Value::Object(m))\
                     }},",
                    val = value_expr("f0"),
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let items: Vec<String> = binds.iter().map(|b| value_expr(b)).collect();
                    format!(
                        "{name}::{vname}({binds}) => {{\
                           let mut m = ::serde::Map::new();\
                           m.insert(\"{vname}\".to_string(), \
                                    ::serde::Value::Array(vec![{items}]));\
                           serializer.serialize_value(::serde::Value::Object(m))\
                         }},",
                        binds = binds.join(", "),
                        items = items.join(", "),
                    )
                }
                Fields::Named(fields) => {
                    let binds = fields.join(", ");
                    let inserts: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "inner.insert(\"{f}\".to_string(), {val});",
                                val = value_expr(f)
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => {{\
                           let mut inner = ::serde::Map::new();\
                           {inserts}\
                           let mut m = ::serde::Map::new();\
                           m.insert(\"{vname}\".to_string(), ::serde::Value::Object(inner));\
                           serializer.serialize_value(::serde::Value::Object(m))\
                         }},",
                        inserts = inserts.join(""),
                    )
                }
            })
            .collect();
        format!("match self {{ {} }}", arms.join(" "))
    } else {
        match &item.variants[0].1 {
            Fields::Unit => "serializer.serialize_value(::serde::Value::Null)".to_string(),
            Fields::Tuple(1) => format!("serializer.serialize_value({})", value_expr("&self.0")),
            Fields::Tuple(n) => {
                let items: Vec<String> =
                    (0..*n).map(|i| value_expr(&format!("&self.{i}"))).collect();
                format!(
                    "serializer.serialize_value(::serde::Value::Array(vec![{}]))",
                    items.join(", ")
                )
            }
            Fields::Named(fields) => {
                let inserts: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "m.insert(\"{f}\".to_string(), {val});",
                            val = value_expr(&format!("&self.{f}"))
                        )
                    })
                    .collect();
                format!(
                    "let mut m = ::serde::Map::new(); {} \
                     serializer.serialize_value(::serde::Value::Object(m))",
                    inserts.join("")
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\
         impl ::serde::Serialize for {name} {{\
           fn serialize<S: ::serde::Serializer>(&self, serializer: S)\
             -> ::std::result::Result<S::Ok, S::Error> {{ {body} }}\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

const DE_ERR: &str = "<D::Error as ::serde::de::Error>::custom";

fn from_expr(var: &str, context: &str) -> String {
    format!(
        "match ::serde::from_value({var}) {{ Ok(v) => v, \
         Err(e) => return Err({DE_ERR}(format!(\"{context}: {{e}}\"))) }}"
    )
}

fn named_struct_body(path: &str, fields: &[String], map_var: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: {{ let v = match {map_var}.remove(\"{f}\") {{ Some(v) => v, \
                 None => return Err({DE_ERR}(\"missing field `{f}` in {path}\")) }}; \
                 {from} }},",
                from = from_expr("v", &format!("field `{f}` of {path}"))
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(" "))
}

fn tuple_body(path: &str, n: usize, items_var: &str) -> String {
    let inits: Vec<String> = (0..n)
        .map(|i| {
            format!(
                "{{ let v = it.next().expect(\"length checked\"); {from} }},",
                from = from_expr("v", &format!("field {i} of {path}"))
            )
        })
        .collect();
    format!(
        "{{ if {items_var}.len() != {n} {{ \
           return Err({DE_ERR}(format!(\"expected {n} fields for {path}, found {{}}\", \
           {items_var}.len()))); }} \
           let mut it = {items_var}.into_iter(); {path}({inits}) }}",
        inits = inits.join(" ")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if item.is_enum {
        let unit_arms: Vec<String> = item
            .variants
            .iter()
            .filter(|(_, f)| matches!(f, Fields::Unit))
            .map(|(vname, _)| format!("\"{vname}\" => Ok({name}::{vname}),"))
            .collect();
        let data_arms: Vec<String> = item
            .variants
            .iter()
            .filter(|(_, f)| !matches!(f, Fields::Unit))
            .map(|(vname, fields)| {
                let path = format!("{name}::{vname}");
                match fields {
                    Fields::Unit => unreachable!(),
                    Fields::Tuple(1) => format!(
                        "\"{vname}\" => Ok({path}({})),",
                        from_expr("payload", &format!("variant {path}"))
                    ),
                    Fields::Tuple(n) => format!(
                        "\"{vname}\" => match payload {{\
                           ::serde::Value::Array(items) => Ok({body}),\
                           other => Err({DE_ERR}(format!(\
                             \"expected array for {path}, found {{:?}}\", other))),\
                         }},",
                        body = tuple_body(&path, *n, "items"),
                    ),
                    Fields::Named(fields) => format!(
                        "\"{vname}\" => match payload {{\
                           ::serde::Value::Object(mut inner) => Ok({body}),\
                           other => Err({DE_ERR}(format!(\
                             \"expected object for {path}, found {{:?}}\", other))),\
                         }},",
                        body = named_struct_body(&path, fields, "inner"),
                    ),
                }
            })
            .collect();
        format!(
            "match value {{\
               ::serde::Value::String(s) => match s.as_str() {{\
                 {unit_arms}\
                 other => Err({DE_ERR}(format!(\"unknown variant `{{other}}` of {name}\"))),\
               }},\
               ::serde::Value::Object(mut map) => {{\
                 let (variant, payload) = match map.pop_first() {{\
                   Some(kv) if map.is_empty() => kv,\
                   _ => return Err({DE_ERR}(\
                     \"expected single-key object for enum {name}\")),\
                 }};\
                 match variant.as_str() {{\
                   {data_arms}\
                   other => Err({DE_ERR}(format!(\"unknown variant `{{other}}` of {name}\"))),\
                 }}\
               }},\
               other => Err({DE_ERR}(format!(\
                 \"expected string or object for enum {name}, found {{:?}}\", other))),\
             }}",
            unit_arms = unit_arms.join(" "),
            data_arms = data_arms.join(" "),
        )
    } else {
        match &item.variants[0].1 {
            Fields::Unit => format!(
                "match value {{\
                   ::serde::Value::Null => Ok({name}),\
                   other => Err({DE_ERR}(format!(\
                     \"expected null for unit struct {name}, found {{:?}}\", other))),\
                 }}"
            ),
            Fields::Tuple(1) => format!(
                "Ok({name}({}))",
                from_expr("value", &format!("newtype struct {name}"))
            ),
            Fields::Tuple(n) => format!(
                "match value {{\
                   ::serde::Value::Array(items) => Ok({body}),\
                   other => Err({DE_ERR}(format!(\
                     \"expected array for {name}, found {{:?}}\", other))),\
                 }}",
                body = tuple_body(name, *n, "items"),
            ),
            Fields::Named(fields) => format!(
                "match value {{\
                   ::serde::Value::Object(mut map) => Ok({body}),\
                   other => Err({DE_ERR}(format!(\
                     \"expected object for {name}, found {{:?}}\", other))),\
                 }}",
                body = named_struct_body(name, fields, "map"),
            ),
        }
    };
    format!(
        "#[automatically_derived]\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\
           fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\
             -> ::std::result::Result<Self, D::Error> {{\
             let value = deserializer.deserialize_value()?;\
             {body}\
           }}\
         }}"
    )
}
