//! Minimal in-tree stand-in for the `serde` serialization framework.
//!
//! The real `serde` streams values through a visitor-based data model; this
//! stub routes everything through an owned in-memory [`Value`] tree instead,
//! which is all the napmon workspace needs (small JSON documents: model
//! files, monitor snapshots, experiment reports). The public trait shapes —
//! `Serialize`, `Deserialize<'de>`, `Serializer`, `Deserializer<'de>`,
//! `ser::Error`, `de::Error` — match the real crate closely enough that the
//! workspace's hand-written impls (e.g. the BDD manager's) compile
//! unchanged.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// Map type used for JSON objects (ordered, so output is deterministic).
pub type Map = BTreeMap<String, Value>;

/// An exact-precision JSON number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer (preserves full `u64` range exactly).
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point (includes non-finite values).
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossy for 64-bit integers beyond 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(i) => u64::try_from(i).ok(),
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// An owned, self-describing value — the interchange format between
/// `Serialize` and `Deserialize` in this stub (re-exported by `serde_json`
/// as its `Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// `value["key"]` / `value[index]` access, as in `serde_json`.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(n) if n.as_f64() == *other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        matches!(self, Value::Number(n) if n.as_i64() == Some(i64::from(*other)))
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

/// Error raised while converting to or from a [`Value`].
#[derive(Debug, Clone)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// Serialization-side machinery.
pub mod ser {
    use std::fmt;

    /// Errors a [`crate::Serializer`] can produce.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from an arbitrary message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side machinery.
pub mod de {
    use std::fmt;

    /// Errors a [`crate::Deserializer`] can produce.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from an arbitrary message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// A data format that can consume any [`Value`].
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: ser::Error;

    /// Consumes one fully-built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can produce a [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Error type of the format.
    type Error: de::Error;

    /// Produces one fully-parsed value tree.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes an instance.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Identity serializer: yields the value tree itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Identity deserializer: hands out a pre-built value tree.
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn deserialize_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Propagates errors from custom `Serialize` impls (the built-in impls are
/// infallible).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Builds any deserializable type from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`ValueError`] when the tree does not match the target type.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}

fn unexpected<T>(expected: &str, got: &Value) -> Result<T, ValueError> {
    Err(ValueError(format!(
        "expected {expected}, found {}",
        got.kind()
    )))
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Number(Number::PosInt(*self as u64)))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.deserialize_value()?;
                match &v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| de::Error::custom(format!(
                            "number out of range for {}", stringify!($t)
                        ))),
                    _ => Err(de::Error::custom(format!(
                        "expected number, found {}", v.kind()
                    ))),
                }
            }
        }
    )*};
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                let number = if v >= 0 {
                    Number::PosInt(v as u64)
                } else {
                    Number::NegInt(v)
                };
                s.serialize_value(Value::Number(number))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.deserialize_value()?;
                match &v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| de::Error::custom(format!(
                            "number out of range for {}", stringify!($t)
                        ))),
                    _ => Err(de::Error::custom(format!(
                        "expected number, found {}", v.kind()
                    ))),
                }
            }
        }
    )*};
}

serialize_uint!(u8, u16, u32, u64, usize);
serialize_int!(i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Number(Number::Float(f64::from(*self))))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.deserialize_value()?;
                match &v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    _ => Err(de::Error::custom(format!(
                        "expected number, found {}", v.kind()
                    ))),
                }
            }
        }
    )*};
}

serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::String(s) => Ok(s),
            other => Err(de::Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => {
                let inner = to_value(v).map_err(ser::Error::custom)?;
                s.serialize_value(inner)
            }
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Null => Ok(None),
            other => from_value(other).map(Some).map_err(de::Error::custom),
        }
    }
}

fn seq_to_value<'a, T: Serialize + 'a>(
    items: impl Iterator<Item = &'a T>,
) -> Result<Value, ValueError> {
    let mut out = Vec::new();
    for item in items {
        out.push(to_value(item)?);
    }
    Ok(Value::Array(out))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter()).map_err(ser::Error::custom)?;
        s.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter()).map_err(ser::Error::custom)?;
        s.serialize_value(v)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter()).map_err(ser::Error::custom)?;
        s.serialize_value(v)
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(de::Error::custom))
                .collect(),
            other => Err(de::Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Deserialize::deserialize(d)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| de::Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize + Eq + Hash, S2: BuildHasher> Serialize for HashSet<T, S2> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter()).map_err(ser::Error::custom)?;
        s.serialize_value(v)
    }
}

impl<'de, T, S2> Deserialize<'de> for HashSet<T, S2>
where
    T: for<'a> Deserialize<'a> + Eq + Hash,
    S2: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(de::Error::custom))
                .collect(),
            other => Err(de::Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

fn key_to_string<K: Serialize>(key: &K) -> Result<String, ValueError> {
    match to_value(key)? {
        Value::String(s) => Ok(s),
        Value::Number(n) => Ok(match n {
            Number::PosInt(u) => u.to_string(),
            Number::NegInt(i) => i.to_string(),
            Number::Float(f) => f.to_string(),
        }),
        other => Err(ValueError(format!(
            "map key must be a string, found {}",
            other.kind()
        ))),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut map = Map::new();
        for (k, v) in self {
            let key = key_to_string(k).map_err(ser::Error::custom)?;
            map.insert(key, to_value(v).map_err(ser::Error::custom)?);
        }
        s.serialize_value(Value::Object(map))
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: for<'a> Deserialize<'a> + Ord,
    V: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Object(m) => m
                .into_iter()
                .map(|(k, v)| {
                    let key = from_value(Value::String(k)).map_err(de::Error::custom)?;
                    let value = from_value(v).map_err(de::Error::custom)?;
                    Ok((key, value))
                })
                .collect(),
            other => Err(de::Error::custom(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<K: Serialize, V: Serialize, S2: BuildHasher> Serialize for HashMap<K, V, S2> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut map = Map::new();
        for (k, v) in self {
            let key = key_to_string(k).map_err(ser::Error::custom)?;
            map.insert(key, to_value(v).map_err(ser::Error::custom)?);
        }
        s.serialize_value(Value::Object(map))
    }
}

impl<'de, K, V, S2> Deserialize<'de> for HashMap<K, V, S2>
where
    K: for<'a> Deserialize<'a> + Eq + Hash,
    V: for<'a> Deserialize<'a>,
    S2: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Object(m) => m
                .into_iter()
                .map(|(k, v)| {
                    let key = from_value(Value::String(k)).map_err(de::Error::custom)?;
                    let value = from_value(v).map_err(de::Error::custom)?;
                    Ok((key, value))
                })
                .collect(),
            other => Err(de::Error::custom(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(to_value(&self.$idx).map_err(|e| ser::Error::custom(e))?,)+
                ];
                s.serialize_value(Value::Array(items))
            }
        }
        impl<'de, $($name: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(d: De) -> Result<Self, De::Error> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match d.deserialize_value()? {
                    Value::Array(items) if items.len() == ARITY => {
                        let mut it = items.into_iter();
                        Ok(($(
                            {
                                let _ = $idx;
                                let item = it.next().expect("length checked");
                                from_value::<$name>(item).map_err(|e| de::Error::custom(e))?
                            },
                        )+))
                    }
                    other => Err(de::Error::custom(format!(
                        "expected array of length {}, found {}", ARITY, other.kind()
                    ))),
                }
            }
        }
    )+};
}

serialize_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.deserialize_value()
    }
}

/// Internal support used by `serde_derive`-generated code. Not part of the
/// public API contract.
#[doc(hidden)]
pub mod __private {
    pub use super::{
        from_value, to_value, unexpected_for_derive as unexpected, Map, Value, ValueError,
    };

    /// Extracts a required field from an object, with a typed error.
    pub fn take_field(
        map: &mut super::Map,
        ty: &str,
        field: &str,
    ) -> Result<super::Value, super::ValueError> {
        map.remove(field)
            .ok_or_else(|| super::ValueError(format!("missing field `{field}` in {ty}")))
    }
}

#[doc(hidden)]
pub fn unexpected_for_derive(expected: &str, got: &Value) -> ValueError {
    unexpected::<()>(expected, got).unwrap_err()
}
