//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, numeric [`Range`] strategies,
//! [`collection::vec`], and the `prop_assert!`/`prop_assert_eq!` macros.
//! Inputs are drawn from a deterministic per-test SplitMix64 stream, so
//! failures reproduce exactly; there is no shrinking.

use std::fmt;
use std::ops::Range;

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator backing all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one named test.
    pub fn for_test(name: &str) -> Self {
        // Stable FNV-1a over the test name: each test gets its own stream,
        // every run draws the same one.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, below)`.
    pub fn index(&mut self, below: usize) -> usize {
        assert!(below > 0, "index: empty range");
        let wide = (self.next_u64() as u128) * (below as u128);
        (wide >> 64) as usize
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                let offset = ((rng.next_u64() as u128) * span) >> 64;
                self.start + offset as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit() as f32
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Closed upper bound: scale by the next float above hi-lo so `hi`
        // itself is reachable (unit() < 1).
        lo + (hi - lo) * rng.unit()
    }
}

macro_rules! int_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let offset = ((rng.next_u64() as u128) * span) >> 64;
                lo + offset as $t
            }
        }
    )*};
}

int_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A constant strategy, as in real proptest.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating vectors whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s with the given element strategy and length spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.index(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use std::fmt;

    /// Strategy generating `Option`s from an inner strategy, `None` about
    /// a quarter of the time (as in real proptest's default weighting).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Option<T>` values: mostly `Some` drawn from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.index(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The commonly imported names.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{}` == `{}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{}` != `{}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))] // optional
///     #[test]
///     fn name(x in 0usize..10, v in collection::vec(-1.0..1.0f64, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!({ $config } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!({ $crate::ProptestConfig::default() } $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ({ $config:expr }) => {};
    (
        { $config:expr }
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut inputs: Vec<String> = Vec::new();
                $(
                    let value = $crate::Strategy::generate(&($strategy), &mut rng);
                    inputs.push(format!("  {} = {:?}", stringify!($arg), value));
                    let $arg = value;
                )*
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property `{}` failed on case {}/{}: {}\ninputs:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs.join("\n")
                    );
                }
            }
        }
        $crate::__proptest_fns!({ $config } $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0..5.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..5.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_spec(
            fixed in collection::vec(0.0..1.0f64, 4),
            ranged in collection::vec(0u32..10, 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((2..6).contains(&ranged.len()));
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
