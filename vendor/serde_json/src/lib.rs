//! Minimal in-tree stand-in for `serde_json`.
//!
//! Prints and parses JSON over the [`serde`] stub's owned [`Value`] tree.
//! Numbers round-trip exactly (`u64`/`i64` preserved as integers, floats via
//! Rust's shortest-round-trip formatting). Non-finite floats are emitted as
//! the bare tokens `Infinity` / `-Infinity` / `NaN` — a deliberate deviation
//! from the real crate (which emits `null`) so monitor snapshots containing
//! `±inf` bounds survive a round trip; only this workspace reads its own
//! files.

use serde::{Deserialize, Number, Serialize};
use std::fmt;

pub use serde::Value;

/// Error produced by JSON (de)serialization.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Propagates errors from custom `Serialize` impls.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Propagates errors from custom `Serialize` impls.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a tree that does not match the
/// target type.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let value = Parser::new(text).parse_document()?;
    serde::from_value(value).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        Number::Float(f) => {
            if f.is_nan() {
                out.push_str("NaN");
            } else if f == f64::INFINITY {
                out.push_str("Infinity");
            } else if f == f64::NEG_INFINITY {
                out.push_str("-Infinity");
            } else if f == f.trunc() && f.abs() < 1e15 {
                // Keep integral floats visibly floating-point ("1.0") so the
                // reader can distinguish them from integers.
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Number(Number::Float(f64::NAN))),
            Some(b'I') if self.eat_keyword("Infinity") => {
                Ok(Value::Number(Number::Float(f64::INFINITY)))
            }
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Value::Number(Number::Float(f64::NEG_INFINITY)))
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = serde::Map::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's documents; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(i) = rest.parse::<i64>().map(|v| -v) {
                    return Ok(Value::Number(Number::NegInt(i)));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<f64> = from_str("[1.5, -2.0, 3]").unwrap();
        assert_eq!(v, vec![1.5, -2.0, 3.0]);
        let s = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn u64_round_trips_exactly() {
        let big: u64 = 11091344671253066420;
        let s = to_string(&big).unwrap();
        assert_eq!(s, big.to_string());
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
    }

    #[test]
    fn non_finite_floats_round_trip() {
        let v = vec![f64::INFINITY, f64::NEG_INFINITY];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
        let nan: f64 = from_str("NaN").unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\"quote\"\tt".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn value_indexing_matches_serde_json() {
        let v: Value = from_str(r#"{"rates": {"dark": 0.95}, "xs": [1, 2]}"#).unwrap();
        assert_eq!(v["rates"]["dark"], 0.95);
        assert_eq!(v["xs"][1], 2.0);
        assert!(matches!(v["missing"], Value::Null));
    }
}
