//! Fixed-width ASCII tables for experiment output.

use std::fmt;

/// A simple left-aligned ASCII table.
///
/// ```
/// use napmon_eval::Table;
/// let mut t = Table::new(vec!["monitor".into(), "fp %".into()]);
/// t.row(vec!["min-max".into(), "0.62".into()]);
/// let s = t.to_string();
/// assert!(s.contains("monitor"));
/// assert!(s.contains("0.62"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for i in 0..cols {
                write!(f, " {:width$} |", cells[i], width = widths[i])?;
            }
            writeln!(f)
        };
        let rule = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        rule(f)?;
        write_row(f, &self.headers)?;
        rule(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        rule(f)
    }
}

/// Formats a rate as a percentage with three significant decimals
/// (`0.00125` → `"0.125%"`).
pub fn percent(rate: f64) -> String {
    format!("{:.3}%", rate * 100.0)
}

/// Formats seconds compactly (`0.01234` → `"12.3ms"`).
pub fn seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "column".into()]);
        t.row(vec!["longer".into(), "x".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        // rule, header, rule, row, rule
        assert_eq!(lines.len(), 5);
        assert!(
            lines.iter().all(|l| l.len() == lines[0].len()),
            "ragged table:\n{s}"
        );
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_is_enforced() {
        Table::new(vec!["a".into()]).row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn percent_formatting_matches_paper_style() {
        assert_eq!(percent(0.0062), "0.620%");
        assert_eq!(percent(0.00125), "0.125%");
        assert_eq!(percent(1.0), "100.000%");
    }

    #[test]
    fn seconds_formatting_scales() {
        assert_eq!(seconds(2.5), "2.50s");
        assert_eq!(seconds(0.0123), "12.3ms");
        assert_eq!(seconds(0.0000123), "12.3µs");
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new(vec!["h".into()]);
        assert!(t.is_empty());
        t.row(vec!["v".into()]);
        assert_eq!(t.len(), 1);
    }
}
