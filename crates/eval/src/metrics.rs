//! Warning-rate measurement.

use napmon_core::Monitor;
use napmon_nn::Network;

/// Fraction of `inputs` on which the monitor warns.
///
/// Against in-ODD data this is the **false-positive rate** (the paper's
/// headline metric); against out-of-ODD data it is the **detection rate**.
///
/// # Panics
///
/// Panics if `inputs` is empty or any input has the wrong dimension.
pub fn warn_rate<M: Monitor + ?Sized>(monitor: &M, net: &Network, inputs: &[Vec<f64>]) -> f64 {
    assert!(!inputs.is_empty(), "warn_rate over an empty input set");
    let warnings = inputs
        .iter()
        .filter(|x| {
            monitor
                .warns(net, x)
                .expect("inputs must match the network dimension")
        })
        .count();
    warnings as f64 / inputs.len() as f64
}

/// Mean per-query wall-clock time of the monitor in nanoseconds.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn mean_query_nanos<M: Monitor + ?Sized>(
    monitor: &M,
    net: &Network,
    inputs: &[Vec<f64>],
) -> f64 {
    assert!(!inputs.is_empty(), "timing over an empty input set");
    let start = std::time::Instant::now();
    let mut warned = 0usize;
    for x in inputs {
        if monitor
            .warns(net, x)
            .expect("inputs must match the network dimension")
        {
            warned += 1;
        }
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    // Keep the count observable so the loop cannot be optimized away.
    std::hint::black_box(warned);
    elapsed / inputs.len() as f64
}

/// Out-of-abstraction scores of a [`napmon_core::ScoredMonitor`] over an
/// input set.
///
/// # Panics
///
/// Panics if any input has the wrong dimension.
pub fn scores<M: napmon_core::ScoredMonitor + ?Sized>(
    monitor: &M,
    net: &Network,
    inputs: &[Vec<f64>],
) -> Vec<f64> {
    inputs
        .iter()
        .map(|x| {
            let features = monitor
                .extractor()
                .features(net, x)
                .expect("inputs must match the network");
            monitor.score_features(&features)
        })
        .collect()
}

/// One point of a receiver-operating-characteristic curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct RocPoint {
    /// Score threshold (warn when `score > threshold`).
    pub threshold: f64,
    /// False-positive rate at this threshold (in-distribution flagged).
    pub fpr: f64,
    /// True-positive rate at this threshold (out-of-distribution flagged).
    pub tpr: f64,
}

/// ROC curve of a quantitative monitor: `negative_scores` from
/// in-distribution data, `positive_scores` from OOD data. Points are
/// ordered by descending threshold (so FPR ascends).
///
/// # Panics
///
/// Panics if either score set is empty.
pub fn roc(negative_scores: &[f64], positive_scores: &[f64]) -> Vec<RocPoint> {
    assert!(
        !negative_scores.is_empty() && !positive_scores.is_empty(),
        "roc needs both score sets"
    );
    let mut thresholds: Vec<f64> = negative_scores
        .iter()
        .chain(positive_scores)
        .cloned()
        .collect();
    thresholds.sort_by(|a, b| b.partial_cmp(a).expect("scores are finite"));
    thresholds.dedup();
    let mut points = Vec::with_capacity(thresholds.len() + 1);
    // The "warn on everything" end of the curve.
    for &t in thresholds.iter().chain(std::iter::once(&f64::NEG_INFINITY)) {
        let fpr = negative_scores.iter().filter(|&&s| s > t).count() as f64
            / negative_scores.len() as f64;
        let tpr = positive_scores.iter().filter(|&&s| s > t).count() as f64
            / positive_scores.len() as f64;
        points.push(RocPoint {
            threshold: t,
            fpr,
            tpr,
        });
    }
    points
}

/// Area under a ROC curve produced by [`roc`] (trapezoidal rule).
///
/// # Panics
///
/// Panics if `points` has fewer than two entries.
pub fn auc(points: &[RocPoint]) -> f64 {
    assert!(points.len() >= 2, "auc needs at least two roc points");
    let mut area = 0.0;
    for w in points.windows(2) {
        area += (w[1].fpr - w[0].fpr) * 0.5 * (w[0].tpr + w[1].tpr);
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_core::{MonitorBuilder, MonitorKind};
    use napmon_nn::{Activation, LayerSpec, Network};
    use napmon_tensor::Prng;

    fn setup() -> (Network, Vec<Vec<f64>>) {
        let net = Network::seeded(3, 2, &[LayerSpec::dense(4, Activation::Relu)]);
        let mut rng = Prng::seed(5);
        let data: Vec<Vec<f64>> = (0..32).map(|_| rng.uniform_vec(2, -0.5, 0.5)).collect();
        (net, data)
    }

    #[test]
    fn training_data_has_zero_warn_rate() {
        let (net, data) = setup();
        let m = MonitorBuilder::new(&net, 2)
            .build(MonitorKind::min_max(), &data)
            .unwrap();
        assert_eq!(warn_rate(&m, &net, &data), 0.0);
    }

    #[test]
    fn far_data_has_full_warn_rate() {
        let (net, data) = setup();
        let m = MonitorBuilder::new(&net, 2)
            .build(MonitorKind::min_max(), &data)
            .unwrap();
        let far: Vec<Vec<f64>> = (0..8).map(|i| vec![100.0 + i as f64, -100.0]).collect();
        assert_eq!(warn_rate(&m, &net, &far), 1.0);
    }

    #[test]
    fn partial_rates_are_fractions() {
        let (net, data) = setup();
        let m = MonitorBuilder::new(&net, 2)
            .build(MonitorKind::min_max(), &data)
            .unwrap();
        let mut mixed = data[..4].to_vec();
        mixed.push(vec![100.0, -100.0]);
        assert!((warn_rate(&m, &net, &mixed) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn query_timing_is_positive() {
        let (net, data) = setup();
        let m = MonitorBuilder::new(&net, 2)
            .build(MonitorKind::pattern(), &data)
            .unwrap();
        assert!(mean_query_nanos(&m, &net, &data) > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty input set")]
    fn empty_input_set_panics() {
        let (net, data) = setup();
        let m = MonitorBuilder::new(&net, 2)
            .build(MonitorKind::min_max(), &data)
            .unwrap();
        warn_rate(&m, &net, &[]);
    }

    #[test]
    fn perfect_separation_gives_unit_auc() {
        let neg = vec![0.0, 0.0, 0.1];
        let pos = vec![1.0, 2.0, 3.0];
        let curve = roc(&neg, &pos);
        assert!((auc(&curve) - 1.0).abs() < 1e-12, "auc {}", auc(&curve));
    }

    #[test]
    fn identical_scores_give_half_auc() {
        let neg = vec![0.5; 10];
        let pos = vec![0.5; 10];
        let curve = roc(&neg, &pos);
        assert!((auc(&curve) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roc_endpoints_span_the_unit_square() {
        let neg = vec![0.0, 1.0, 2.0];
        let pos = vec![1.5, 2.5];
        let curve = roc(&neg, &pos);
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
        // FPR is non-decreasing along the curve.
        assert!(curve.windows(2).all(|w| w[0].fpr <= w[1].fpr));
    }

    #[test]
    fn monitor_scores_separate_near_from_far() {
        let (net, data) = setup();
        let m = MonitorBuilder::new(&net, 2)
            .build(MonitorKind::min_max(), &data)
            .unwrap();
        let far: Vec<Vec<f64>> = (0..8).map(|i| vec![50.0 + i as f64, -50.0]).collect();
        let neg = scores(&m, &net, &data);
        let pos = scores(&m, &net, &far);
        let curve = roc(&neg, &pos);
        assert!(auc(&curve) > 0.99, "auc {}", auc(&curve));
    }
}
