//! Online (streaming) metrics for long-lived monitoring.
//!
//! The batch harness in [`crate::metrics`] assumes the whole input set is
//! in hand; an *operation-time* monitor instead sees an unbounded stream
//! and must keep its statistics incrementally. [`OnlineStats`] maintains
//! count/min/max/mean/variance in O(1) memory via Welford's algorithm, and
//! merges across shards with the parallel-variance formula of Chan et al.,
//! so a sharded engine can aggregate per-worker statistics without ever
//! replaying the stream. [`OnlineRate`] is the streaming counterpart of
//! [`crate::metrics::warn_rate`].

use serde::{Deserialize, Serialize};

/// Streaming count/min/max/mean/variance accumulator (Welford).
///
/// ```
/// use napmon_eval::online::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!((s.min(), s.max()), (1.0, 3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's `M2`).
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one observation.
    pub fn record(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Absorbs everything another accumulator has seen (Chan et al.'s
    /// parallel merge) — the cross-shard aggregation primitive.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count = total;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (`0.0` while empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation (`0.0` while empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (`0.0` while empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance (`0.0` with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Streaming hit rate: the operation-time counterpart of
/// [`crate::metrics::warn_rate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineRate {
    trials: u64,
    hits: u64,
}

impl OnlineRate {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one trial.
    pub fn record(&mut self, hit: bool) {
        self.trials += 1;
        self.hits += u64::from(hit);
    }

    /// Absorbs another accumulator (cross-shard aggregation).
    pub fn merge(&mut self, other: &Self) {
        self.trials += other.trials;
        self.hits += other.hits;
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit fraction (`0.0` while empty).
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hits as f64 / self.trials as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_stats(xs: &[f64]) -> (f64, f64, f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (mean, var, min, max)
    }

    #[test]
    fn streaming_matches_batch_formulas() {
        let xs: Vec<f64> = (0..257)
            .map(|i| ((i * 37) % 101) as f64 / 7.0 - 3.0)
            .collect();
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let (mean, var, min, max) = batch_stats(&xs);
        assert_eq!(s.count(), xs.len() as u64);
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-9);
        assert_eq!(s.min(), min);
        assert_eq!(s.max(), max);
    }

    #[test]
    fn merge_equals_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        // Split into uneven shards, merge back.
        let mut merged = OnlineStats::new();
        for chunk in [&xs[..13], &xs[13..70], &xs[70..]] {
            let mut shard = OnlineStats::new();
            for &x in chunk {
                shard.record(x);
            }
            merged.merge(&shard);
        }
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
    }

    #[test]
    fn merge_handles_empty_sides() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.record(2.0);
        a.merge(&b); // empty <- nonempty
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 2.0);
        let empty = OnlineStats::new();
        a.merge(&empty); // nonempty <- empty
        assert_eq!(a.count(), 1);
        assert_eq!((a.min(), a.max()), (2.0, 2.0));
    }

    #[test]
    fn empty_stats_read_as_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn rate_counts_and_merges() {
        let mut r = OnlineRate::new();
        for i in 0..10 {
            r.record(i % 4 == 0);
        }
        assert_eq!(r.trials(), 10);
        assert_eq!(r.hits(), 3);
        assert!((r.rate() - 0.3).abs() < 1e-12);
        let mut other = OnlineRate::new();
        other.record(true);
        r.merge(&other);
        assert_eq!(r.trials(), 11);
        assert_eq!(r.hits(), 4);
        assert_eq!(OnlineRate::new().rate(), 0.0);
    }

    #[test]
    fn stats_serialize_round_trip() {
        let mut s = OnlineStats::new();
        s.record(1.5);
        s.record(-2.0);
        let json = serde_json::to_string(&s).unwrap();
        let back: OnlineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
