//! The end-to-end race-track experiment (E1/F2 of `EXPERIMENTS.md`).

use crate::metrics::{mean_query_nanos, warn_rate};
use napmon_absint::Domain;
use napmon_artifact::{ArtifactError, MonitorArtifact};
use napmon_core::{MonitorBuilder, MonitorKind, MonitorSpec, RobustConfig};
use napmon_data::ood::OodScenario;
use napmon_data::racetrack::{TrackConfig, TrackSampler};
use napmon_data::Dataset;
use napmon_nn::{Activation, LayerSpec, Loss, Network, Optimizer, Trainer};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Configuration of the race-track pipeline.
///
/// The defaults are test-sized; `RacetrackConfig::paper_scale()` matches
/// the settings used for `EXPERIMENTS.md`.
#[derive(Debug, Clone, PartialEq)]
pub struct RacetrackConfig {
    /// Master seed (data, init, training, evaluation all derive from it).
    pub seed: u64,
    /// Renderer/ODD settings.
    pub track: TrackConfig,
    /// Training-set size (the paper's `Dtr`).
    pub train_size: usize,
    /// Held-out in-ODD test-set size (false-positive measurement).
    pub test_size: usize,
    /// Out-of-ODD samples per scenario (detection measurement).
    pub ood_size: usize,
    /// Hidden dense layer widths (all ReLU) before the 2-dim output.
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Which OOD scenarios to evaluate.
    pub scenarios: Vec<OodScenario>,
}

impl Default for RacetrackConfig {
    fn default() -> Self {
        Self {
            seed: 2021,
            track: TrackConfig::default(),
            train_size: 256,
            test_size: 256,
            ood_size: 64,
            hidden: vec![32, 16],
            epochs: 8,
            scenarios: OodScenario::PAPER.to_vec(),
        }
    }
}

impl RacetrackConfig {
    /// The full-scale configuration used to generate `EXPERIMENTS.md`.
    ///
    /// Sized for a small CI machine: large enough that sub-percent
    /// false-positive rates are measurable (4000 held-out frames resolve
    /// 0.025%), small enough that the whole table suite regenerates in
    /// minutes on two cores.
    pub fn paper_scale() -> Self {
        Self {
            train_size: 3000,
            test_size: 4000,
            ood_size: 1000,
            hidden: vec![64, 32],
            epochs: 20,
            scenarios: OodScenario::ALL.to_vec(),
            ..Self::default()
        }
    }
}

/// One evaluated monitor: rates, capacity and cost figures.
#[derive(Debug, Clone, Serialize)]
pub struct MonitorRow {
    /// Human-readable monitor description.
    pub name: String,
    /// False-positive rate on held-out in-ODD data.
    pub fp_rate: f64,
    /// Detection rate per OOD scenario (scenario name → rate).
    pub detection: BTreeMap<String, f64>,
    /// Pattern-space coverage for pattern-family monitors.
    pub coverage: Option<f64>,
    /// Construction wall-clock seconds.
    pub build_seconds: f64,
    /// Mean query latency in nanoseconds.
    pub query_nanos: f64,
}

impl MonitorRow {
    /// Mean detection rate across scenarios.
    pub fn mean_detection(&self) -> f64 {
        if self.detection.is_empty() {
            return 0.0;
        }
        self.detection.values().sum::<f64>() / self.detection.len() as f64
    }
}

/// A prepared experiment: trained perception network plus evaluation data.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: RacetrackConfig,
    net: Network,
    train: Dataset,
    test: Dataset,
    ood: BTreeMap<OodScenario, Vec<Vec<f64>>>,
    train_loss: f64,
    test_loss: f64,
}

impl Experiment {
    /// Samples the datasets, trains the waypoint regressor, and stages the
    /// OOD scenarios.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero sizes, no hidden
    /// layers).
    pub fn prepare(config: RacetrackConfig) -> Self {
        assert!(
            config.train_size > 0 && config.test_size > 0 && config.ood_size > 0,
            "zero-sized dataset"
        );
        assert!(!config.hidden.is_empty(), "need at least one hidden layer");

        let mut sampler = TrackSampler::new(config.track, config.seed);
        let train = sampler.dataset(config.train_size);
        let test = sampler.dataset(config.test_size);

        // OOD: corrupt freshly sampled in-ODD frames.
        let mut ood = BTreeMap::new();
        for &scenario in &config.scenarios {
            let mut inputs = Vec::with_capacity(config.ood_size);
            for _ in 0..config.ood_size {
                let (img, _, _) = sampler.sample();
                let corrupted = scenario.apply(&img, sampler.rng_mut());
                inputs.push(corrupted.into_pixels());
            }
            ood.insert(scenario, inputs);
        }

        // Train the perception network.
        let mut specs: Vec<LayerSpec> = config
            .hidden
            .iter()
            .map(|&w| LayerSpec::dense(w, Activation::Relu))
            .collect();
        specs.push(LayerSpec::dense(2, Activation::Identity));
        let mut net = Network::seeded(config.seed ^ 0xDA7E, config.track.input_dim(), &specs);
        let trainer = Trainer::new(Loss::Mse, Optimizer::adam(0.003))
            .batch_size(32)
            .epochs(config.epochs);
        let report = trainer.run(
            &mut net,
            &train.inputs,
            &train.targets,
            config.seed ^ 0x7EAC,
        );
        let test_loss = trainer.evaluate(&net, &test.inputs, &test.targets);

        Self {
            config,
            net,
            train,
            test,
            ood,
            train_loss: report.final_loss(),
            test_loss,
        }
    }

    /// The trained perception network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The training dataset (`Dtr`).
    pub fn train_data(&self) -> &Dataset {
        &self.train
    }

    /// The held-out in-ODD test dataset.
    pub fn test_data(&self) -> &Dataset {
        &self.test
    }

    /// OOD inputs per scenario.
    pub fn ood_inputs(&self) -> &BTreeMap<OodScenario, Vec<Vec<f64>>> {
        &self.ood
    }

    /// Final training loss (sanity signal for the perception substrate).
    pub fn train_loss(&self) -> f64 {
        self.train_loss
    }

    /// Held-out test loss.
    pub fn test_loss(&self) -> f64 {
        self.test_loss
    }

    /// The experiment configuration.
    pub fn config(&self) -> &RacetrackConfig {
        &self.config
    }

    /// The monitored boundary: just before the output affine map, i.e. the
    /// last hidden representation (the paper's "close-to-output layer").
    pub fn monitored_boundary(&self) -> usize {
        self.net.penultimate_boundary()
    }

    /// Builds and evaluates one monitor; `robust = None` gives the
    /// standard construction.
    pub fn run_monitor(
        &self,
        name: &str,
        kind: MonitorKind,
        robust: Option<RobustConfig>,
    ) -> MonitorRow {
        let layer = self.monitored_boundary();
        let mut builder = MonitorBuilder::new(&self.net, layer).parallel(true);
        if let Some(r) = robust {
            builder = builder.robust_config(r);
        }
        let start = Instant::now();
        let monitor = builder
            .build(kind, &self.train.inputs)
            .expect("valid experiment configuration");
        let build_seconds = start.elapsed().as_secs_f64();

        let fp_rate = warn_rate(&monitor, &self.net, &self.test.inputs);
        let mut detection = BTreeMap::new();
        for (scenario, inputs) in &self.ood {
            detection.insert(
                scenario.name().to_string(),
                warn_rate(&monitor, &self.net, inputs),
            );
        }
        let query_nanos = mean_query_nanos(
            &monitor,
            &self.net,
            &self.test.inputs[..self.test.inputs.len().min(256)],
        );
        MonitorRow {
            name: name.to_string(),
            fp_rate,
            detection,
            coverage: monitor.coverage(),
            build_seconds,
            query_nanos,
        }
    }

    /// The spec an experiment monitor build corresponds to: the declarative
    /// form of what [`Experiment::run_monitor`] constructs imperatively.
    pub fn monitor_spec(&self, kind: MonitorKind, robust: Option<RobustConfig>) -> MonitorSpec {
        let mut spec = MonitorSpec::new(self.monitored_boundary(), kind).parallel(true);
        if let Some(r) = robust {
            spec = spec.robust_config(r);
        }
        spec
    }

    /// Packages one evaluated monitor as a deployable artifact: the
    /// trained perception network, the spec, and the monitor built from
    /// the experiment's training set — ready for
    /// `MonitorEngine::from_artifact` in a fresh process.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError`] if the spec is invalid for the trained
    /// network (does not happen for the kinds in
    /// [`Experiment::monitor_families`]).
    pub fn build_artifact(
        &self,
        kind: MonitorKind,
        robust: Option<RobustConfig>,
    ) -> Result<MonitorArtifact, ArtifactError> {
        MonitorArtifact::build(
            self.monitor_spec(kind, robust),
            &self.net,
            &self.train.inputs,
        )
    }

    /// Builds an artifact and writes it to `path` in one step.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Experiment::build_artifact`], plus
    /// [`ArtifactError::Io`] on filesystem failure.
    pub fn export_artifact(
        &self,
        kind: MonitorKind,
        robust: Option<RobustConfig>,
        path: impl AsRef<std::path::Path>,
    ) -> Result<MonitorArtifact, ArtifactError> {
        let artifact = self.build_artifact(kind, robust)?;
        artifact.save_json(path)?;
        Ok(artifact)
    }

    /// The monitor families evaluated in Section IV, with the threshold
    /// choices that make each family meaningful on a post-ReLU feature
    /// layer: sign thresholds degenerate there (all values are
    /// non-negative), so the on-off family uses the "average of all
    /// visited values" option the DATE 2019 construction names explicitly.
    pub fn monitor_families() -> Vec<(&'static str, MonitorKind)> {
        use napmon_core::{PatternBackend, ThresholdPolicy};
        vec![
            ("min-max", MonitorKind::min_max()),
            (
                "pattern",
                MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 0),
            ),
            ("interval-2bit", MonitorKind::interval(2)),
        ]
    }

    /// The standard-vs-robust comparison of the paper's Section IV: every
    /// monitor family, standard and robust at the given `Δ`.
    pub fn standard_vs_robust(&self, delta: f64, domain: Domain) -> Vec<MonitorRow> {
        let robust = RobustConfig {
            delta,
            kp: 0,
            domain,
        };
        let mut rows = Vec::new();
        for (family, kind) in Self::monitor_families() {
            rows.push(self.run_monitor(&format!("{family} (standard)"), kind.clone(), None));
            rows.push(self.run_monitor(
                &format!("{family} (robust Δ={delta})"),
                kind,
                Some(robust),
            ));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Experiment {
        Experiment::prepare(RacetrackConfig {
            train_size: 48,
            test_size: 48,
            ood_size: 16,
            hidden: vec![12, 8],
            epochs: 3,
            track: TrackConfig {
                height: 8,
                width: 8,
                ..TrackConfig::default()
            },
            ..RacetrackConfig::default()
        })
    }

    #[test]
    fn artifact_export_round_trips_through_disk() {
        use napmon_core::Monitor;
        let e = tiny();
        let dir = std::env::temp_dir().join("napmon_eval_artifact_test");
        let path = dir.join("monitor.artifact.json");
        let (_, kind) = &Experiment::monitor_families()[1];
        let artifact = e.export_artifact(kind.clone(), None, &path).unwrap();
        let loaded = MonitorArtifact::load_json(&path).unwrap();
        assert_eq!(loaded.network(), e.network());
        for x in e.test_data().inputs.iter().take(32) {
            assert_eq!(
                artifact.monitor().verdict(e.network(), x).unwrap(),
                loaded.monitor().verdict(loaded.network(), x).unwrap()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn preparation_trains_a_usable_network() {
        let e = tiny();
        assert!(e.train_loss().is_finite());
        assert!(e.test_loss().is_finite());
        assert_eq!(e.network().input_dim(), 64);
        assert_eq!(e.network().output_dim(), 2);
        assert_eq!(e.ood_inputs().len(), 3);
    }

    #[test]
    fn monitored_boundary_is_last_hidden() {
        let e = tiny();
        // Layers: D R D R D -> boundary 4 (after the second ReLU).
        assert_eq!(e.monitored_boundary(), 4);
    }

    #[test]
    fn run_monitor_produces_sane_rates() {
        let e = tiny();
        let row = e.run_monitor("minmax", MonitorKind::min_max(), None);
        assert!((0.0..=1.0).contains(&row.fp_rate));
        assert_eq!(row.detection.len(), 3);
        for r in row.detection.values() {
            assert!((0.0..=1.0).contains(r));
        }
        assert!(row.build_seconds >= 0.0);
        assert!(row.query_nanos > 0.0);
        assert!(row.coverage.is_none());
    }

    #[test]
    fn robust_monitor_fp_not_worse_than_standard() {
        let e = tiny();
        let rows = e.standard_vs_robust(0.02, Domain::Box);
        assert_eq!(rows.len(), 6);
        for pair in rows.chunks(2) {
            assert!(
                pair[1].fp_rate <= pair[0].fp_rate + 1e-12,
                "{}: robust fp {} > standard fp {}",
                pair[1].name,
                pair[1].fp_rate,
                pair[0].fp_rate
            );
        }
    }

    #[test]
    fn pattern_rows_report_coverage() {
        let e = tiny();
        let row = e.run_monitor("pattern", MonitorKind::pattern(), None);
        let cov = row.coverage.expect("pattern coverage");
        assert!((0.0..=1.0).contains(&cov));
        assert!(row.mean_detection() >= 0.0);
    }

    #[test]
    fn preparation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.network(), b.network());
        assert_eq!(a.train_data(), b.train_data());
    }
}
