//! The classification experiment (E2): per-class pattern monitoring on the
//! glyph dataset — the setup of the DATE 2019 predecessor paper (per-class
//! pattern sets on MNIST/GTSRB), with this paper's robust construction
//! applied on top.

use napmon_core::{MonitorBuilder, MonitorKind, PerClassMonitor, RobustConfig};
use napmon_data::shapes::{Glyph, ShapesConfig};
use napmon_data::Dataset;
use napmon_nn::{accuracy, Activation, LayerSpec, Loss, Network, Optimizer, Trainer};
use napmon_tensor::Prng;
use serde::Serialize;
use std::time::Instant;

/// Configuration of the glyph-classification pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapesExperimentConfig {
    /// Master seed.
    pub seed: u64,
    /// Renderer settings.
    pub shapes: ShapesConfig,
    /// Training samples per class.
    pub per_class_train: usize,
    /// Held-out in-distribution test samples per class.
    pub per_class_test: usize,
    /// Out-of-distribution inputs (stars + inverted glyphs).
    pub ood_size: usize,
    /// Hidden dense layer widths (ReLU).
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
}

impl Default for ShapesExperimentConfig {
    fn default() -> Self {
        Self {
            seed: 2019,
            shapes: ShapesConfig::default(),
            per_class_train: 150,
            per_class_test: 50,
            ood_size: 200,
            hidden: vec![32, 16],
            epochs: 15,
        }
    }
}

impl ShapesExperimentConfig {
    /// The configuration used for `EXPERIMENTS.md`.
    pub fn paper_scale() -> Self {
        Self {
            per_class_train: 500,
            per_class_test: 250,
            ood_size: 1000,
            hidden: vec![48, 24],
            epochs: 25,
            ..Self::default()
        }
    }
}

/// One evaluated per-class monitor.
#[derive(Debug, Clone, Serialize)]
pub struct PerClassRow {
    /// Monitor description.
    pub name: String,
    /// False-positive rate on held-out in-distribution data.
    pub fp_rate: f64,
    /// Detection rate on OOD glyphs.
    pub detection: f64,
    /// Construction wall-clock seconds.
    pub build_seconds: f64,
}

/// A prepared classification experiment.
#[derive(Debug, Clone)]
pub struct ShapesExperiment {
    net: Network,
    train: Dataset,
    test: Dataset,
    ood: Vec<Vec<f64>>,
    accuracy: f64,
}

impl ShapesExperiment {
    /// Samples data, trains the classifier, stages OOD inputs.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero sizes, no hidden layers).
    pub fn prepare(config: ShapesExperimentConfig) -> Self {
        assert!(
            config.per_class_train > 0 && config.per_class_test > 0 && config.ood_size > 0,
            "zero-sized dataset"
        );
        assert!(!config.hidden.is_empty(), "need at least one hidden layer");
        let mut rng = Prng::seed(config.seed);
        let train = config.shapes.dataset(config.per_class_train, &mut rng);
        let test = config.shapes.dataset(config.per_class_test, &mut rng);
        let ood = config.shapes.ood_inputs(config.ood_size, &mut rng);

        let mut specs: Vec<LayerSpec> = config
            .hidden
            .iter()
            .map(|&w| LayerSpec::dense(w, Activation::Relu))
            .collect();
        specs.push(LayerSpec::dense(Glyph::ALL.len(), Activation::Identity));
        let mut net = Network::seeded(config.seed ^ 0x5A9E5, config.shapes.input_dim(), &specs);
        Trainer::new(Loss::SoftmaxCrossEntropy, Optimizer::adam(0.004))
            .batch_size(32)
            .epochs(config.epochs)
            .run(
                &mut net,
                &train.inputs,
                &train.targets,
                config.seed ^ 0x7EAC,
            );
        let acc = accuracy(&net, &test.inputs, &test.targets);
        Self {
            net,
            train,
            test,
            ood,
            accuracy: acc,
        }
    }

    /// The trained classifier.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Held-out classification accuracy (substrate sanity).
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// Builds and evaluates one per-class monitor configuration.
    pub fn run_per_class(
        &self,
        name: &str,
        kind: MonitorKind,
        robust: Option<RobustConfig>,
    ) -> PerClassRow {
        let layer = self.net.penultimate_boundary();
        let mut builder = MonitorBuilder::new(&self.net, layer).parallel(true);
        if let Some(r) = robust {
            builder = builder.robust_config(r);
        }
        let labels = self.train.labels.as_ref().expect("classification dataset");
        let start = Instant::now();
        let monitor = builder
            .build_per_class(kind, &self.train.inputs, labels, Glyph::ALL.len())
            .expect("valid per-class configuration");
        let build_seconds = start.elapsed().as_secs_f64();
        PerClassRow {
            name: name.to_string(),
            fp_rate: per_class_rate(&monitor, &self.net, &self.test.inputs),
            detection: per_class_rate(&monitor, &self.net, &self.ood),
            build_seconds,
        }
    }
}

/// Warning rate of a per-class monitor over an input set.
///
/// # Panics
///
/// Panics if `inputs` is empty or malformed.
pub fn per_class_rate(monitor: &PerClassMonitor, net: &Network, inputs: &[Vec<f64>]) -> f64 {
    assert!(!inputs.is_empty(), "per_class_rate over an empty input set");
    inputs
        .iter()
        .filter(|x| monitor.warns(net, x).expect("inputs match the network"))
        .count() as f64
        / inputs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_absint::Domain;
    use napmon_core::{PatternBackend, ThresholdPolicy};

    fn tiny() -> ShapesExperiment {
        ShapesExperiment::prepare(ShapesExperimentConfig {
            per_class_train: 30,
            per_class_test: 15,
            ood_size: 40,
            hidden: vec![16, 8],
            epochs: 8,
            shapes: ShapesConfig {
                side: 10,
                noise: 0.03,
            },
            ..ShapesExperimentConfig::default()
        })
    }

    #[test]
    fn classifier_learns_the_glyphs() {
        let e = tiny();
        assert!(e.accuracy() > 0.8, "accuracy {}", e.accuracy());
    }

    #[test]
    fn per_class_monitors_detect_more_than_they_false_alarm() {
        let e = tiny();
        let kind = MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 0);
        let row = e.run_per_class("std", kind, None);
        assert!((0.0..=1.0).contains(&row.fp_rate));
        assert!(
            row.detection > row.fp_rate,
            "detection {} <= fp {}",
            row.detection,
            row.fp_rate
        );
    }

    #[test]
    fn robust_per_class_reduces_fp() {
        let e = tiny();
        let kind = MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 0);
        let std = e.run_per_class("std", kind.clone(), None);
        let rob = e.run_per_class(
            "rob",
            kind,
            Some(RobustConfig {
                delta: 0.002,
                kp: 0,
                domain: Domain::Box,
            }),
        );
        assert!(
            rob.fp_rate <= std.fp_rate + 1e-12,
            "robust fp {} > std fp {}",
            rob.fp_rate,
            std.fp_rate
        );
    }
}
