//! Parameter sweeps: the ablation experiments A1–A4.

use crate::experiment::{Experiment, MonitorRow};
use crate::metrics::warn_rate;
use napmon_absint::{propagate::Propagator, BoxBounds, Domain};
use napmon_core::{MonitorBuilder, MonitorKind, RobustConfig, ThresholdPolicy};
use serde::Serialize;
use std::time::Instant;

/// One Δ-sweep point (experiment A1).
#[derive(Debug, Clone, Serialize)]
pub struct DeltaPoint {
    /// Perturbation budget.
    pub delta: f64,
    /// False-positive rate at this Δ.
    pub fp_rate: f64,
    /// Mean detection rate across scenarios at this Δ.
    pub mean_detection: f64,
    /// Pattern coverage, when applicable.
    pub coverage: Option<f64>,
}

/// Sweeps the robust construction over `deltas` for one monitor family
/// (experiment A1). `delta = 0` rows are effectively the standard monitor.
pub fn delta_sweep(
    exp: &Experiment,
    kind: MonitorKind,
    deltas: &[f64],
    kp: usize,
    domain: Domain,
) -> Vec<DeltaPoint> {
    deltas
        .iter()
        .map(|&delta| {
            let row = if delta == 0.0 {
                exp.run_monitor("sweep", kind.clone(), None)
            } else {
                exp.run_monitor(
                    "sweep",
                    kind.clone(),
                    Some(RobustConfig { delta, kp, domain }),
                )
            };
            DeltaPoint {
                delta,
                fp_rate: row.fp_rate,
                mean_detection: row.mean_detection(),
                coverage: row.coverage,
            }
        })
        .collect()
}

/// Picks the paper's "optimal case": among the *robust* points (Δ > 0),
/// the one with the lowest false-positive rate whose detection stays
/// within `tolerance` of the standard monitor's (the first point, which is
/// expected to be the Δ = 0 / standard baseline). When no robust point
/// keeps detection, falls back to the robust point with the best
/// detection — a widened monitor is still preferable to none, and the
/// trade-off is visible in the sweep table either way.
///
/// # Panics
///
/// Panics if `points` contains no Δ > 0 entry.
pub fn pick_operating_point(points: &[DeltaPoint], tolerance: f64) -> &DeltaPoint {
    let robust: Vec<&DeltaPoint> = points.iter().filter(|p| p.delta > 0.0).collect();
    assert!(
        !robust.is_empty(),
        "sweep needs at least one positive-Δ point"
    );
    let baseline = points[0].mean_detection;
    robust
        .iter()
        .filter(|p| p.mean_detection >= baseline - tolerance)
        .min_by(|a, b| a.fp_rate.partial_cmp(&b.fp_rate).expect("rates are finite"))
        .copied()
        .unwrap_or_else(|| {
            robust
                .iter()
                .max_by(|a, b| {
                    a.mean_detection
                        .partial_cmp(&b.mean_detection)
                        .expect("rates are finite")
                })
                .copied()
                .expect("non-empty robust set")
        })
}

/// One kp-sweep row (experiment A2).
#[derive(Debug, Clone, Serialize)]
pub struct KpPoint {
    /// Perturbation boundary.
    pub kp: usize,
    /// Evaluated row.
    pub row: MonitorRow,
}

/// Sweeps the perturbation boundary `kp` (experiment A2).
pub fn kp_sweep(
    exp: &Experiment,
    kind: MonitorKind,
    kps: &[usize],
    delta: f64,
    domain: Domain,
) -> Vec<KpPoint> {
    kps.iter()
        .map(|&kp| KpPoint {
            kp,
            row: exp.run_monitor(
                &format!("kp={kp}"),
                kind.clone(),
                Some(RobustConfig { delta, kp, domain }),
            ),
        })
        .collect()
}

/// One bits-per-neuron row (experiment A3).
#[derive(Debug, Clone, Serialize)]
pub struct BitsPoint {
    /// Bits per monitored neuron.
    pub bits: usize,
    /// Standard-construction row.
    pub standard: MonitorRow,
    /// Robust-construction row.
    pub robust: MonitorRow,
}

/// Sweeps the interval-monitor bit width (experiment A3).
pub fn bits_sweep(
    exp: &Experiment,
    bits_list: &[usize],
    delta: f64,
    domain: Domain,
) -> Vec<BitsPoint> {
    bits_list
        .iter()
        .map(|&bits| BitsPoint {
            bits,
            standard: exp.run_monitor(
                &format!("{bits}-bit standard"),
                MonitorKind::interval(bits),
                None,
            ),
            robust: exp.run_monitor(
                &format!("{bits}-bit robust"),
                MonitorKind::interval(bits),
                Some(RobustConfig {
                    delta,
                    kp: 0,
                    domain,
                }),
            ),
        })
        .collect()
}

/// One abstract-domain comparison row (experiment A4).
#[derive(Debug, Clone, Serialize)]
pub struct DomainPoint {
    /// Domain name.
    pub domain: String,
    /// Mean bound width at the monitored boundary, averaged over samples.
    pub mean_width: f64,
    /// Mean per-sample propagation time in microseconds.
    pub micros_per_sample: f64,
    /// Downstream false-positive rate of a robust pattern monitor built
    /// with this domain; `None` when the build was skipped (the star
    /// domain's per-sample LP cost makes a full build impractical on small
    /// machines).
    pub fp_rate: Option<f64>,
}

/// Compares the abstract domains of Definition 1 (experiment A4):
/// tightness of the perturbation estimate, propagation cost, and the
/// downstream FP rate of the resulting robust monitor.
///
/// Monitors are built over at most 96 training samples per domain (the
/// star domain solves two LPs per unstable neuron per sample; the cap
/// keeps the comparison tractable and identical across domains, and the
/// resulting FP column is therefore a *relative* signal, not an absolute
/// rate).
pub fn domain_comparison(exp: &Experiment, delta: f64, samples: usize) -> Vec<DomainPoint> {
    let net = exp.network();
    let layer = exp.monitored_boundary();
    let probe: Vec<&Vec<f64>> = exp.train_data().inputs.iter().take(samples).collect();
    let build_cap = exp.train_data().inputs.len().min(96);
    let build_set = &exp.train_data().inputs[..build_cap];
    Domain::ALL
        .iter()
        .map(|&domain| {
            // The star domain solves LPs per unstable neuron: probe fewer
            // samples and skip the monitor build entirely.
            let is_star = domain == Domain::Star;
            let probe = if is_star {
                &probe[..probe.len().min(4)]
            } else {
                &probe[..]
            };
            let prop = Propagator::new(net, domain);
            let start = Instant::now();
            let mut width_sum = 0.0;
            for x in probe {
                let at0 = BoxBounds::from_center_radius(x, delta);
                width_sum += prop.bounds(0, layer, &at0).mean_width();
            }
            let micros = start.elapsed().as_micros() as f64 / probe.len() as f64;
            let fp = (!is_star).then(|| {
                let monitor = MonitorBuilder::new(net, layer)
                    .robust(delta, 0, domain)
                    .parallel(true)
                    .build(MonitorKind::pattern(), build_set)
                    .expect("valid domain comparison configuration");
                warn_rate(&monitor, net, &exp.test_data().inputs)
            });
            DomainPoint {
                domain: domain.name().to_string(),
                mean_width: width_sum / probe.len() as f64,
                micros_per_sample: micros,
                fp_rate: fp,
            }
        })
        .collect()
}

/// One threshold-policy comparison row (supplementary ablation).
#[derive(Debug, Clone, Serialize)]
pub struct PolicyPoint {
    /// Policy name.
    pub policy: String,
    /// Evaluated row.
    pub row: MonitorRow,
}

/// Compares threshold policies for the on-off monitor.
pub fn policy_comparison(exp: &Experiment) -> Vec<PolicyPoint> {
    [
        ("sign", ThresholdPolicy::Sign),
        ("mean", ThresholdPolicy::Mean),
    ]
    .into_iter()
    .map(|(name, policy)| PolicyPoint {
        policy: name.to_string(),
        row: exp.run_monitor(
            name,
            MonitorKind::pattern_with(policy, napmon_core::PatternBackend::Bdd, 0),
            None,
        ),
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::RacetrackConfig;
    use napmon_data::racetrack::TrackConfig;

    fn tiny() -> Experiment {
        Experiment::prepare(RacetrackConfig {
            train_size: 40,
            test_size: 40,
            ood_size: 12,
            hidden: vec![10, 6],
            epochs: 2,
            track: TrackConfig {
                height: 6,
                width: 6,
                ..TrackConfig::default()
            },
            ..RacetrackConfig::default()
        })
    }

    #[test]
    fn delta_sweep_fp_is_monotone_nonincreasing() {
        let e = tiny();
        let points = delta_sweep(
            &e,
            MonitorKind::pattern(),
            &[0.0, 0.01, 0.05, 0.2],
            0,
            Domain::Box,
        );
        assert_eq!(points.len(), 4);
        for w in points.windows(2) {
            assert!(
                w[1].fp_rate <= w[0].fp_rate + 1e-12,
                "fp went up with delta: {} -> {}",
                w[0].fp_rate,
                w[1].fp_rate
            );
        }
    }

    #[test]
    fn coverage_grows_with_delta() {
        let e = tiny();
        let points = delta_sweep(&e, MonitorKind::pattern(), &[0.0, 0.1], 0, Domain::Box);
        let c0 = points[0].coverage.unwrap();
        let c1 = points[1].coverage.unwrap();
        assert!(c1 >= c0);
    }

    #[test]
    fn operating_point_respects_detection_tolerance() {
        let points = vec![
            DeltaPoint {
                delta: 0.0,
                fp_rate: 0.10,
                mean_detection: 0.9,
                coverage: None,
            },
            DeltaPoint {
                delta: 0.1,
                fp_rate: 0.02,
                mean_detection: 0.89,
                coverage: None,
            },
            DeltaPoint {
                delta: 0.5,
                fp_rate: 0.00,
                mean_detection: 0.2,
                coverage: None,
            },
        ];
        let best = pick_operating_point(&points, 0.05);
        assert_eq!(
            best.delta, 0.1,
            "the huge-delta point kills detection and must be skipped"
        );
    }

    #[test]
    fn operating_point_never_returns_the_standard_baseline() {
        let points = vec![
            DeltaPoint {
                delta: 0.0,
                fp_rate: 0.01,
                mean_detection: 0.9,
                coverage: None,
            },
            DeltaPoint {
                delta: 0.1,
                fp_rate: 0.30,
                mean_detection: 0.5,
                coverage: None,
            },
            DeltaPoint {
                delta: 0.2,
                fp_rate: 0.00,
                mean_detection: 0.4,
                coverage: None,
            },
        ];
        // No robust point keeps detection: fall back to best-detection robust.
        let best = pick_operating_point(&points, 0.02);
        assert_eq!(best.delta, 0.1);
    }

    #[test]
    fn kp_sweep_covers_requested_boundaries() {
        let e = tiny();
        let points = kp_sweep(&e, MonitorKind::min_max(), &[0, 2], 0.02, Domain::Box);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].kp, 0);
        assert_eq!(points[1].kp, 2);
    }

    #[test]
    fn bits_sweep_reports_both_constructions() {
        let e = tiny();
        let points = bits_sweep(&e, &[1, 2], 0.02, Domain::Box);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.robust.fp_rate <= p.standard.fp_rate + 1e-12);
            assert!(p.standard.coverage.is_some());
        }
    }

    #[test]
    fn domain_comparison_orders_tightness() {
        let e = tiny();
        let rows = domain_comparison(&e, 0.02, 8);
        assert_eq!(rows.len(), 4);
        let find = |n: &str| rows.iter().find(|r| r.domain == n).unwrap();
        let (b, z, p, s) = (find("box"), find("zonotope"), find("poly"), find("star"));
        assert!(z.mean_width <= b.mean_width + 1e-9);
        assert!(p.mean_width <= b.mean_width + 1e-9);
        assert!(s.mean_width <= b.mean_width + 1e-6);
        for r in &rows {
            assert!(r.micros_per_sample > 0.0);
            if r.domain != "star" {
                assert!(r.fp_rate.is_some());
            }
        }
    }

    #[test]
    fn policy_comparison_runs_both_policies() {
        let e = tiny();
        let rows = policy_comparison(&e);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.row.fp_rate)));
    }
}
