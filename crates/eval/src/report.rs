//! JSON export of experiment results.
//!
//! `EXPERIMENTS.md` is written against the JSON these helpers emit, so the
//! recorded numbers can always be regenerated and diffed.

use serde::Serialize;
use std::fs;
use std::io;
use std::path::Path;

/// Serializes any result structure to pretty-printed JSON.
///
/// # Panics
///
/// Panics if the value cannot be serialized (experiment result types in
/// this crate always can).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment results are serializable")
}

/// Writes a result structure as JSON at `path`, creating parent
/// directories.
///
/// # Errors
///
/// Returns any filesystem error.
pub fn save_json<T: Serialize>(value: &T, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, to_json(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    struct Dummy {
        name: String,
        rates: BTreeMap<String, f64>,
    }

    #[test]
    fn json_round_trips_structure() {
        let mut rates = BTreeMap::new();
        rates.insert("dark".to_string(), 0.95);
        let d = Dummy {
            name: "pattern".into(),
            rates,
        };
        let json = to_json(&d);
        assert!(json.contains("\"pattern\""));
        assert!(json.contains("\"dark\""));
        let back: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(back["rates"]["dark"], 0.95);
    }

    #[test]
    fn save_json_creates_directories() {
        let dir = std::env::temp_dir().join("napmon_eval_report_test");
        let path = dir.join("nested").join("out.json");
        save_json(&vec![1, 2, 3], &path).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.contains('1'));
        fs::remove_dir_all(&dir).ok();
    }
}
