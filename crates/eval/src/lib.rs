//! Experiment harness for the `napmon` reproduction.
//!
//! Wires the substrate crates together into the experiments indexed in
//! `DESIGN.md`/`EXPERIMENTS.md`:
//!
//! - [`experiment`] — the end-to-end race-track pipeline (E1/F2): sample
//!   ODD data, train the waypoint regressor, build standard and robust
//!   monitors, measure false-positive and detection rates.
//! - [`sweep`] — the ablations: Δ sweeps (A1), perturbation boundary `kp`
//!   (A2), bits per neuron (A3), abstract-domain tightness/runtime (A4).
//! - [`metrics`] — warning-rate measurement.
//! - [`online`] — streaming (operation-time) statistics: Welford
//!   accumulators and hit rates that merge across the shards of the
//!   `napmon-serve` engine.
//! - [`table`] — fixed-width ASCII tables matching the output of the
//!   `paper_tables` binary.
//! - [`report`] — JSON export of experiment results.
//!
//! The library defaults are deliberately small so the test suite stays
//! fast; the `napmon-bench` binaries override them with paper-scale
//! settings.

pub mod experiment;
pub mod metrics;
pub mod online;
pub mod report;
pub mod shapes_experiment;
pub mod sweep;
pub mod table;

pub use experiment::{Experiment, MonitorRow, RacetrackConfig};
pub use metrics::{auc, roc, scores, warn_rate, RocPoint};
pub use online::{OnlineRate, OnlineStats};
pub use shapes_experiment::{ShapesExperiment, ShapesExperimentConfig};
pub use table::Table;
