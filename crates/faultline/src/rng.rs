//! The seeded PRNG behind every randomized fault decision.
//!
//! SplitMix64 (Steele/Lea/Flood): one u64 of state, a few shifts and
//! multiplies per draw, and full-period output quality more than adequate
//! for schedule generation. The point is not statistical strength but
//! *replayability*: every fault schedule in this crate derives from a
//! caller-provided seed through this generator alone, so a failing run
//! reproduces from its printed seed on any machine.

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// A generator for an independent substream: mixes `stream` into
    /// `seed` so per-connection / per-direction schedules never correlate.
    pub fn substream(seed: u64, stream: u64) -> Self {
        let mut base = Self::seed(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Burn one output so adjacent stream ids diverge immediately.
        base.next_u64();
        base
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of a double.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw in `[0, bound)`; zero when `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded draw; the tiny modulo bias is irrelevant
        // for schedule generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A biased coin: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed(42);
        let mut b = SplitMix64::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::seed(1);
        let mut b = SplitMix64::seed(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn substreams_are_independent_and_deterministic() {
        let mut a0 = SplitMix64::substream(9, 0);
        let mut a1 = SplitMix64::substream(9, 1);
        let mut b0 = SplitMix64::substream(9, 0);
        assert_ne!(a0.next_u64(), a1.next_u64());
        let _ = b0.next_u64();
        assert_eq!(a0.next_u64(), b0.next_u64());
    }

    #[test]
    fn bounded_draws_stay_in_bounds() {
        let mut rng = SplitMix64::seed(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(rng.below(0), 0);
    }
}
