//! A socket-level fault proxy for end-to-end network-fault tests.
//!
//! [`FaultProxy`] listens on an ephemeral local port and forwards every
//! accepted connection to a real upstream server, byte-for-byte — except
//! where its seeded [`ProxyPlan`] says otherwise. Faults are scheduled on
//! **byte offsets**, not wall-clock time: "kill this connection after
//! forwarding N bytes client→server" is deterministic no matter how the
//! kernel chunks the stream, so a failing schedule replays exactly from
//! its seed. Three fault shapes:
//!
//! - **kills** — the proxy forwards a prefix of the stream (possibly
//!   tearing mid-frame) and then drops both sides of the connection;
//! - **truncations** — a kill whose offset lands inside a frame, which is
//!   how a reader observes a truncated stream (no separate mechanism);
//! - **delays** — the proxy stalls at scheduled byte marks, long enough
//!   to exercise client deadlines without being survivable-schedule
//!   breaking.
//!
//! Survivability is guaranteed by construction: [`ProxyPlan::max_kills`]
//! caps total kills across the proxy's lifetime, so a client that
//! reconnects and retries eventually gets a clean channel.

use crate::rng::SplitMix64;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A seeded schedule of network faults.
///
/// All probabilities and offsets are drawn from [`SplitMix64`] substreams
/// keyed by `(seed, connection index, direction)`, so the n-th accepted
/// connection always receives the same fate for a given seed.
#[derive(Debug, Clone)]
pub struct ProxyPlan {
    /// Seed for every randomized decision.
    pub seed: u64,
    /// Per-connection probability of being scheduled for a kill.
    pub kill_chance: f64,
    /// Hard cap on kills across the proxy's lifetime; once reached, all
    /// further connections pass clean. This is what makes every seeded
    /// schedule survivable for a reconnecting client.
    pub max_kills: u32,
    /// Byte window within which a scheduled kill offset is drawn; small
    /// values tear early frames, large values tear mid-pipeline.
    pub kill_window: u64,
    /// Per-connection probability of carrying delay marks.
    pub delay_chance: f64,
    /// Stall applied at each delay mark.
    pub delay: Duration,
}

impl ProxyPlan {
    /// A plan that forwards everything untouched (wiring check).
    pub fn passthrough() -> Self {
        Self {
            seed: 0,
            kill_chance: 0.0,
            max_kills: 0,
            kill_window: 0,
            delay_chance: 0.0,
            delay: Duration::ZERO,
        }
    }

    /// The standard chaos profile used by the seeded e2e suite: frequent
    /// early-offset kills (capped) plus occasional short stalls.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            kill_chance: 0.5,
            max_kills: 4,
            kill_window: 8 * 1024,
            delay_chance: 0.25,
            delay: Duration::from_millis(20),
        }
    }
}

/// Counters describing what the proxy actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxyStats {
    /// Connections accepted and forwarded.
    pub connections: u64,
    /// Connections killed mid-stream.
    pub kills: u64,
    /// Delay marks honored.
    pub delays: u64,
    /// Bytes forwarded (both directions, after any truncation).
    pub bytes_forwarded: u64,
}

#[derive(Debug, Default)]
struct StatsInner {
    connections: AtomicU64,
    kills: AtomicU64,
    delays: AtomicU64,
    bytes_forwarded: AtomicU64,
}

/// Per-direction fate of one connection: forward clean, or forward a
/// prefix and then kill.
#[derive(Debug, Clone)]
struct DirectionSchedule {
    kill_after: Option<u64>,
    delay_marks: Vec<u64>,
}

fn connection_schedule(
    plan: &ProxyPlan,
    conn_index: u64,
    kills_used: &AtomicU32,
) -> [DirectionSchedule; 2] {
    let mut schedules = [
        DirectionSchedule {
            kill_after: None,
            delay_marks: Vec::new(),
        },
        DirectionSchedule {
            kill_after: None,
            delay_marks: Vec::new(),
        },
    ];
    // Substream 2k decides this connection's kill; 2k+1 its delays. The
    // kill cap is claimed up front so a capped plan stays survivable.
    let mut kill_rng = SplitMix64::substream(plan.seed, conn_index * 2);
    if plan.kill_chance > 0.0 && kill_rng.chance(plan.kill_chance) {
        let claimed = kills_used
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |used| {
                (used < plan.max_kills).then_some(used + 1)
            })
            .is_ok();
        if claimed {
            let direction = kill_rng.below(2) as usize;
            schedules[direction].kill_after = Some(kill_rng.below(plan.kill_window.max(1)));
        }
    }
    let mut delay_rng = SplitMix64::substream(plan.seed, conn_index * 2 + 1);
    if plan.delay_chance > 0.0 && delay_rng.chance(plan.delay_chance) {
        for schedule in &mut schedules {
            let marks = delay_rng.below(3);
            for _ in 0..marks {
                schedule
                    .delay_marks
                    .push(delay_rng.below(plan.kill_window.max(1024)));
            }
            schedule.delay_marks.sort_unstable();
        }
    }
    schedules
}

/// A running fault proxy; dropping it (or calling
/// [`FaultProxy::shutdown`]) stops the listener and tears down pumps.
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral localhost port, forwarding to
    /// `upstream` under `plan`.
    ///
    /// # Errors
    ///
    /// Propagates listener-bind failures.
    pub fn spawn(upstream: SocketAddr, plan: ProxyPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            thread::Builder::new()
                .name("faultline-proxy".into())
                .spawn(move || accept_loop(listener, upstream, plan, stop, stats))
                .expect("spawn proxy accept thread")
        };
        Ok(Self {
            addr,
            stop,
            stats,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of what the proxy has done so far.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            connections: self.stats.connections.load(Ordering::Acquire),
            kills: self.stats.kills.load(Ordering::Acquire),
            delays: self.stats.delays.load(Ordering::Acquire),
            bytes_forwarded: self.stats.bytes_forwarded.load(Ordering::Acquire),
        }
    }

    /// Stops accepting and unwinds the accept thread. Pump threads for
    /// live connections notice within one read-timeout tick.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: ProxyPlan,
    stop: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
) {
    let kills_used = Arc::new(AtomicU32::new(0));
    let mut conn_index = 0u64;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _)) => {
                stats.connections.fetch_add(1, Ordering::AcqRel);
                let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(5))
                else {
                    // Upstream gone: drop the client; it sees a reset.
                    continue;
                };
                let schedules = connection_schedule(&plan, conn_index, &kills_used);
                conn_index += 1;
                spawn_pumps(client, server, schedules, plan.delay, &stop, &stats);
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    schedules: [DirectionSchedule; 2],
    delay: Duration,
    stop: &Arc<AtomicBool>,
    stats: &Arc<StatsInner>,
) {
    let dead = Arc::new(AtomicBool::new(false));
    let [to_server, to_client] = schedules;
    let pairs = [
        (client.try_clone(), server.try_clone(), to_server),
        (server.try_clone(), client.try_clone(), to_client),
    ];
    for (from, to, schedule) in pairs {
        let (Ok(from), Ok(to)) = (from, to) else {
            return;
        };
        let stop = Arc::clone(stop);
        let dead = Arc::clone(&dead);
        let stats = Arc::clone(stats);
        thread::Builder::new()
            .name("faultline-pump".into())
            .spawn(move || pump(from, to, schedule, delay, stop, dead, stats))
            .expect("spawn proxy pump thread");
    }
}

/// Forwards `from` → `to` under one direction's schedule. On a kill, the
/// scheduled byte prefix is flushed through first — that is what makes a
/// kill double as a deterministic truncation — then both sockets go down.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    schedule: DirectionSchedule,
    delay: Duration,
    stop: Arc<AtomicBool>,
    dead: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(25)));
    let mut forwarded = 0u64;
    let mut marks = schedule.delay_marks.into_iter().peekable();
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::Acquire) || dead.load(Ordering::Acquire) {
            kill_both(&from, &to);
            return;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(err)
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        };
        let end = forwarded + n as u64;
        while marks.peek().is_some_and(|&mark| mark < end) {
            marks.next();
            stats.delays.fetch_add(1, Ordering::AcqRel);
            thread::sleep(delay);
        }
        if let Some(kill_after) = schedule.kill_after {
            if end >= kill_after {
                let keep = (kill_after - forwarded) as usize;
                if keep > 0 && to.write_all(&buf[..keep]).is_ok() {
                    stats
                        .bytes_forwarded
                        .fetch_add(keep as u64, Ordering::AcqRel);
                }
                stats.kills.fetch_add(1, Ordering::AcqRel);
                dead.store(true, Ordering::Release);
                kill_both(&from, &to);
                return;
            }
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
        forwarded = end;
        stats.bytes_forwarded.fetch_add(n as u64, Ordering::AcqRel);
    }
    // Clean EOF (or peer error): propagate the half-close downstream so
    // the other end observes an orderly shutdown, and let the opposite
    // pump keep draining until its own EOF.
    let _ = to.shutdown(Shutdown::Write);
}

fn kill_both(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// A tiny upstream echo server: reads until EOF, echoing every chunk.
    fn echo_server() -> (SocketAddr, thread::JoinHandle<()>) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        let handle = thread::spawn(move || {
            // One connection per test is enough.
            if let Ok((mut conn, _)) = listener.accept() {
                let mut buf = [0u8; 1024];
                loop {
                    match conn.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if conn.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn passthrough_forwards_bytes_unchanged() {
        let (upstream, echo) = echo_server();
        let mut proxy = FaultProxy::spawn(upstream, ProxyPlan::passthrough()).expect("proxy");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let payload = b"hello through the proxy";
        conn.write_all(payload).expect("write");
        let mut back = vec![0u8; payload.len()];
        conn.read_exact(&mut back).expect("read echo");
        assert_eq!(&back, payload);
        drop(conn);
        echo.join().expect("echo thread");
        let stats = proxy.stats();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.kills, 0);
        assert!(stats.bytes_forwarded >= 2 * payload.len() as u64);
        proxy.shutdown();
    }

    #[test]
    fn scheduled_kill_truncates_the_stream() {
        let (upstream, _echo) = echo_server();
        // kill_chance 1.0 with a tiny window kills connection 0 almost
        // immediately in whichever direction the seed picks.
        let plan = ProxyPlan {
            seed: 11,
            kill_chance: 1.0,
            max_kills: 1,
            kill_window: 8,
            delay_chance: 0.0,
            delay: Duration::ZERO,
        };
        let mut proxy = FaultProxy::spawn(upstream, plan).expect("proxy");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Push enough bytes to cross any offset in the window; the
        // connection must die rather than echo everything back.
        let payload = vec![0xAB; 4096];
        let write_err = conn.write_all(&payload).and_then(|()| {
            conn.write_all(&payload)?;
            let mut back = vec![0u8; 2 * payload.len()];
            conn.read_exact(&mut back)
        });
        assert!(write_err.is_err(), "killed connection must not echo fully");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while proxy.stats().kills == 0 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(proxy.stats().kills, 1);
        proxy.shutdown();
    }

    #[test]
    fn kill_cap_keeps_later_connections_clean() {
        let plan = ProxyPlan {
            seed: 3,
            kill_chance: 1.0,
            max_kills: 2,
            kill_window: 4,
            delay_chance: 0.0,
            delay: Duration::ZERO,
        };
        let kills_used = AtomicU32::new(0);
        let mut killed = 0;
        for conn_index in 0..10 {
            let schedules = connection_schedule(&plan, conn_index, &kills_used);
            if schedules.iter().any(|s| s.kill_after.is_some()) {
                killed += 1;
            }
        }
        assert_eq!(killed, 2, "cap must bound scheduled kills");
    }

    #[test]
    fn schedules_replay_from_seed() {
        let plan = ProxyPlan::seeded(42);
        let a: Vec<_> = (0..16)
            .map(|i| {
                let cap = AtomicU32::new(0);
                let [s0, s1] = connection_schedule(&plan, i, &cap);
                (s0.kill_after, s0.delay_marks, s1.kill_after, s1.delay_marks)
            })
            .collect();
        let b: Vec<_> = (0..16)
            .map(|i| {
                let cap = AtomicU32::new(0);
                let [s0, s1] = connection_schedule(&plan, i, &cap);
                (s0.kill_after, s0.delay_marks, s1.kill_after, s1.delay_marks)
            })
            .collect();
        assert_eq!(a, b);
    }
}
