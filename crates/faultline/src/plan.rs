//! Named fault-injection sites and the deterministic plans that fire them.
//!
//! An I/O path under test calls [`FaultInjector::check`] (or
//! [`FaultInjector::write_fault`] for writes that can tear) at each named
//! site — `seal.manifest.rename`, `tail.append.write`, … — and the
//! injector decides, deterministically, whether that exact step fails.
//!
//! The workflow is two passes:
//!
//! 1. **Record.** Run the workload with [`FaultInjector::recorder`]; the
//!    injector fires nothing and returns the full [`SiteHit`] trace —
//!    every site the workload crossed, with per-site occurrence indices.
//! 2. **Replay with one fault.** For each recorded `(site, occurrence)`,
//!    re-run the workload with [`FaultInjector::rule`] armed to fire one
//!    [`FaultAction`] there. Everything before the fault runs untouched;
//!    the fault itself surfaces as an [`InjectedFault`] (convertible to
//!    `std::io::Error`); and for [`FaultAction::Crash`] the injector is
//!    *poisoned* — every later site errors too, modeling a process that is
//!    simply gone. The caller then drops its handles and re-opens from
//!    disk, asserting recovery invariants.
//!
//! Determinism: the only randomized quantity is how many bytes a torn
//! write keeps, drawn from a [`SplitMix64`](crate::SplitMix64) seeded at
//! construction — so a failing matrix entry replays exactly from
//! `(site, occurrence, action, seed)`.

use crate::rng::SplitMix64;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// What an armed rule does when its site comes around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The operation fails with an injected error; the handle stays
    /// usable (models a transient I/O failure, e.g. a failed fsync).
    Fail,
    /// The operation fails and the injector is poisoned: every subsequent
    /// site errors as well, and buffered state must be treated as lost
    /// (models the process dying at this exact step).
    Crash,
    /// A write-capable site persists only a prefix of its bytes, then the
    /// injector is poisoned (models a torn write at the moment of death).
    /// At a non-write site this degrades to [`FaultAction::Crash`].
    ShortWrite,
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultAction::Fail => "fail",
            FaultAction::Crash => "crash",
            FaultAction::ShortWrite => "short-write",
        })
    }
}

/// One crossing of a named site, as recorded in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteHit {
    /// The site's name.
    pub site: String,
    /// Which crossing of this site it was (0-based, per site).
    pub occurrence: u64,
    /// Whether the site came through [`FaultInjector::write_fault`] (so a
    /// [`FaultAction::ShortWrite`] there can actually tear bytes).
    pub writeable: bool,
}

/// The error an armed fault surfaces as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: String,
    /// The occurrence that fired.
    pub occurrence: u64,
    /// What fired.
    pub action: FaultAction,
    /// Whether this error is the original fault (`false`) or a fail-fast
    /// echo on a handle already poisoned by a crash (`true`).
    pub after_crash: bool,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.after_crash {
            write!(
                f,
                "injected fault: operation at {} after a simulated crash",
                self.site
            )
        } else {
            write!(
                f,
                "injected fault: {} at {}#{}",
                self.action, self.site, self.occurrence
            )
        }
    }
}

impl std::error::Error for InjectedFault {}

impl From<InjectedFault> for std::io::Error {
    fn from(fault: InjectedFault) -> Self {
        std::io::Error::other(fault)
    }
}

#[derive(Debug)]
struct Rule {
    site: String,
    occurrence: u64,
    action: FaultAction,
}

#[derive(Debug)]
struct Inner {
    rule: Option<Rule>,
    crashed: AtomicBool,
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    /// Per-site occurrence counters.
    counts: std::collections::HashMap<String, u64>,
    /// Every site crossing, in order.
    trace: Vec<SiteHit>,
    /// The fault that fired, if one did (fail-fast echoes excluded).
    fired: Option<InjectedFault>,
    /// Torn-write prefix draws.
    rng: SplitMix64,
}

/// A shareable handle deciding, at every named site, whether to inject a
/// fault. Cloning shares state — the store hands clones to its tail /
/// segment / manifest internals and they all consult one plan.
#[derive(Debug, Clone)]
pub struct FaultInjector(Arc<Inner>);

impl FaultInjector {
    fn with_rule(rule: Option<Rule>, seed: u64) -> Self {
        Self(Arc::new(Inner {
            rule,
            crashed: AtomicBool::new(false),
            state: Mutex::new(State {
                counts: std::collections::HashMap::new(),
                trace: Vec::new(),
                fired: None,
                rng: SplitMix64::seed(seed),
            }),
        }))
    }

    /// An injector that fires nothing and records every site crossing —
    /// the matrix driver's first pass.
    pub fn recorder() -> Self {
        Self::with_rule(None, 0)
    }

    /// An injector armed to fire `action` at the `occurrence`-th crossing
    /// of `site` (0-based), with `seed` driving any torn-write prefix
    /// draw.
    pub fn rule(site: impl Into<String>, occurrence: u64, action: FaultAction, seed: u64) -> Self {
        Self::with_rule(
            Some(Rule {
                site: site.into(),
                occurrence,
                action,
            }),
            seed,
        )
    }

    /// Whether a [`FaultAction::Crash`] / [`FaultAction::ShortWrite`] has
    /// fired: the simulated process is dead, buffered state is lost.
    pub fn crashed(&self) -> bool {
        self.0.crashed.load(Ordering::Acquire)
    }

    /// The full site trace so far (every crossing, fired or not).
    pub fn trace(&self) -> Vec<SiteHit> {
        self.0.state.lock().expect("faultline state").trace.clone()
    }

    /// The fault that fired, if any (fail-fast echoes after a crash are
    /// not separate firings).
    pub fn fired(&self) -> Option<InjectedFault> {
        self.0.state.lock().expect("faultline state").fired.clone()
    }

    /// Records a crossing of `site` and decides its fate. `writeable`
    /// tells the trace whether a short write could tear here.
    fn arrive(&self, site: &str, writeable: bool) -> Result<Option<InjectedFault>, InjectedFault> {
        if self.crashed() {
            return Err(InjectedFault {
                site: site.to_string(),
                occurrence: 0,
                action: FaultAction::Crash,
                after_crash: true,
            });
        }
        let mut state = self.0.state.lock().expect("faultline state");
        let occurrence = {
            let counter = state.counts.entry(site.to_string()).or_insert(0);
            let now = *counter;
            *counter += 1;
            now
        };
        state.trace.push(SiteHit {
            site: site.to_string(),
            occurrence,
            writeable,
        });
        let Some(rule) = &self.0.rule else {
            return Ok(None);
        };
        if rule.site != site || rule.occurrence != occurrence {
            return Ok(None);
        }
        let fault = InjectedFault {
            site: site.to_string(),
            occurrence,
            action: rule.action,
            after_crash: false,
        };
        state.fired = Some(fault.clone());
        Ok(Some(fault))
    }

    /// Consults the plan at a non-write site.
    ///
    /// # Errors
    ///
    /// The armed [`InjectedFault`] when this exact `(site, occurrence)`
    /// fires, and a fail-fast echo for every site after a crash.
    pub fn check(&self, site: &str) -> Result<(), InjectedFault> {
        match self.arrive(site, false)? {
            None => Ok(()),
            Some(fault) => {
                if matches!(fault.action, FaultAction::Crash | FaultAction::ShortWrite) {
                    self.0.crashed.store(true, Ordering::Release);
                }
                Err(fault)
            }
        }
    }

    /// Consults the plan at a write site about to persist `len` bytes.
    ///
    /// Returns `Ok(None)` to proceed with the full write, or
    /// `Ok(Some(keep))` when a [`FaultAction::ShortWrite`] fired: the
    /// caller must persist exactly the first `keep < len` bytes, then
    /// treat the operation as crashed (the injector is already poisoned;
    /// [`FaultInjector::torn`] builds the error to surface).
    ///
    /// # Errors
    ///
    /// As [`FaultInjector::check`], for [`FaultAction::Fail`] /
    /// [`FaultAction::Crash`] rules and post-crash echoes.
    pub fn write_fault(&self, site: &str, len: usize) -> Result<Option<usize>, InjectedFault> {
        match self.arrive(site, true)? {
            None => Ok(None),
            Some(fault) => match fault.action {
                FaultAction::Fail => Err(fault),
                FaultAction::Crash => {
                    self.0.crashed.store(true, Ordering::Release);
                    Err(fault)
                }
                FaultAction::ShortWrite => {
                    self.0.crashed.store(true, Ordering::Release);
                    let keep = {
                        let mut state = self.0.state.lock().expect("faultline state");
                        state.rng.below(len as u64) as usize
                    };
                    Ok(Some(keep))
                }
            },
        }
    }

    /// The error a caller surfaces after honoring a torn-write
    /// instruction from [`FaultInjector::write_fault`].
    pub fn torn(&self, site: &str) -> InjectedFault {
        InjectedFault {
            site: site.to_string(),
            occurrence: self
                .0
                .state
                .lock()
                .expect("faultline state")
                .fired
                .as_ref()
                .map_or(0, |f| f.occurrence),
            action: FaultAction::ShortWrite,
            after_crash: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_records_and_never_fires() {
        let faults = FaultInjector::recorder();
        faults.check("a").unwrap();
        faults.check("a").unwrap();
        assert_eq!(faults.write_fault("b", 100).unwrap(), None);
        let trace = faults.trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].site, "a");
        assert_eq!(trace[0].occurrence, 0);
        assert_eq!(trace[1].occurrence, 1);
        assert!(trace[2].writeable);
        assert!(faults.fired().is_none());
        assert!(!faults.crashed());
    }

    #[test]
    fn rule_fires_at_exactly_one_occurrence() {
        let faults = FaultInjector::rule("a", 1, FaultAction::Fail, 0);
        faults.check("a").unwrap();
        let err = faults.check("a").unwrap_err();
        assert_eq!(err.site, "a");
        assert_eq!(err.occurrence, 1);
        assert!(!err.after_crash);
        // A Fail does not poison: later sites proceed.
        faults.check("a").unwrap();
        faults.check("b").unwrap();
        assert!(!faults.crashed());
        assert!(faults.fired().is_some());
    }

    #[test]
    fn crash_poisons_every_later_site() {
        let faults = FaultInjector::rule("x", 0, FaultAction::Crash, 0);
        let err = faults.check("x").unwrap_err();
        assert_eq!(err.action, FaultAction::Crash);
        assert!(faults.crashed());
        let echo = faults.check("y").unwrap_err();
        assert!(echo.after_crash);
        let echo = faults.write_fault("z", 10).unwrap_err();
        assert!(echo.after_crash);
        // The echo is not a second firing.
        assert_eq!(faults.fired().unwrap().site, "x");
    }

    #[test]
    fn short_write_keeps_a_strict_prefix_and_poisons() {
        for seed in 0..32 {
            let faults = FaultInjector::rule("w", 0, FaultAction::ShortWrite, seed);
            let keep = faults.write_fault("w", 64).unwrap().expect("torn");
            assert!(keep < 64, "seed {seed}: keep {keep} not a strict prefix");
            assert!(faults.crashed());
            let torn = faults.torn("w");
            assert_eq!(torn.action, FaultAction::ShortWrite);
        }
        // Deterministic per seed.
        let a = FaultInjector::rule("w", 0, FaultAction::ShortWrite, 7);
        let b = FaultInjector::rule("w", 0, FaultAction::ShortWrite, 7);
        assert_eq!(
            a.write_fault("w", 1000).unwrap(),
            b.write_fault("w", 1000).unwrap()
        );
    }

    #[test]
    fn short_write_at_a_plain_site_degrades_to_crash() {
        let faults = FaultInjector::rule("p", 0, FaultAction::ShortWrite, 0);
        let err = faults.check("p").unwrap_err();
        assert_eq!(err.action, FaultAction::ShortWrite);
        assert!(faults.crashed());
    }

    #[test]
    fn injected_fault_converts_to_io_error() {
        let faults = FaultInjector::rule("io", 0, FaultAction::Fail, 0);
        let err: std::io::Error = faults.check("io").unwrap_err().into();
        assert!(err.to_string().contains("io#0"), "{err}");
    }

    #[test]
    fn clones_share_one_plan() {
        let faults = FaultInjector::rule("s", 1, FaultAction::Fail, 0);
        let clone = faults.clone();
        faults.check("s").unwrap();
        assert!(clone.check("s").is_err(), "clone must see occurrence 1");
        assert_eq!(faults.trace().len(), 2);
    }
}
