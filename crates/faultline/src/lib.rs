//! Deterministic, seed-replayable fault injection for napmon's
//! persistence and network layers.
//!
//! The monitors this workspace serves are pitched at *safety-critical*
//! operation — which makes the serving stack's behavior under failure a
//! correctness surface, not an ops afterthought. This crate provides the
//! machinery to exercise that surface deterministically, on pure `std`:
//!
//! - [`FaultInjector`]: named injection sites compiled into an I/O path
//!   (the store's append/commit/seal/compact steps, behind its
//!   `fault-injection` feature). A *recorder* pass enumerates every site a
//!   workload hits; a *rule* pass then fires a chosen fault — a failed
//!   operation, a torn (short) write, or a hard simulated crash — at
//!   exactly one `(site, occurrence)` and nowhere else. Driving the same
//!   workload once per recorded site yields a **crash-point matrix**:
//!   proof that recovery holds no matter where the process dies.
//! - [`SplitMix64`]: the seeded PRNG behind every randomized decision, so
//!   any failing schedule replays from its printed seed.
//! - [`FaultProxy`]: a socket-level fault proxy that sits between a real
//!   client and server and injects network faults — connection kills,
//!   truncated streams, delays — on a deterministic, seeded, byte-offset
//!   schedule. End-to-end tests replay fault schedules by seed and assert
//!   the serving contract (verdicts bit-identical to the direct engine)
//!   survives every survivable schedule.
//!
//! Nothing here touches production paths: the store compiles its sites
//! only under its `fault-injection` feature, and the proxy is a test-side
//! process object. Determinism is the design center — every decision
//! derives from a caller-provided seed, never from wall-clock entropy.

mod plan;
mod proxy;
mod rng;

pub use plan::{FaultAction, FaultInjector, InjectedFault, SiteHit};
pub use proxy::{FaultProxy, ProxyPlan, ProxyStats};
pub use rng::SplitMix64;
