//! The serving side: a TCP listener over a sharded [`MonitorEngine`] or a
//! multi-tenant [`MonitorRegistry`].
//!
//! **One reactor, a fixed worker pool.** A single reactor thread owns
//! every connection on nonblocking sockets (see the [`crate::reactor`]
//! module for the event-loop topology): it accepts, runs each peer's
//! frame-reassembly state machine, and drains each peer's outbound write
//! queue. Decoded frames are dispatched to a small fixed pool of worker
//! threads that run the backend — so an idle connection costs a buffer,
//! not an OS thread, and thread count is O(1) in the connection count.
//! At most one job per connection is in flight at a time, so requests on
//! one connection are served in arrival order and a pipelining client
//! reads responses in the order it wrote requests; concurrency comes
//! from connections, parallelism from the worker pool and the engine's
//! shards.
//!
//! **Two backends, one wire, one front door.** [`WireServer::builder`]
//! takes a typed [`Backend`] — [`Backend::Engine`] serves a single
//! engine, [`Backend::Registry`] serves a [`MonitorRegistry`] and
//! dispatches each work frame by its tenant route (see
//! [`TenantRoute`]). On a registry server a work frame *must* carry a
//! route — an unrouted one is answered with a typed `UnknownTenant`
//! error, as is a routed frame on a single-engine server. Routing misses
//! are accounted in [`DegradedStats::unknown_tenant`]. Registry admin
//! requests (`Mount`, `Unmount`, `Promote`, `ListTenants`,
//! `ShadowStats`) are control plane: they bypass the in-flight work
//! budget so operators can still flip traffic while the data plane is
//! saturated.
//!
//! **Backpressure is a typed response, not dropped bytes.** A global
//! in-flight budget bounds the work admitted across all connections;
//! a request over budget is answered with a `Busy` frame carrying the
//! budget figures, and the bytes already read stay framed — the
//! connection remains usable.
//!
//! **Shutdown drains.** A `Shutdown` request (or [`WireServer::shutdown`])
//! stops accepting and lets every connection finish the frames it has
//! started — in-flight requests are served, responses written, bounded
//! by [`WireConfig::drain_grace`] — before the backend itself drains and
//! reports final metrics. On a registry backend the reactor and workers
//! are joined *first*, then [`MonitorRegistry::shutdown`] runs — which
//! also joins the background drainers of engines retired by earlier
//! hot-swaps, so a shutdown that lands mid-swap cannot leak the outgoing
//! engine's worker threads. A client that disconnects mid-request costs
//! nothing: its work completes in the engine and the unsendable reply is
//! dropped.
//!
//! **Degradation is graceful and accounted.** Under pressure the server
//! walks a fixed shedding ladder rather than falling over: connections
//! over the cap are refused at accept time with one `Busy` frame through
//! the nonblocking write path; fully-read requests are shed with `Busy`
//! when the backend's backlog crosses the queue watermark or the
//! in-flight budget is exhausted (never mid-frame — a shed request
//! leaves the connection framed and usable); and peers that stall — idle
//! between frames past [`WireConfig::idle_timeout`], or mid-frame past
//! [`WireConfig::frame_deadline`] (the slow-loris defense) — are evicted
//! by the reactor's timer wheel with a typed `Evicted` error frame.
//! Every one of these decisions increments a counter in
//! [`DegradedStats`], reported by `Stats`.

use crate::codec::{DegradedStats, Request, Response, StatsSnapshot};
use crate::error::{registry_error_code, serve_error_code, ErrorCode, WireError};
use crate::frame::{Frame, Opcode, TenantRoute, ACTIVE_VERSION, DEFAULT_MAX_PAYLOAD};
use crate::reactor::{Completion, CompletionQueue, Job, JobKind, Reactor};
use napmon_artifact::{ArtifactError, MonitorArtifact};
use napmon_core::ComposedMonitor;
use napmon_obs::{Counter, LatencyHistogram, MetricsRegistry, ObsReport, SlowLog, SpanKind};
use napmon_registry::{MonitorRegistry, RegistryError, RegistryReport};
use napmon_serve::{EngineConfig, MonitorEngine, ServeReport};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for a [`WireServer`].
///
/// Non-exhaustive: start from [`WireConfig::default`] and chain the
/// `with_*` setters, so new reactor knobs land without breaking
/// downstream construction sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct WireConfig {
    /// Global budget of requests being served at once (work opcodes:
    /// `Query`, `QueryBatch`, `Absorb`). A request arriving over budget is
    /// answered `Busy`. Zero is treated as one.
    pub max_in_flight: usize,
    /// Cap on live connections. An accept over the cap is answered with
    /// a `Busy` frame and closed. Connections are cheap under the
    /// reactor (a buffer, not a thread), so the cap bounds memory and
    /// file descriptors rather than threads. Zero is treated as one.
    pub max_connections: usize,
    /// Largest payload a frame may declare; a larger declaration fails
    /// typed before any allocation.
    pub max_payload: u32,
    /// Granularity of the owner-side waits ([`WireServer::wait`]) that
    /// poll the shutdown flag.
    pub poll_interval: Duration,
    /// How long a connection may keep serving already-started work after
    /// a shutdown is observed, before it is closed mid-stream.
    pub drain_grace: Duration,
    /// How long a connection may sit idle *between* frames before it is
    /// evicted (typed `Evicted` error frame, then close). Bounds how long
    /// a silent peer can hold one of the capped connection slots.
    pub idle_timeout: Duration,
    /// How long a peer may stall *mid-frame* — header or payload started
    /// but not finished — before eviction. This is the slow-loris defense:
    /// trickling one byte per deadline no longer holds a connection slot
    /// forever. Also the write-stall deadline, so a peer that stops
    /// draining its responses is evicted rather than growing the write
    /// queue without bound.
    pub frame_deadline: Duration,
    /// Backend backlog level (in queued micro-batch jobs, the unit of
    /// `MonitorEngine::queue_depth`; summed across tenants on a registry
    /// backend) above which fully-read work requests are shed with `Busy`
    /// instead of queued. Shedding at the wire keeps the engine below
    /// saturation, so already-admitted work keeps its latency. Zero
    /// disables watermark shedding.
    pub queue_watermark: usize,
    /// Requests taking longer than this end-to-end (frame read through
    /// response write) are recorded in the slow-request log scraped by
    /// the `Metrics` opcode. Timings come from the `obs` probe clock
    /// (which reads 0 without the `obs` feature), so the log only
    /// populates with the feature compiled in; untraced requests log
    /// under trace id 0. `Duration::MAX` disables the log.
    pub slow_request_threshold: Duration,
    /// The reactor's poll timeout: the latency bound on timer-wheel
    /// firings and shutdown-flag observation. I/O readiness and worker
    /// completions interrupt the poll, so this does not quantize request
    /// latency.
    pub poll_tick: Duration,
    /// Per-connection outbound-queue high-water mark, in bytes: while a
    /// peer has this much unflushed response data, the reactor stops
    /// reading new frames from it (backpressure instead of unbounded
    /// buffering).
    pub write_high_water: usize,
    /// Cap on accepts processed per reactor tick, bounding how long one
    /// accept storm can monopolize the loop.
    pub max_events_per_tick: usize,
    /// Worker threads serving decoded frames against the backend. Zero
    /// (the default) sizes the pool from the machine's available
    /// parallelism, clamped to [2, 8] — at least two, so admission races
    /// (`Busy` under a small `max_in_flight`) stay observable even on
    /// one core.
    pub dispatch_threads: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 256,
            max_connections: 1024,
            max_payload: DEFAULT_MAX_PAYLOAD,
            poll_interval: Duration::from_millis(10),
            drain_grace: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            frame_deadline: Duration::from_secs(10),
            queue_watermark: 4096,
            slow_request_threshold: Duration::from_millis(100),
            poll_tick: Duration::from_millis(5),
            write_high_water: 1 << 20,
            max_events_per_tick: 1024,
            dispatch_threads: 0,
        }
    }
}

/// Entries the slow-request log retains (last-N, drop-oldest).
pub const SLOW_LOG_CAPACITY: usize = 64;

impl WireConfig {
    /// Sets the global in-flight work budget.
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Sets the live-connection cap.
    pub fn with_max_connections(mut self, max_connections: usize) -> Self {
        self.max_connections = max_connections;
        self
    }

    /// Sets the largest payload a frame may declare.
    pub fn with_max_payload(mut self, max_payload: u32) -> Self {
        self.max_payload = max_payload;
        self
    }

    /// Sets the owner-side shutdown-flag poll granularity.
    pub fn with_poll_interval(mut self, poll_interval: Duration) -> Self {
        self.poll_interval = poll_interval;
        self
    }

    /// Sets the shutdown drain grace.
    pub fn with_drain_grace(mut self, drain_grace: Duration) -> Self {
        self.drain_grace = drain_grace;
        self
    }

    /// Sets the between-frames idle eviction deadline.
    pub fn with_idle_timeout(mut self, idle_timeout: Duration) -> Self {
        self.idle_timeout = idle_timeout;
        self
    }

    /// Sets the mid-frame stall (slow-loris) eviction deadline.
    pub fn with_frame_deadline(mut self, frame_deadline: Duration) -> Self {
        self.frame_deadline = frame_deadline;
        self
    }

    /// Sets the backend-backlog shed watermark (0 disables).
    pub fn with_queue_watermark(mut self, queue_watermark: usize) -> Self {
        self.queue_watermark = queue_watermark;
        self
    }

    /// Sets the slow-request log threshold.
    pub fn with_slow_request_threshold(mut self, slow_request_threshold: Duration) -> Self {
        self.slow_request_threshold = slow_request_threshold;
        self
    }

    /// Sets the reactor poll tick.
    pub fn with_poll_tick(mut self, poll_tick: Duration) -> Self {
        self.poll_tick = poll_tick;
        self
    }

    /// Sets the per-connection outbound-queue high-water mark.
    pub fn with_write_high_water(mut self, write_high_water: usize) -> Self {
        self.write_high_water = write_high_water;
        self
    }

    /// Sets the per-tick accept cap.
    pub fn with_max_events_per_tick(mut self, max_events_per_tick: usize) -> Self {
        self.max_events_per_tick = max_events_per_tick;
        self
    }

    /// Sets the worker-pool size (0 = auto from available parallelism).
    pub fn with_dispatch_threads(mut self, dispatch_threads: usize) -> Self {
        self.dispatch_threads = dispatch_threads;
        self
    }

    fn normalized(self) -> Self {
        let poll_interval = self.poll_interval.max(Duration::from_millis(1));
        let poll_tick = self.poll_tick.max(Duration::from_millis(1));
        // Deadlines below the poll granularity cannot be observed.
        let granularity = poll_interval.max(poll_tick);
        Self {
            max_in_flight: self.max_in_flight.max(1),
            max_connections: self.max_connections.max(1),
            poll_interval,
            poll_tick,
            idle_timeout: self.idle_timeout.max(granularity),
            frame_deadline: self.frame_deadline.max(granularity),
            write_high_water: self.write_high_water.max(4096),
            max_events_per_tick: self.max_events_per_tick.max(1),
            ..self
        }
    }

    pub(crate) fn resolved_dispatch_threads(&self) -> usize {
        if self.dispatch_threads > 0 {
            return self.dispatch_threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8)
    }
}

/// The [`DegradedStats`] ledger, registered in the server's metrics
/// registry under `wire.degraded.*` — one shared set of counters backs
/// both the exact per-server `Stats` snapshot and the `Metrics` scrape.
pub(crate) struct DegradedCounters {
    pub(crate) busy_budget: Counter,
    pub(crate) shed_watermark: Counter,
    pub(crate) refused_connections: Counter,
    pub(crate) evicted_idle: Counter,
    pub(crate) evicted_stalled: Counter,
    pub(crate) unknown_tenant: Counter,
}

impl DegradedCounters {
    fn new(registry: &MetricsRegistry) -> Self {
        Self {
            busy_budget: registry.counter("wire.degraded.busy_budget"),
            shed_watermark: registry.counter("wire.degraded.shed_watermark"),
            refused_connections: registry.counter("wire.degraded.refused_connections"),
            evicted_idle: registry.counter("wire.degraded.evicted_idle"),
            evicted_stalled: registry.counter("wire.degraded.evicted_stalled"),
            unknown_tenant: registry.counter("wire.degraded.unknown_tenant"),
        }
    }

    fn snapshot(&self) -> DegradedStats {
        DegradedStats {
            busy_budget: self.busy_budget.get(),
            shed_watermark: self.shed_watermark.get(),
            refused_connections: self.refused_connections.get(),
            evicted_idle: self.evicted_idle.get(),
            evicted_stalled: self.evicted_stalled.get(),
            unknown_tenant: self.unknown_tenant.get(),
        }
    }
}

/// Per-request-opcode counters (`wire.requests.*`), resolved once at
/// construction so the hot path never touches the registry's lock.
struct OpcodeCounters {
    query: Counter,
    query_batch: Counter,
    absorb: Counter,
    stats: Counter,
    shutdown: Counter,
    mount: Counter,
    unmount: Counter,
    promote: Counter,
    list_tenants: Counter,
    shadow_stats: Counter,
    metrics: Counter,
}

impl OpcodeCounters {
    fn new(registry: &MetricsRegistry) -> Self {
        let named = |op: Opcode| registry.counter(&format!("wire.requests.{}", op.name()));
        Self {
            query: named(Opcode::Query),
            query_batch: named(Opcode::QueryBatch),
            absorb: named(Opcode::Absorb),
            stats: named(Opcode::Stats),
            shutdown: named(Opcode::Shutdown),
            mount: named(Opcode::Mount),
            unmount: named(Opcode::Unmount),
            promote: named(Opcode::Promote),
            list_tenants: named(Opcode::ListTenants),
            shadow_stats: named(Opcode::ShadowStats),
            metrics: named(Opcode::Metrics),
        }
    }

    /// The counter for a request opcode; `None` for response opcodes
    /// (which never arrive at a server as requests worth counting).
    fn get(&self, opcode: Opcode) -> Option<&Counter> {
        Some(match opcode {
            Opcode::Query => &self.query,
            Opcode::QueryBatch => &self.query_batch,
            Opcode::Absorb => &self.absorb,
            Opcode::Stats => &self.stats,
            Opcode::Shutdown => &self.shutdown,
            Opcode::Mount => &self.mount,
            Opcode::Unmount => &self.unmount,
            Opcode::Promote => &self.promote,
            Opcode::ListTenants => &self.list_tenants,
            Opcode::ShadowStats => &self.shadow_stats,
            Opcode::Metrics => &self.metrics,
            _ => return None,
        })
    }
}

/// The server's observability surface: its own metrics registry (merged
/// with the process-global one at scrape time), the slow-request log, and
/// the pre-resolved hot-path handles.
pub(crate) struct ServerObs {
    pub(crate) registry: MetricsRegistry,
    pub(crate) slow: SlowLog,
    ops: OpcodeCounters,
    /// End-to-end wire latency per request (frame read through response
    /// write), in nanoseconds; zero-valued when the `obs` clock is off.
    pub(crate) request_ns: Arc<LatencyHistogram>,
}

impl ServerObs {
    fn new(config: &WireConfig) -> Self {
        let registry = MetricsRegistry::new();
        let threshold_ns =
            u64::try_from(config.slow_request_threshold.as_nanos()).unwrap_or(u64::MAX);
        Self {
            slow: SlowLog::new(SLOW_LOG_CAPACITY, threshold_ns),
            ops: OpcodeCounters::new(&registry),
            request_ns: registry.histogram("wire.request_ns"),
            registry,
        }
    }
}

/// What a [`WireServer`] dispatches decoded frames into — the typed
/// choice [`WireServer::builder`] is constructed over. Anything that
/// converts into a `Backend` (an engine, an `Arc`'d engine, a registry)
/// can be passed to the builder directly.
#[non_exhaustive]
pub enum Backend {
    /// One engine; every work frame goes to it (tenant routes refused).
    Engine(Arc<MonitorEngine<ComposedMonitor>>),
    /// A multi-tenant registry; work frames dispatch by their route.
    Registry(Arc<MonitorRegistry>),
}

impl Backend {
    /// The backend's total shard backlog, the watermark gate's gauge.
    pub(crate) fn backlog(&self) -> usize {
        match self {
            Backend::Engine(engine) => engine.queue_depth(),
            Backend::Registry(registry) => {
                registry.list().iter().map(|t| t.queue_depth as usize).sum()
            }
        }
    }
}

impl From<MonitorEngine<ComposedMonitor>> for Backend {
    fn from(engine: MonitorEngine<ComposedMonitor>) -> Self {
        Backend::Engine(Arc::new(engine))
    }
}

impl From<Arc<MonitorEngine<ComposedMonitor>>> for Backend {
    fn from(engine: Arc<MonitorEngine<ComposedMonitor>>) -> Self {
        Backend::Engine(engine)
    }
}

impl From<Arc<MonitorRegistry>> for Backend {
    fn from(registry: Arc<MonitorRegistry>) -> Self {
        Backend::Registry(registry)
    }
}

impl From<MonitorRegistry> for Backend {
    fn from(registry: MonitorRegistry) -> Self {
        Backend::Registry(Arc::new(registry))
    }
}

/// State shared by the reactor and every worker thread.
pub(crate) struct Shared {
    pub(crate) backend: Backend,
    pub(crate) config: WireConfig,
    pub(crate) shutting_down: AtomicBool,
    in_flight: AtomicUsize,
    pub(crate) degraded: DegradedCounters,
    pub(crate) obs: ServerObs,
}

impl Shared {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Admits one work request against the in-flight budget. The guard
    /// releases the slot on drop.
    ///
    /// The budget is counted in wire requests only — the engine's shard
    /// backlog is measured in micro-batch *jobs*, a different unit, and
    /// every queued job already belongs to a request holding a slot here,
    /// so gating on it again would refuse legal traffic. Saturation of
    /// the backlog itself is the queue watermark's job (see
    /// [`with_admission`]).
    fn try_admit(&self) -> Result<InFlightGuard<'_>, (u32, u32)> {
        let budget = self.config.max_in_flight;
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= budget {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.degraded.busy_budget.inc();
            return Err((prev as u32, budget as u32));
        }
        Ok(InFlightGuard { shared: self })
    }

    /// Counts a routing miss and builds its typed error response.
    fn unknown_tenant_response(&self, message: String) -> Response {
        self.degraded.unknown_tenant.inc();
        Response::Error {
            code: ErrorCode::UnknownTenant,
            message,
        }
    }
}

struct InFlightGuard<'a> {
    shared: &'a Shared,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Staged construction for a [`WireServer`]: pick the [`Backend`], tune
/// the [`WireConfig`], bind.
///
/// ```no_run
/// # use napmon_wire::{WireServer, WireConfig};
/// # fn demo(engine: napmon_serve::MonitorEngine<napmon_core::ComposedMonitor>) -> Result<(), napmon_wire::WireError> {
/// let server = WireServer::builder(engine)
///     .config(WireConfig::default().with_max_in_flight(64))
///     .bind("127.0.0.1:0")?;
/// # drop(server); Ok(()) }
/// ```
#[must_use = "a builder does nothing until bound"]
pub struct WireServerBuilder {
    backend: Backend,
    config: WireConfig,
}

impl WireServerBuilder {
    /// Replaces the default [`WireConfig`].
    pub fn config(mut self, config: WireConfig) -> Self {
        self.config = config;
        self
    }

    /// Binds `addr` and starts serving. Bind to port 0 for an
    /// OS-assigned port ([`WireServer::local_addr`] reports it).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the address cannot be bound or the reactor's
    /// wake channel cannot be created.
    pub fn bind(self, addr: impl ToSocketAddrs) -> Result<WireServer, WireError> {
        WireServer::bind_backend(addr, self.backend, self.config)
    }
}

/// A live TCP monitoring service over one [`MonitorEngine`] or a
/// [`MonitorRegistry`].
///
/// Construction binds and starts accepting; the server runs until a
/// client sends `Shutdown` or the owner calls [`WireServer::shutdown`].
/// Either way the same drain runs: connections finish their started
/// frames, the backend drains, and the final [`ServeReport`] comes back
/// to the owner.
pub struct WireServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl WireServer {
    /// Starts building a server over `backend` — a
    /// [`MonitorEngine`], an `Arc` of one, a [`MonitorRegistry`] `Arc`,
    /// or an explicit [`Backend`].
    pub fn builder(backend: impl Into<Backend>) -> WireServerBuilder {
        WireServerBuilder {
            backend: backend.into(),
            config: WireConfig::default(),
        }
    }

    /// Binds `addr` and starts serving `engine`.
    #[deprecated(
        note = "use `WireServer::builder(engine).config(config).bind(addr)` — one entry point for both backends"
    )]
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: MonitorEngine<ComposedMonitor>,
        config: WireConfig,
    ) -> Result<Self, WireError> {
        Self::builder(engine).config(config).bind(addr)
    }

    /// Binds `addr` and serves `registry`.
    #[deprecated(
        note = "use `WireServer::builder(registry).config(config).bind(addr)` — one entry point for both backends"
    )]
    pub fn bind_registry(
        addr: impl ToSocketAddrs,
        registry: Arc<MonitorRegistry>,
        config: WireConfig,
    ) -> Result<Self, WireError> {
        Self::builder(registry).config(config).bind(addr)
    }

    fn bind_backend(
        addr: impl ToSocketAddrs,
        backend: Backend,
        config: WireConfig,
    ) -> Result<Self, WireError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let config = config.normalized();
        let obs = ServerObs::new(&config);
        let shared = Arc::new(Shared {
            backend,
            config,
            shutting_down: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            degraded: DegradedCounters::new(&obs.registry),
            obs,
        });
        let (jobs_tx, jobs_rx) = std::sync::mpsc::channel::<Job>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let (completions, wake_rx) = CompletionQueue::new()?;
        let mut workers = Vec::with_capacity(config.resolved_dispatch_threads());
        for i in 0..config.resolved_dispatch_threads() {
            let shared = Arc::clone(&shared);
            let jobs_rx = Arc::clone(&jobs_rx);
            let completions = Arc::clone(&completions);
            let handle = std::thread::Builder::new()
                .name(format!("napmon-wire-w{i}"))
                .spawn(move || worker_loop(&shared, &jobs_rx, &completions))
                .expect("spawn wire worker");
            workers.push(handle);
        }
        let reactor = Reactor::new(listener, Arc::clone(&shared), jobs_tx, completions, wake_rx);
        let reactor = std::thread::Builder::new()
            .name("napmon-wire-reactor".to_string())
            .spawn(move || reactor.run())
            .expect("spawn wire reactor");
        Ok(Self {
            addr,
            shared,
            reactor: Some(reactor),
            workers,
        })
    }

    /// Cold start: loads and validates a [`MonitorArtifact`] file, mounts
    /// it on a fresh engine, and serves it — the whole "deploy a monitor
    /// from one file" path. Store-backed artifacts reattach to their
    /// on-disk segments, so this is also the warm-restart entry point.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from the load, or [`WireError::Io`] (inside
    /// `ArtifactError::Io`) if the address cannot be bound.
    pub fn serve_artifact_file(
        path: impl AsRef<Path>,
        addr: impl ToSocketAddrs,
        engine_config: EngineConfig,
        wire_config: WireConfig,
    ) -> Result<Self, ArtifactError> {
        let engine = MonitorEngine::from_artifact_file(path, engine_config)?;
        Self::builder(engine)
            .config(wire_config)
            .bind(addr)
            .map_err(|e| match e {
                WireError::Io(io) => ArtifactError::Io(io),
                other => ArtifactError::Io(std::io::Error::other(other.to_string())),
            })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served engine on a single-engine server; `None` on a registry
    /// backend (use [`WireServer::registry`]).
    pub fn engine(&self) -> Option<&MonitorEngine<ComposedMonitor>> {
        match &self.shared.backend {
            Backend::Engine(engine) => Some(engine),
            Backend::Registry(_) => None,
        }
    }

    /// The served registry on a registry server; `None` on a
    /// single-engine backend.
    pub fn registry(&self) -> Option<&Arc<MonitorRegistry>> {
        match &self.shared.backend {
            Backend::Engine(_) => None,
            Backend::Registry(registry) => Some(registry),
        }
    }

    /// Whether a shutdown has been initiated (by a client or the owner).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Blocks until a client initiates shutdown, then drains and returns
    /// the backend's final report (see [`WireServer::shutdown`]).
    pub fn wait(self) -> ServeReport {
        while !self.shared.shutting_down() {
            std::thread::sleep(self.shared.config.poll_interval);
        }
        self.shutdown()
    }

    /// Graceful shutdown from the owning side: stops accepting, lets every
    /// connection finish its started frames, drains the backend, and
    /// returns the final aggregated report (its `queue_depth` is zero —
    /// the drain guarantee). On a registry backend the report merges every
    /// engine the registry ever ran — live tenants plus hot-swap retirees;
    /// [`WireServer::shutdown_registry`] keeps the per-engine account.
    pub fn shutdown(self) -> ServeReport {
        match self.drain() {
            BackendReport::Single(report) => report,
            BackendReport::Registry(report) => ServeReport::merge(
                report
                    .tenants
                    .into_iter()
                    .chain(report.retired)
                    .map(|outcome| outcome.report),
            ),
        }
    }

    /// [`WireServer::shutdown`] returning the registry's full structured
    /// account (per-tenant and per-retiree drain outcomes). Returns
    /// `None` on a single-engine server — *after* draining it; the server
    /// is down either way.
    pub fn shutdown_registry(self) -> Option<RegistryReport> {
        match self.drain() {
            BackendReport::Single(_) => None,
            BackendReport::Registry(report) => Some(report),
        }
    }

    /// The one drain path: joins the reactor (which exits once every
    /// connection has finished or spent its grace), then the worker pool
    /// (the reactor dropping its job channel is their exit signal), and
    /// only then tears the backend down. The ordering is the thread-leak
    /// guarantee for shutdown-during-hot-swap: once the workers are
    /// joined no dispatcher can still be submitting into an outgoing
    /// engine, and [`MonitorRegistry::shutdown`] joins the background
    /// drainers of every retired engine before returning.
    fn drain(mut self) -> BackendReport {
        self.shared.shutting_down.store(true, Ordering::Release);
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Every serving thread has been joined, so this owner holds the
        // last handle at both levels and neither unwrap can fail; the
        // fallbacks snapshot rather than panic in a shutdown path. The
        // registry arm needs no unwrap: `MonitorRegistry::shutdown` takes
        // `&self` and is idempotent, so caller-held clones are fine.
        let WireServer { shared, .. } = self;
        match Arc::try_unwrap(shared) {
            Ok(shared) => match shared.backend {
                Backend::Engine(engine) => {
                    BackendReport::Single(match MonitorEngine::shutdown_shared(engine) {
                        Ok(report) => report,
                        Err(engine) => engine.report(),
                    })
                }
                Backend::Registry(registry) => BackendReport::Registry(registry.shutdown()),
            },
            Err(shared) => match &shared.backend {
                Backend::Engine(engine) => BackendReport::Single(engine.report()),
                Backend::Registry(registry) => BackendReport::Registry(registry.shutdown()),
            },
        }
    }
}

/// What [`WireServer::drain`] tore down.
enum BackendReport {
    Single(ServeReport),
    Registry(RegistryReport),
}

/// One worker: picks up per-connection job batches, serves each frame
/// against the backend (admission ladder included), encodes the replies
/// in order, and posts the bytes back to the reactor. Exits when the
/// reactor hangs up the job channel.
fn worker_loop(
    shared: &Arc<Shared>,
    jobs: &Arc<Mutex<Receiver<Job>>>,
    completions: &Arc<CompletionQueue>,
) {
    loop {
        // Holding the lock across `recv` serializes job *pickup* only;
        // execution below runs with the lock released.
        let job = match jobs.lock() {
            Ok(receiver) => receiver.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else {
            return;
        };
        let mut bytes = Vec::new();
        let mut close = false;
        let mut initiated_shutdown = false;
        for item in job.items {
            let (response, wants_shutdown) = match item.kind {
                JobKind::Serve(ref frame) => serve_frame(frame, shared, item.trace_id),
                JobKind::Reject(response) => (response, false),
            };
            let respond_started = napmon_obs::now_ns();
            let response_opcode = response.opcode();
            match response
                .into_frame(item.request_id)
                .map(|f| f.traced(item.echo_trace))
                .and_then(|f| f.encode())
            {
                Ok(reply) => {
                    bytes.extend_from_slice(&reply);
                    let finished = napmon_obs::now_ns();
                    let total_ns = finished.saturating_sub(item.decode_started);
                    shared.obs.request_ns.record(total_ns);
                    if let Some(trace_id) = item.echo_trace {
                        if napmon_obs::tracing_enabled() {
                            napmon_obs::record_span(
                                trace_id,
                                SpanKind::WireRespond,
                                respond_started,
                                finished.saturating_sub(respond_started),
                                response_opcode as u8 as u64,
                            );
                        }
                    }
                    // Untraced requests log under trace id 0 — the slow
                    // log works with tracing off, it just cannot name
                    // the trace.
                    shared.obs.slow.observe(
                        item.echo_trace.unwrap_or(0),
                        item.opcode.name(),
                        total_ns,
                    );
                }
                Err(_) => {
                    close = true;
                }
            }
            if wants_shutdown {
                initiated_shutdown = true;
                close = true;
            }
            // Frames pipelined behind a shutdown (or an unencodable
            // reply) go unserved — the connection is closing.
            if close {
                break;
            }
        }
        completions.post(Completion {
            conn: job.conn,
            bytes,
            close,
            initiated_shutdown,
        });
    }
}

/// Serves one decoded frame; the bool reports whether it asked for
/// shutdown. `trace_id` (0 = untraced) flows into the engine's traced
/// submission paths so shard-side spans join the request's chain.
fn serve_frame(frame: &Frame, shared: &Arc<Shared>, trace_id: u64) -> (Response, bool) {
    let request = match Request::decode(frame) {
        Ok(request) => request,
        Err(e) => {
            return (
                Response::Error {
                    code: e.as_code(),
                    message: e.to_string(),
                },
                false,
            )
        }
    };
    if let Some(counter) = shared.obs.ops.get(frame.opcode) {
        counter.inc();
    }
    match &shared.backend {
        Backend::Engine(engine) => {
            serve_single(engine, frame.route.as_ref(), request, shared, trace_id)
        }
        Backend::Registry(registry) => {
            serve_registry(registry, frame.route.as_ref(), request, shared)
        }
    }
}

/// Single-engine dispatch. Tenant routes have no meaning here: a routed
/// frame gets a typed `UnknownTenant` error (accounted as a routing
/// miss), so a client configured for a registry deployment fails loudly
/// instead of silently landing on the wrong monitor.
fn serve_single(
    engine: &Arc<MonitorEngine<ComposedMonitor>>,
    route: Option<&TenantRoute>,
    request: Request,
    shared: &Arc<Shared>,
    trace_id: u64,
) -> (Response, bool) {
    if let Some(route) = route {
        return (
            shared.unknown_tenant_response(format!(
                "this server serves a single engine, not tenant {route}; \
                 drop the route or connect to a registry server"
            )),
            false,
        );
    }
    match request {
        Request::Query(input) => with_admission(shared, || {
            engine
                .submit_traced(input, trace_id)
                .map(Response::Verdict)
                .unwrap_or_else(|e| serve_error_response(&e))
        }),
        Request::QueryBatch(inputs) => with_admission(shared, || {
            engine
                .submit_batch_traced(inputs, trace_id)
                .map(Response::Verdicts)
                .unwrap_or_else(|e| serve_error_response(&e))
        }),
        Request::Absorb(inputs) => with_admission(shared, || {
            engine
                .absorb_batch(&inputs)
                .map(|fresh| Response::Absorbed(fresh as u64))
                .unwrap_or_else(|e| serve_error_response(&e))
        }),
        Request::Stats => (
            stats_response(engine.report(), engine.queue_depth(), shared),
            false,
        ),
        Request::Shutdown => (Response::ShuttingDown, true),
        Request::Metrics => (metrics_response(shared), false),
        Request::Mount { .. }
        | Request::Unmount
        | Request::Promote
        | Request::ListTenants
        | Request::ShadowStats => (
            Response::Error {
                code: ErrorCode::UnsupportedOpcode,
                message: "registry operation on a single-engine server; \
                          mount/unmount/promote need a registry backend"
                    .to_string(),
            },
            false,
        ),
    }
}

/// Registry dispatch. Work opcodes *require* a tenant route;
/// [`ACTIVE_VERSION`] routes through the mirroring hot path, a pinned
/// version addresses one mount (active or shadow) directly with no
/// mirroring. Admin opcodes bypass the work budget — the control plane
/// stays responsive while the data plane sheds.
fn serve_registry(
    registry: &Arc<MonitorRegistry>,
    route: Option<&TenantRoute>,
    request: Request,
    shared: &Arc<Shared>,
) -> (Response, bool) {
    let require_route = |what: &str| -> Result<TenantRoute, Response> {
        route.cloned().ok_or_else(|| {
            shared.unknown_tenant_response(format!(
                "{what} frame arrived unrouted on a registry server; \
                 set a tenant route to name the target monitor"
            ))
        })
    };
    match request {
        Request::Query(input) => {
            let route = match require_route("query") {
                Ok(route) => route,
                Err(response) => return (response, false),
            };
            with_admission(shared, || {
                let served = if route.version == ACTIVE_VERSION {
                    registry.query(&route.model_id, input)
                } else {
                    registry
                        .query_batch_version(&route.model_id, route.version, vec![input])
                        .and_then(|mut verdicts| {
                            verdicts
                                .pop()
                                .ok_or(RegistryError::Serve(napmon_serve::ServeError::ShardDown))
                        })
                };
                served
                    .map(Response::Verdict)
                    .unwrap_or_else(|e| registry_error_response(shared, &e))
            })
        }
        Request::QueryBatch(inputs) => {
            let route = match require_route("query-batch") {
                Ok(route) => route,
                Err(response) => return (response, false),
            };
            with_admission(shared, || {
                let served = if route.version == ACTIVE_VERSION {
                    registry.query_batch(&route.model_id, inputs)
                } else {
                    registry.query_batch_version(&route.model_id, route.version, inputs)
                };
                served
                    .map(Response::Verdicts)
                    .unwrap_or_else(|e| registry_error_response(shared, &e))
            })
        }
        Request::Absorb(inputs) => {
            let route = match require_route("absorb") {
                Ok(route) => route,
                Err(response) => return (response, false),
            };
            with_admission(shared, || {
                let absorbed = if route.version == ACTIVE_VERSION {
                    registry.absorb_batch(&route.model_id, inputs)
                } else {
                    // A pinned absorb feeds one mount only; mirroring is
                    // the active route's contract.
                    registry
                        .resolve(&route.model_id, route.version)
                        .and_then(|mounted| {
                            mounted.engine().absorb_batch(&inputs).map_err(Into::into)
                        })
                };
                absorbed
                    .map(|fresh| Response::Absorbed(fresh as u64))
                    .unwrap_or_else(|e| registry_error_response(shared, &e))
            })
        }
        Request::Stats => match route {
            // A routed Stats reports one mount; unrouted merges every
            // tenant's active engine.
            Some(route) => match registry.resolve(&route.model_id, route.version) {
                Ok(mounted) => (
                    stats_response(
                        mounted.engine().report(),
                        mounted.engine().queue_depth(),
                        shared,
                    ),
                    false,
                ),
                Err(e) => (registry_error_response(shared, &e), false),
            },
            None => (
                stats_response(registry.stats(), shared.backend.backlog(), shared),
                false,
            ),
        },
        Request::Shutdown => (Response::ShuttingDown, true),
        Request::Mount {
            shadow,
            artifact_json,
        } => {
            let route = match require_route("mount") {
                Ok(route) => route,
                Err(response) => return (response, false),
            };
            let mounted = MonitorArtifact::from_json_str(&artifact_json)
                .map_err(RegistryError::from)
                .and_then(|artifact| {
                    if shadow {
                        registry.mount_shadow(&route.model_id, route.version, artifact)
                    } else {
                        registry.mount(&route.model_id, route.version, artifact)
                    }
                });
            (
                mounted
                    .map(|()| Response::Mounted)
                    .unwrap_or_else(|e| registry_error_response(shared, &e)),
                false,
            )
        }
        Request::Unmount => {
            let route = match require_route("unmount") {
                Ok(route) => route,
                Err(response) => return (response, false),
            };
            (
                registry
                    .unmount(&route.model_id)
                    .map(|report| Response::Unmounted(Box::new(report)))
                    .unwrap_or_else(|e| registry_error_response(shared, &e)),
                false,
            )
        }
        Request::Promote => {
            let route = match require_route("promote") {
                Ok(route) => route,
                Err(response) => return (response, false),
            };
            (
                registry
                    .promote(&route.model_id)
                    .map(|report| Response::Promoted(Box::new(report)))
                    .unwrap_or_else(|e| registry_error_response(shared, &e)),
                false,
            )
        }
        Request::Metrics => (metrics_response(shared), false),
        Request::ListTenants => (Response::TenantList(registry.list()), false),
        Request::ShadowStats => {
            let route = match require_route("shadow-stats") {
                Ok(route) => route,
                Err(response) => return (response, false),
            };
            (
                registry
                    .shadow_stats(&route.model_id)
                    .map(|report| Response::ShadowReport(Box::new(report)))
                    .unwrap_or_else(|e| registry_error_response(shared, &e)),
                false,
            )
        }
    }
}

/// Builds the `Metrics` scrape: the server's registry merged with the
/// process-global one, the text exposition, the slow-request log, and
/// the recent trace spans. Control plane, not data plane — it bypasses
/// the admission ladder so observability answers while the server sheds.
fn metrics_response(shared: &Shared) -> Response {
    Response::Metrics(Box::new(ObsReport::capture(
        &shared.obs.registry,
        &shared.obs.slow,
    )))
}

/// Builds a `Stats` response around the given engine-side report.
fn stats_response(engine: ServeReport, queue_depth: usize, shared: &Shared) -> Response {
    let degraded = shared.degraded.snapshot();
    Response::Stats(Box::new(StatsSnapshot {
        engine,
        engine_queue_depth: queue_depth as u64,
        wire_in_flight: shared.in_flight.load(Ordering::Acquire) as u32,
        wire_budget: shared.config.max_in_flight as u32,
        wire_busy_rejections: degraded.busy_total(),
        degraded,
    }))
}

/// Runs a work request under the admission ladder, or answers `Busy`.
///
/// Two gates, both *after* the frame is fully read (a shed never leaves
/// the stream mid-frame): the backend's shard backlog against the queue
/// watermark — shedding at the wire before the engine saturates, so work
/// already queued keeps its latency — then the wire in-flight budget.
fn with_admission(shared: &Arc<Shared>, work: impl FnOnce() -> Response) -> (Response, bool) {
    let watermark = shared.config.queue_watermark;
    if watermark > 0 {
        let backlog = shared.backend.backlog();
        if backlog > watermark {
            shared.degraded.shed_watermark.inc();
            return (
                Response::Busy {
                    in_flight: backlog.min(u32::MAX as usize) as u32,
                    budget: watermark.min(u32::MAX as usize) as u32,
                },
                false,
            );
        }
    }
    match shared.try_admit() {
        Ok(_guard) => (work(), false),
        Err((in_flight, budget)) => (Response::Busy { in_flight, budget }, false),
    }
}

fn serve_error_response(e: &napmon_serve::ServeError) -> Response {
    Response::Error {
        code: serve_error_code(e),
        message: e.to_string(),
    }
}

/// Builds the typed error for a registry refusal, counting routing misses
/// in [`DegradedStats::unknown_tenant`].
fn registry_error_response(shared: &Shared, e: &RegistryError) -> Response {
    let code = registry_error_code(e);
    if code == ErrorCode::UnknownTenant {
        shared.degraded.unknown_tenant.inc();
    }
    Response::Error {
        code,
        message: e.to_string(),
    }
}
