//! The serving side: a TCP listener over a sharded [`MonitorEngine`] or a
//! multi-tenant [`MonitorRegistry`].
//!
//! One OS thread accepts connections; each connection gets its own
//! handler thread holding a clone of the backend handle (engines and the
//! registry are `Sync` — shards are shared, not per-connection). Requests
//! on one connection are served in arrival order, so a pipelining client
//! reads responses in the order it wrote requests; concurrency comes from
//! connections, parallelism from the engine's shards.
//!
//! **Two backends, one wire.** [`WireServer::bind`] serves a single
//! engine; [`WireServer::bind_registry`] serves a [`MonitorRegistry`] and
//! dispatches each work frame by its tenant route (see
//! [`TenantRoute`]). On a registry server a work
//! frame *must* carry a route — an unrouted one is answered with a typed
//! `UnknownTenant` error, as is a routed frame on a single-engine server.
//! Routing misses are accounted in [`DegradedStats::unknown_tenant`].
//! Registry admin requests (`Mount`, `Unmount`, `Promote`, `ListTenants`,
//! `ShadowStats`) are control plane: they bypass the in-flight work
//! budget so operators can still flip traffic while the data plane is
//! saturated.
//!
//! **Backpressure is a typed response, not dropped bytes.** A global
//! in-flight budget bounds the work admitted across all connections;
//! a request over budget is answered with a `Busy` frame carrying the
//! budget figures, and the bytes already read stay framed — the
//! connection remains usable.
//!
//! **Shutdown drains.** A `Shutdown` request (or [`WireServer::shutdown`])
//! stops the accept loop and lets every connection finish the frames it
//! has started — in-flight requests are served, responses written — before
//! the backend itself drains and reports final metrics. On a registry
//! backend the connection threads are joined *first*, then
//! [`MonitorRegistry::shutdown`] runs — which also joins the background
//! drainers of engines retired by earlier hot-swaps, so a shutdown that
//! lands mid-swap cannot leak the outgoing engine's worker threads.
//! A client that disconnects mid-request costs nothing: its work completes
//! in the engine and the unsendable reply is dropped.
//!
//! **Degradation is graceful and accounted.** Under pressure the server
//! walks a fixed shedding ladder rather than falling over: connections
//! over the cap are refused with one `Busy` frame; fully-read requests are
//! shed with `Busy` when the backend's backlog crosses the queue watermark
//! or the in-flight budget is exhausted (never mid-frame — a shed request
//! leaves the connection framed and usable); and peers that stall — idle
//! between frames past [`WireConfig::idle_timeout`], or mid-frame past
//! [`WireConfig::frame_deadline`] (the slow-loris defense) — are evicted
//! with a typed `Evicted` error frame so their threads come back. Every
//! one of these decisions increments a counter in
//! [`DegradedStats`], reported by `Stats`.

use crate::codec::{DegradedStats, Request, Response, StatsSnapshot};
use crate::error::{registry_error_code, serve_error_code, ErrorCode, WireError};
use crate::frame::{Frame, Opcode, TenantRoute, ACTIVE_VERSION, DEFAULT_MAX_PAYLOAD, HEADER_LEN};
use napmon_artifact::{ArtifactError, MonitorArtifact};
use napmon_core::ComposedMonitor;
use napmon_obs::{Counter, LatencyHistogram, MetricsRegistry, ObsReport, SlowLog, SpanKind};
use napmon_registry::{MonitorRegistry, RegistryError, RegistryReport};
use napmon_serve::{EngineConfig, MonitorEngine, ServeReport};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`WireServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConfig {
    /// Global budget of requests being served at once (work opcodes:
    /// `Query`, `QueryBatch`, `Absorb`). A request arriving over budget is
    /// answered `Busy`. Zero is treated as one.
    pub max_in_flight: usize,
    /// Cap on live connections — the bound on the server's dominant
    /// resource (one OS thread per connection, budget or not). An accept
    /// over the cap is answered with a `Busy` frame and closed. Zero is
    /// treated as one.
    pub max_connections: usize,
    /// Largest payload a frame may declare; a larger declaration fails
    /// typed before any allocation.
    pub max_payload: u32,
    /// How often blocked reads and the accept loop re-check the shutdown
    /// flag. Also the granularity of drain waits.
    pub poll_interval: Duration,
    /// How long a mid-frame read may stall during shutdown before the
    /// connection is abandoned as dead.
    pub drain_grace: Duration,
    /// How long a connection may sit idle *between* frames before it is
    /// evicted (typed `Evicted` error frame, then close). Bounds how long
    /// a silent peer can hold one of the capped connection slots.
    pub idle_timeout: Duration,
    /// How long a peer may stall *mid-frame* — header or payload started
    /// but not finished — before eviction. This is the slow-loris defense:
    /// trickling one byte per deadline no longer holds a thread forever.
    /// Also the per-write deadline, so a peer that stops draining its
    /// responses is evicted rather than wedging the handler in `write`.
    pub frame_deadline: Duration,
    /// Backend backlog level (in queued micro-batch jobs, the unit of
    /// `MonitorEngine::queue_depth`; summed across tenants on a registry
    /// backend) above which fully-read work requests are shed with `Busy`
    /// instead of queued. Shedding at the wire keeps the engine below
    /// saturation, so already-admitted work keeps its latency. Zero
    /// disables watermark shedding.
    pub queue_watermark: usize,
    /// Requests taking longer than this end-to-end (frame read through
    /// response write) are recorded in the slow-request log scraped by
    /// the `Metrics` opcode. Timings come from the `obs` probe clock
    /// (which reads 0 without the `obs` feature), so the log only
    /// populates with the feature compiled in; untraced requests log
    /// under trace id 0. `Duration::MAX` disables the log.
    pub slow_request_threshold: Duration,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 256,
            max_connections: 1024,
            max_payload: DEFAULT_MAX_PAYLOAD,
            poll_interval: Duration::from_millis(10),
            drain_grace: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            frame_deadline: Duration::from_secs(10),
            queue_watermark: 4096,
            slow_request_threshold: Duration::from_millis(100),
        }
    }
}

/// Entries the slow-request log retains (last-N, drop-oldest).
pub const SLOW_LOG_CAPACITY: usize = 64;

impl WireConfig {
    fn normalized(self) -> Self {
        let poll_interval = self.poll_interval.max(Duration::from_millis(1));
        Self {
            max_in_flight: self.max_in_flight.max(1),
            max_connections: self.max_connections.max(1),
            poll_interval,
            // Deadlines below the poll granularity cannot be observed.
            idle_timeout: self.idle_timeout.max(poll_interval),
            frame_deadline: self.frame_deadline.max(poll_interval),
            ..self
        }
    }
}

/// The [`DegradedStats`] ledger, registered in the server's metrics
/// registry under `wire.degraded.*` — one shared set of counters backs
/// both the exact per-server `Stats` snapshot and the `Metrics` scrape.
struct DegradedCounters {
    busy_budget: Counter,
    shed_watermark: Counter,
    refused_connections: Counter,
    evicted_idle: Counter,
    evicted_stalled: Counter,
    unknown_tenant: Counter,
}

impl DegradedCounters {
    fn new(registry: &MetricsRegistry) -> Self {
        Self {
            busy_budget: registry.counter("wire.degraded.busy_budget"),
            shed_watermark: registry.counter("wire.degraded.shed_watermark"),
            refused_connections: registry.counter("wire.degraded.refused_connections"),
            evicted_idle: registry.counter("wire.degraded.evicted_idle"),
            evicted_stalled: registry.counter("wire.degraded.evicted_stalled"),
            unknown_tenant: registry.counter("wire.degraded.unknown_tenant"),
        }
    }

    fn snapshot(&self) -> DegradedStats {
        DegradedStats {
            busy_budget: self.busy_budget.get(),
            shed_watermark: self.shed_watermark.get(),
            refused_connections: self.refused_connections.get(),
            evicted_idle: self.evicted_idle.get(),
            evicted_stalled: self.evicted_stalled.get(),
            unknown_tenant: self.unknown_tenant.get(),
        }
    }
}

/// Per-request-opcode counters (`wire.requests.*`), resolved once at
/// construction so the hot path never touches the registry's lock.
struct OpcodeCounters {
    query: Counter,
    query_batch: Counter,
    absorb: Counter,
    stats: Counter,
    shutdown: Counter,
    mount: Counter,
    unmount: Counter,
    promote: Counter,
    list_tenants: Counter,
    shadow_stats: Counter,
    metrics: Counter,
}

impl OpcodeCounters {
    fn new(registry: &MetricsRegistry) -> Self {
        let named = |op: Opcode| registry.counter(&format!("wire.requests.{}", op.name()));
        Self {
            query: named(Opcode::Query),
            query_batch: named(Opcode::QueryBatch),
            absorb: named(Opcode::Absorb),
            stats: named(Opcode::Stats),
            shutdown: named(Opcode::Shutdown),
            mount: named(Opcode::Mount),
            unmount: named(Opcode::Unmount),
            promote: named(Opcode::Promote),
            list_tenants: named(Opcode::ListTenants),
            shadow_stats: named(Opcode::ShadowStats),
            metrics: named(Opcode::Metrics),
        }
    }

    /// The counter for a request opcode; `None` for response opcodes
    /// (which never arrive at a server as requests worth counting).
    fn get(&self, opcode: Opcode) -> Option<&Counter> {
        Some(match opcode {
            Opcode::Query => &self.query,
            Opcode::QueryBatch => &self.query_batch,
            Opcode::Absorb => &self.absorb,
            Opcode::Stats => &self.stats,
            Opcode::Shutdown => &self.shutdown,
            Opcode::Mount => &self.mount,
            Opcode::Unmount => &self.unmount,
            Opcode::Promote => &self.promote,
            Opcode::ListTenants => &self.list_tenants,
            Opcode::ShadowStats => &self.shadow_stats,
            Opcode::Metrics => &self.metrics,
            _ => return None,
        })
    }
}

/// The server's observability surface: its own metrics registry (merged
/// with the process-global one at scrape time), the slow-request log, and
/// the pre-resolved hot-path handles.
struct ServerObs {
    registry: MetricsRegistry,
    slow: SlowLog,
    ops: OpcodeCounters,
    /// End-to-end wire latency per request (frame read through response
    /// write), in nanoseconds; zero-valued when the `obs` clock is off.
    request_ns: Arc<LatencyHistogram>,
}

impl ServerObs {
    fn new(config: &WireConfig) -> Self {
        let registry = MetricsRegistry::new();
        let threshold_ns =
            u64::try_from(config.slow_request_threshold.as_nanos()).unwrap_or(u64::MAX);
        Self {
            slow: SlowLog::new(SLOW_LOG_CAPACITY, threshold_ns),
            ops: OpcodeCounters::new(&registry),
            request_ns: registry.histogram("wire.request_ns"),
            registry,
        }
    }
}

/// What the server dispatches frames into.
enum Backend {
    /// One engine; every work frame goes to it (tenant routes refused).
    Single(Arc<MonitorEngine<ComposedMonitor>>),
    /// A multi-tenant registry; work frames dispatch by their route.
    Registry(Arc<MonitorRegistry>),
}

impl Backend {
    /// The backend's total shard backlog, the watermark gate's gauge.
    fn backlog(&self) -> usize {
        match self {
            Backend::Single(engine) => engine.queue_depth(),
            Backend::Registry(registry) => {
                registry.list().iter().map(|t| t.queue_depth as usize).sum()
            }
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    backend: Backend,
    config: WireConfig,
    shutting_down: AtomicBool,
    in_flight: AtomicUsize,
    degraded: DegradedCounters,
    obs: ServerObs,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Admits one work request against the in-flight budget. The guard
    /// releases the slot on drop.
    ///
    /// The budget is counted in wire requests only — the engine's shard
    /// backlog is measured in micro-batch *jobs*, a different unit, and
    /// every queued job already belongs to a request holding a slot here,
    /// so gating on it again would refuse legal traffic. Saturation of
    /// the backlog itself is the queue watermark's job (see
    /// [`with_admission`]).
    fn try_admit(&self) -> Result<InFlightGuard<'_>, (u32, u32)> {
        let budget = self.config.max_in_flight;
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= budget {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.degraded.busy_budget.inc();
            return Err((prev as u32, budget as u32));
        }
        Ok(InFlightGuard { shared: self })
    }

    /// Counts a routing miss and builds its typed error response.
    fn unknown_tenant_response(&self, message: String) -> Response {
        self.degraded.unknown_tenant.inc();
        Response::Error {
            code: ErrorCode::UnknownTenant,
            message,
        }
    }
}

struct InFlightGuard<'a> {
    shared: &'a Shared,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A live TCP monitoring service over one [`MonitorEngine`] or a
/// [`MonitorRegistry`].
///
/// Construction binds and starts accepting; the server runs until a
/// client sends `Shutdown` or the owner calls [`WireServer::shutdown`].
/// Either way the same drain runs: connections finish their started
/// frames, the backend drains, and the final [`ServeReport`] comes back
/// to the owner.
pub struct WireServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl WireServer {
    /// Binds `addr` and starts serving `engine`.
    ///
    /// Bind to port 0 for an OS-assigned port ([`WireServer::local_addr`]
    /// reports it).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the address cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: MonitorEngine<ComposedMonitor>,
        config: WireConfig,
    ) -> Result<Self, WireError> {
        Self::bind_backend(addr, Backend::Single(Arc::new(engine)), config)
    }

    /// Binds `addr` and serves `registry`: work frames dispatch by their
    /// tenant route, and the registry admin opcodes (`Mount`, `Unmount`,
    /// `Promote`, `ListTenants`, `ShadowStats`) come alive.
    ///
    /// The registry is shared — the caller keeps its `Arc` and may mount,
    /// shadow, and promote concurrently with serving. Shutting the server
    /// down shuts the registry down too (idempotently), after every
    /// connection thread has been joined.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the address cannot be bound.
    pub fn bind_registry(
        addr: impl ToSocketAddrs,
        registry: Arc<MonitorRegistry>,
        config: WireConfig,
    ) -> Result<Self, WireError> {
        Self::bind_backend(addr, Backend::Registry(registry), config)
    }

    fn bind_backend(
        addr: impl ToSocketAddrs,
        backend: Backend,
        config: WireConfig,
    ) -> Result<Self, WireError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // The accept loop polls, so the shutdown flag can stop it without
        // a wake-up connection.
        listener.set_nonblocking(true)?;
        let config = config.normalized();
        let obs = ServerObs::new(&config);
        let shared = Arc::new(Shared {
            backend,
            config,
            shutting_down: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            degraded: DegradedCounters::new(&obs.registry),
            obs,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("napmon-wire-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept loop");
        Ok(Self {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// Cold start: loads and validates a [`MonitorArtifact`] file, mounts
    /// it on a fresh engine, and serves it — the whole "deploy a monitor
    /// from one file" path. Store-backed artifacts reattach to their
    /// on-disk segments, so this is also the warm-restart entry point.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from the load, or [`WireError::Io`] (inside
    /// `ArtifactError::Io`) if the address cannot be bound.
    pub fn serve_artifact_file(
        path: impl AsRef<Path>,
        addr: impl ToSocketAddrs,
        engine_config: EngineConfig,
        wire_config: WireConfig,
    ) -> Result<Self, ArtifactError> {
        let engine = MonitorEngine::from_artifact_file(path, engine_config)?;
        Self::bind(addr, engine, wire_config).map_err(|e| match e {
            WireError::Io(io) => ArtifactError::Io(io),
            other => ArtifactError::Io(std::io::Error::other(other.to_string())),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served engine on a single-engine server; `None` on a registry
    /// backend (use [`WireServer::registry`]).
    pub fn engine(&self) -> Option<&MonitorEngine<ComposedMonitor>> {
        match &self.shared.backend {
            Backend::Single(engine) => Some(engine),
            Backend::Registry(_) => None,
        }
    }

    /// The served registry on a registry server; `None` on a
    /// single-engine backend.
    pub fn registry(&self) -> Option<&Arc<MonitorRegistry>> {
        match &self.shared.backend {
            Backend::Single(_) => None,
            Backend::Registry(registry) => Some(registry),
        }
    }

    /// Whether a shutdown has been initiated (by a client or the owner).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Blocks until a client initiates shutdown, then drains and returns
    /// the backend's final report (see [`WireServer::shutdown`]).
    pub fn wait(self) -> ServeReport {
        while !self.shared.shutting_down() {
            std::thread::sleep(self.shared.config.poll_interval);
        }
        self.shutdown()
    }

    /// Graceful shutdown from the owning side: stops accepting, lets every
    /// connection finish its started frames, drains the backend, and
    /// returns the final aggregated report (its `queue_depth` is zero —
    /// the drain guarantee). On a registry backend the report merges every
    /// engine the registry ever ran — live tenants plus hot-swap retirees;
    /// [`WireServer::shutdown_registry`] keeps the per-engine account.
    pub fn shutdown(self) -> ServeReport {
        match self.drain() {
            BackendReport::Single(report) => report,
            BackendReport::Registry(report) => ServeReport::merge(
                report
                    .tenants
                    .into_iter()
                    .chain(report.retired)
                    .map(|outcome| outcome.report),
            ),
        }
    }

    /// [`WireServer::shutdown`] returning the registry's full structured
    /// account (per-tenant and per-retiree drain outcomes). Returns
    /// `None` on a single-engine server — *after* draining it; the server
    /// is down either way.
    pub fn shutdown_registry(self) -> Option<RegistryReport> {
        match self.drain() {
            BackendReport::Single(_) => None,
            BackendReport::Registry(report) => Some(report),
        }
    }

    /// The one drain path: joins the accept loop, then every connection
    /// thread, and only then tears the backend down. The ordering is the
    /// thread-leak guarantee for shutdown-during-hot-swap: once the
    /// connections are joined no dispatcher can still be submitting into
    /// an outgoing engine, and [`MonitorRegistry::shutdown`] joins the
    /// background drainers of every retired engine before returning.
    fn drain(mut self) -> BackendReport {
        self.shared.shutting_down.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            for conn in accept.join().unwrap_or_default() {
                let _ = conn.join();
            }
        }
        // Every serving thread has been joined, so this owner holds the
        // last handle at both levels and neither unwrap can fail; the
        // fallbacks snapshot rather than panic in a shutdown path. The
        // registry arm needs no unwrap: `MonitorRegistry::shutdown` takes
        // `&self` and is idempotent, so caller-held clones are fine.
        let WireServer { shared, .. } = self;
        match Arc::try_unwrap(shared) {
            Ok(shared) => match shared.backend {
                Backend::Single(engine) => {
                    BackendReport::Single(match MonitorEngine::shutdown_shared(engine) {
                        Ok(report) => report,
                        Err(engine) => engine.report(),
                    })
                }
                Backend::Registry(registry) => BackendReport::Registry(registry.shutdown()),
            },
            Err(shared) => match &shared.backend {
                Backend::Single(engine) => BackendReport::Single(engine.report()),
                Backend::Registry(registry) => BackendReport::Registry(registry.shutdown()),
            },
        }
    }
}

/// What [`WireServer::drain`] tore down.
enum BackendReport {
    Single(ServeReport),
    Registry(RegistryReport),
}

/// Joins (and drops) every handle whose thread has already exited, so a
/// long-lived server's bookkeeping scales with *concurrent* connections,
/// not with every connection ever accepted.
fn reap_finished(connections: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < connections.len() {
        if connections[i].is_finished() {
            let _ = connections.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

/// Accepts until shutdown; returns the live connection handles for
/// joining.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    let mut next_conn = 0usize;
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                reap_finished(&mut connections);
                // The thread-per-connection model makes live connections
                // the server's dominant resource; over the cap, the
                // refusal is a typed Busy frame, not a silent drop.
                if connections.len() >= shared.config.max_connections {
                    let refusal = Response::Busy {
                        in_flight: connections.len() as u32,
                        budget: shared.config.max_connections as u32,
                    };
                    if let Ok(bytes) = refusal.into_frame(0).and_then(|f| f.encode()) {
                        let _ = stream.write_all(&bytes);
                    }
                    shared.degraded.refused_connections.inc();
                    continue;
                }
                let conn_shared = Arc::clone(shared);
                let id = next_conn;
                next_conn += 1;
                let handle = std::thread::Builder::new()
                    .name(format!("napmon-wire-conn-{id}"))
                    .spawn(move || handle_connection(stream, &conn_shared))
                    .expect("spawn connection handler");
                connections.push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                reap_finished(&mut connections);
                std::thread::sleep(shared.config.poll_interval);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // A failed accept (fd pressure, transient network error)
            // affects that one connection attempt, not the server.
            Err(_) => std::thread::sleep(shared.config.poll_interval),
        }
    }
    connections
}

/// What one attempt to read a fixed number of bytes produced.
enum ReadOutcome<T> {
    /// The buffer is full.
    Full(T),
    /// The peer closed (or shutdown fired) before the first byte.
    Closed,
}

/// Why a blocking read gave up on a connection.
enum ReadError {
    /// The stream itself failed or desynchronized.
    Wire(WireError),
    /// The peer sat idle between frames past the idle deadline.
    EvictIdle,
    /// The peer stalled mid-frame past the frame deadline.
    EvictStalled,
}

impl From<WireError> for ReadError {
    fn from(e: WireError) -> Self {
        ReadError::Wire(e)
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Wire(e.into())
    }
}

/// Serves one connection until EOF, a fatal frame error, eviction, or
/// drained shutdown.
fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    // A peer that stops draining responses is evicted by the write
    // deadline instead of wedging this thread in `write_all`.
    let _ = stream.set_write_timeout(Some(shared.config.frame_deadline));
    // Once a shutdown is observed, this connection serves what is already
    // in flight for at most `drain_grace` more. Without the bound, a peer
    // streaming new frames back-to-back never hits the read timeout where
    // the shutdown flag is otherwise checked — and one busy client would
    // pin `WireServer::drain` (and every worker behind it) forever.
    let mut drain_deadline: Option<Instant> = None;
    loop {
        if shared.shutting_down() {
            let deadline =
                *drain_deadline.get_or_insert_with(|| Instant::now() + shared.config.drain_grace);
            if Instant::now() >= deadline {
                // Grace spent: close instead of accepting new work. The
                // peer reads EOF and gets a typed transport error.
                return;
            }
        }
        let header = match read_header(&mut stream, shared) {
            Ok(ReadOutcome::Full(header)) => header,
            Ok(ReadOutcome::Closed) => return,
            Err(evict @ (ReadError::EvictIdle | ReadError::EvictStalled)) => {
                evict_connection(&mut stream, shared, &evict, 0);
                return;
            }
            Err(ReadError::Wire(e)) => {
                // The stream is unframed from here; report and close.
                respond_error_raw(&mut stream, 0, &e);
                return;
            }
        };
        // The request id is at a fixed offset, so even a frame that fails
        // validation gets its error correlated — unless the magic itself
        // is wrong, in which case the offset means nothing.
        let raw_id = u64::from_le_bytes(header[8..16].try_into().expect("fixed slice"));
        let parsed = match Frame::decode_header(&header, shared.config.max_payload) {
            Ok(parsed) => parsed,
            Err(e) => {
                let id = if header[0..4] == crate::frame::MAGIC {
                    raw_id
                } else {
                    0
                };
                respond_error_raw(&mut stream, id, &e);
                return;
            }
        };
        let request_id = parsed.request_id;
        // The decode span starts once the header is in hand; its id is
        // only known after the payload region is assembled, so the span
        // is emitted then. `now_ns` is 0 with the obs feature off, and
        // every probe below folds away with it.
        let decode_started = napmon_obs::now_ns();
        let payload = match read_payload(&mut stream, shared, parsed.payload_len as usize) {
            Ok(payload) => payload,
            Err(evict @ (ReadError::EvictIdle | ReadError::EvictStalled)) => {
                evict_connection(&mut stream, shared, &evict, request_id);
                return;
            }
            Err(ReadError::Wire(_)) => return, // peer died mid-frame; nothing to answer
        };
        // A frame whose route block fails to decode is still a *complete*
        // frame — the stream stays aligned — so the error is a typed
        // response and the connection lives on, exactly like a payload
        // that fails `Request::decode`.
        let mut echo_trace = None;
        let request_opcode = parsed.opcode;
        let (response, initiated_shutdown) = match Frame::assemble(parsed, payload) {
            Ok(frame) => {
                // The request's trace id: carried by the client, or minted
                // here when tracing is armed and the frame came untraced —
                // the wire server is where ids are born.
                let trace_id = match frame.trace_id {
                    Some(id) => id,
                    None if napmon_obs::tracing_enabled() => napmon_obs::mint_trace_id(),
                    None => 0,
                };
                echo_trace = (trace_id != 0).then_some(trace_id);
                if trace_id != 0 && napmon_obs::tracing_enabled() {
                    napmon_obs::record_span(
                        trace_id,
                        SpanKind::WireDecode,
                        decode_started,
                        napmon_obs::now_ns().saturating_sub(decode_started),
                        frame.opcode as u8 as u64,
                    );
                }
                serve_frame(&frame, shared, trace_id)
            }
            Err(e) => (
                Response::Error {
                    code: e.as_code(),
                    message: e.to_string(),
                },
                false,
            ),
        };
        let respond_started = napmon_obs::now_ns();
        let response_opcode = response.opcode();
        match response
            .into_frame(request_id)
            .map(|f| f.traced(echo_trace))
            .and_then(|f| f.encode())
        {
            Ok(reply) => {
                if let Err(e) = stream.write_all(&reply) {
                    // A write deadline means the peer stopped draining —
                    // that is an eviction, and it is accounted as one.
                    // Otherwise it is a disconnected client: the work is
                    // done (the engine served it); only the reply is lost.
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut {
                        shared.degraded.evicted_stalled.inc();
                    }
                    return;
                }
                let finished = napmon_obs::now_ns();
                let total_ns = finished.saturating_sub(decode_started);
                shared.obs.request_ns.record(total_ns);
                if let Some(trace_id) = echo_trace {
                    if napmon_obs::tracing_enabled() {
                        napmon_obs::record_span(
                            trace_id,
                            SpanKind::WireRespond,
                            respond_started,
                            finished.saturating_sub(respond_started),
                            response_opcode as u8 as u64,
                        );
                    }
                }
                // Untraced requests log under trace id 0 — the slow log
                // works with tracing off, it just cannot name the trace.
                shared
                    .obs
                    .slow
                    .observe(echo_trace.unwrap_or(0), request_opcode.name(), total_ns);
            }
            Err(_) => return,
        }
        if initiated_shutdown {
            shared.shutting_down.store(true, Ordering::Release);
            return;
        }
    }
}

/// Serves one decoded frame; the bool reports whether it asked for
/// shutdown. `trace_id` (0 = untraced) flows into the engine's traced
/// submission paths so shard-side spans join the request's chain.
fn serve_frame(frame: &Frame, shared: &Arc<Shared>, trace_id: u64) -> (Response, bool) {
    let request = match Request::decode(frame) {
        Ok(request) => request,
        Err(e) => {
            return (
                Response::Error {
                    code: e.as_code(),
                    message: e.to_string(),
                },
                false,
            )
        }
    };
    if let Some(counter) = shared.obs.ops.get(frame.opcode) {
        counter.inc();
    }
    match &shared.backend {
        Backend::Single(engine) => {
            serve_single(engine, frame.route.as_ref(), request, shared, trace_id)
        }
        Backend::Registry(registry) => {
            serve_registry(registry, frame.route.as_ref(), request, shared)
        }
    }
}

/// Single-engine dispatch. Tenant routes have no meaning here: a routed
/// frame gets a typed `UnknownTenant` error (accounted as a routing
/// miss), so a client configured for a registry deployment fails loudly
/// instead of silently landing on the wrong monitor.
fn serve_single(
    engine: &Arc<MonitorEngine<ComposedMonitor>>,
    route: Option<&TenantRoute>,
    request: Request,
    shared: &Arc<Shared>,
    trace_id: u64,
) -> (Response, bool) {
    if let Some(route) = route {
        return (
            shared.unknown_tenant_response(format!(
                "this server serves a single engine, not tenant {route}; \
                 drop the route or connect to a registry server"
            )),
            false,
        );
    }
    match request {
        Request::Query(input) => with_admission(shared, || {
            engine
                .submit_traced(input, trace_id)
                .map(Response::Verdict)
                .unwrap_or_else(|e| serve_error_response(&e))
        }),
        Request::QueryBatch(inputs) => with_admission(shared, || {
            engine
                .submit_batch_traced(inputs, trace_id)
                .map(Response::Verdicts)
                .unwrap_or_else(|e| serve_error_response(&e))
        }),
        Request::Absorb(inputs) => with_admission(shared, || {
            engine
                .absorb_batch(&inputs)
                .map(|fresh| Response::Absorbed(fresh as u64))
                .unwrap_or_else(|e| serve_error_response(&e))
        }),
        Request::Stats => (
            stats_response(engine.report(), engine.queue_depth(), shared),
            false,
        ),
        Request::Shutdown => (Response::ShuttingDown, true),
        Request::Metrics => (metrics_response(shared), false),
        Request::Mount { .. }
        | Request::Unmount
        | Request::Promote
        | Request::ListTenants
        | Request::ShadowStats => (
            Response::Error {
                code: ErrorCode::UnsupportedOpcode,
                message: "registry operation on a single-engine server; \
                          mount/unmount/promote need a registry backend"
                    .to_string(),
            },
            false,
        ),
    }
}

/// Registry dispatch. Work opcodes *require* a tenant route;
/// [`ACTIVE_VERSION`] routes through the mirroring hot path, a pinned
/// version addresses one mount (active or shadow) directly with no
/// mirroring. Admin opcodes bypass the work budget — the control plane
/// stays responsive while the data plane sheds.
fn serve_registry(
    registry: &Arc<MonitorRegistry>,
    route: Option<&TenantRoute>,
    request: Request,
    shared: &Arc<Shared>,
) -> (Response, bool) {
    let require_route = |what: &str| -> Result<TenantRoute, Response> {
        route.cloned().ok_or_else(|| {
            shared.unknown_tenant_response(format!(
                "{what} frame arrived unrouted on a registry server; \
                 set a tenant route to name the target monitor"
            ))
        })
    };
    match request {
        Request::Query(input) => {
            let route = match require_route("query") {
                Ok(route) => route,
                Err(response) => return (response, false),
            };
            with_admission(shared, || {
                let served = if route.version == ACTIVE_VERSION {
                    registry.query(&route.model_id, input)
                } else {
                    registry
                        .query_batch_version(&route.model_id, route.version, vec![input])
                        .and_then(|mut verdicts| {
                            verdicts
                                .pop()
                                .ok_or(RegistryError::Serve(napmon_serve::ServeError::ShardDown))
                        })
                };
                served
                    .map(Response::Verdict)
                    .unwrap_or_else(|e| registry_error_response(shared, &e))
            })
        }
        Request::QueryBatch(inputs) => {
            let route = match require_route("query-batch") {
                Ok(route) => route,
                Err(response) => return (response, false),
            };
            with_admission(shared, || {
                let served = if route.version == ACTIVE_VERSION {
                    registry.query_batch(&route.model_id, inputs)
                } else {
                    registry.query_batch_version(&route.model_id, route.version, inputs)
                };
                served
                    .map(Response::Verdicts)
                    .unwrap_or_else(|e| registry_error_response(shared, &e))
            })
        }
        Request::Absorb(inputs) => {
            let route = match require_route("absorb") {
                Ok(route) => route,
                Err(response) => return (response, false),
            };
            with_admission(shared, || {
                let absorbed = if route.version == ACTIVE_VERSION {
                    registry.absorb_batch(&route.model_id, inputs)
                } else {
                    // A pinned absorb feeds one mount only; mirroring is
                    // the active route's contract.
                    registry
                        .resolve(&route.model_id, route.version)
                        .and_then(|mounted| {
                            mounted.engine().absorb_batch(&inputs).map_err(Into::into)
                        })
                };
                absorbed
                    .map(|fresh| Response::Absorbed(fresh as u64))
                    .unwrap_or_else(|e| registry_error_response(shared, &e))
            })
        }
        Request::Stats => match route {
            // A routed Stats reports one mount; unrouted merges every
            // tenant's active engine.
            Some(route) => match registry.resolve(&route.model_id, route.version) {
                Ok(mounted) => (
                    stats_response(
                        mounted.engine().report(),
                        mounted.engine().queue_depth(),
                        shared,
                    ),
                    false,
                ),
                Err(e) => (registry_error_response(shared, &e), false),
            },
            None => (
                stats_response(registry.stats(), shared.backend.backlog(), shared),
                false,
            ),
        },
        Request::Shutdown => (Response::ShuttingDown, true),
        Request::Mount {
            shadow,
            artifact_json,
        } => {
            let route = match require_route("mount") {
                Ok(route) => route,
                Err(response) => return (response, false),
            };
            let mounted = MonitorArtifact::from_json_str(&artifact_json)
                .map_err(RegistryError::from)
                .and_then(|artifact| {
                    if shadow {
                        registry.mount_shadow(&route.model_id, route.version, artifact)
                    } else {
                        registry.mount(&route.model_id, route.version, artifact)
                    }
                });
            (
                mounted
                    .map(|()| Response::Mounted)
                    .unwrap_or_else(|e| registry_error_response(shared, &e)),
                false,
            )
        }
        Request::Unmount => {
            let route = match require_route("unmount") {
                Ok(route) => route,
                Err(response) => return (response, false),
            };
            (
                registry
                    .unmount(&route.model_id)
                    .map(|report| Response::Unmounted(Box::new(report)))
                    .unwrap_or_else(|e| registry_error_response(shared, &e)),
                false,
            )
        }
        Request::Promote => {
            let route = match require_route("promote") {
                Ok(route) => route,
                Err(response) => return (response, false),
            };
            (
                registry
                    .promote(&route.model_id)
                    .map(|report| Response::Promoted(Box::new(report)))
                    .unwrap_or_else(|e| registry_error_response(shared, &e)),
                false,
            )
        }
        Request::Metrics => (metrics_response(shared), false),
        Request::ListTenants => (Response::TenantList(registry.list()), false),
        Request::ShadowStats => {
            let route = match require_route("shadow-stats") {
                Ok(route) => route,
                Err(response) => return (response, false),
            };
            (
                registry
                    .shadow_stats(&route.model_id)
                    .map(|report| Response::ShadowReport(Box::new(report)))
                    .unwrap_or_else(|e| registry_error_response(shared, &e)),
                false,
            )
        }
    }
}

/// Builds the `Metrics` scrape: the server's registry merged with the
/// process-global one, the text exposition, the slow-request log, and
/// the recent trace spans. Control plane, not data plane — it bypasses
/// the admission ladder so observability answers while the server sheds.
fn metrics_response(shared: &Shared) -> Response {
    Response::Metrics(Box::new(ObsReport::capture(
        &shared.obs.registry,
        &shared.obs.slow,
    )))
}

/// Builds a `Stats` response around the given engine-side report.
fn stats_response(engine: ServeReport, queue_depth: usize, shared: &Shared) -> Response {
    let degraded = shared.degraded.snapshot();
    Response::Stats(Box::new(StatsSnapshot {
        engine,
        engine_queue_depth: queue_depth as u64,
        wire_in_flight: shared.in_flight.load(Ordering::Acquire) as u32,
        wire_budget: shared.config.max_in_flight as u32,
        wire_busy_rejections: degraded.busy_total(),
        degraded,
    }))
}

/// Runs a work request under the admission ladder, or answers `Busy`.
///
/// Two gates, both *after* the frame is fully read (a shed never leaves
/// the stream mid-frame): the backend's shard backlog against the queue
/// watermark — shedding at the wire before the engine saturates, so work
/// already queued keeps its latency — then the wire in-flight budget.
fn with_admission(shared: &Arc<Shared>, work: impl FnOnce() -> Response) -> (Response, bool) {
    let watermark = shared.config.queue_watermark;
    if watermark > 0 {
        let backlog = shared.backend.backlog();
        if backlog > watermark {
            shared.degraded.shed_watermark.inc();
            return (
                Response::Busy {
                    in_flight: backlog.min(u32::MAX as usize) as u32,
                    budget: watermark.min(u32::MAX as usize) as u32,
                },
                false,
            );
        }
    }
    match shared.try_admit() {
        Ok(_guard) => (work(), false),
        Err((in_flight, budget)) => (Response::Busy { in_flight, budget }, false),
    }
}

fn serve_error_response(e: &napmon_serve::ServeError) -> Response {
    Response::Error {
        code: serve_error_code(e),
        message: e.to_string(),
    }
}

/// Builds the typed error for a registry refusal, counting routing misses
/// in [`DegradedStats::unknown_tenant`].
fn registry_error_response(shared: &Shared, e: &RegistryError) -> Response {
    let code = registry_error_code(e);
    if code == ErrorCode::UnknownTenant {
        shared.degraded.unknown_tenant.inc();
    }
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// Evicts a stalled connection: count it, tell the peer why with a typed
/// `Evicted` error frame, and hang up politely (half-close + drain) so
/// the frame survives long enough to be read.
fn evict_connection(stream: &mut TcpStream, shared: &Arc<Shared>, why: &ReadError, id: u64) {
    let (counter, message) = match why {
        ReadError::EvictIdle => (
            &shared.degraded.evicted_idle,
            "connection idle past the deadline; reconnect to continue",
        ),
        ReadError::EvictStalled => (
            &shared.degraded.evicted_stalled,
            "frame stalled past the deadline; reconnect to continue",
        ),
        ReadError::Wire(_) => return, // not an eviction
    };
    counter.inc();
    let response = Response::Error {
        code: crate::ErrorCode::Evicted,
        message: message.to_string(),
    };
    if let Ok(bytes) = response.into_frame(id).and_then(|f| f.encode()) {
        let _ = stream.write_all(&bytes);
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

/// Best-effort typed error reply on a stream that may already be broken,
/// followed by a polite hangup: half-close the write side, then drain
/// whatever the peer already sent. Closing with unread bytes would reset
/// the connection and could discard the error frame before the peer reads
/// it.
fn respond_error_raw(stream: &mut TcpStream, request_id: u64, e: &WireError) {
    let response = Response::Error {
        code: e.as_code(),
        message: e.to_string(),
    };
    if let Ok(bytes) = response.into_frame(request_id).and_then(|f| f.encode()) {
        let _ = stream.write_all(&bytes);
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    let deadline = std::time::Instant::now() + Duration::from_secs(1);
    while std::time::Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Reads a whole header, tolerating read timeouts. Between frames a
/// shutdown (with no bytes read yet) closes cleanly; once a frame has
/// started it is read to completion so it can be served — the drain
/// guarantee. A peer idle past the idle deadline, or stalled mid-header
/// past the frame deadline, is evicted instead of holding the thread.
fn read_header(
    stream: &mut TcpStream,
    shared: &Shared,
) -> Result<ReadOutcome<[u8; HEADER_LEN]>, ReadError> {
    let mut buf = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    let mut stalled = Duration::ZERO;
    while filled < HEADER_LEN {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(ReadOutcome::Closed)
                } else {
                    Err(WireError::Truncated.into())
                };
            }
            Ok(n) => {
                filled += n;
                stalled = Duration::ZERO;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                stalled += shared.config.poll_interval;
                if shared.shutting_down() {
                    if filled == 0 {
                        return Ok(ReadOutcome::Closed);
                    }
                    if stalled >= shared.config.drain_grace {
                        // A peer that started a frame but stopped sending
                        // cannot hold the drain hostage.
                        return Err(WireError::Truncated.into());
                    }
                } else if filled == 0 {
                    if stalled >= shared.config.idle_timeout {
                        return Err(ReadError::EvictIdle);
                    }
                } else if stalled >= shared.config.frame_deadline {
                    return Err(ReadError::EvictStalled);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Full(buf))
}

/// Reads a declared payload to completion (the frame has started; it will
/// be served), subject to the same drain grace and frame deadline as
/// headers.
fn read_payload(stream: &mut TcpStream, shared: &Shared, len: usize) -> Result<Vec<u8>, ReadError> {
    let mut buf = vec![0u8; len];
    let mut filled = 0usize;
    let mut stalled = Duration::ZERO;
    while filled < len {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(WireError::Truncated.into()),
            Ok(n) => {
                filled += n;
                stalled = Duration::ZERO;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                stalled += shared.config.poll_interval;
                if shared.shutting_down() {
                    if stalled >= shared.config.drain_grace {
                        return Err(WireError::Truncated.into());
                    }
                } else if stalled >= shared.config.frame_deadline {
                    return Err(ReadError::EvictStalled);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(buf)
}
