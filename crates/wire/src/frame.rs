//! The framed binary protocol: one fixed header per message.
//!
//! Every message — request or response, either direction — is one frame:
//!
//! ```text
//! offset size field
//!      0    4 magic            b"NAPW"
//!      4    2 protocol version u16 LE (this build: [`WIRE_PROTOCOL_VERSION`])
//!      6    1 opcode           [`Opcode`]
//!      7    1 reserved         must be 0 (future flags)
//!      8    8 request id       u64 LE; responses echo the request's id
//!     16    4 payload length   u32 LE
//!     20    n payload          opcode-specific (see `codec`)
//! ```
//!
//! The header is fixed-size and self-describing, so a reader always knows
//! how many bytes the frame still owes before interpreting any of them.
//! Decoding is total: any byte string yields either a frame or a typed
//! [`WireError`] — never a panic, and never a read past the declared
//! length (pinned against arbitrary inputs by `tests/frame_props.rs`).
//!
//! **Version negotiation policy:** there is no negotiation — each protocol
//! epoch has exactly one version, carried in every frame. A server
//! receiving a foreign version answers with a typed `Error` response
//! naming the version it speaks and closes the connection; the client
//! surfaces that as [`WireError::UnsupportedVersion`]. Mixed-version
//! deployments upgrade the servers first (a new client never talks down).

use crate::error::WireError;

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"NAPW";

/// The single protocol version this build speaks (see the
/// [module docs](self) for the policy).
pub const WIRE_PROTOCOL_VERSION: u16 = 1;

/// Bytes in the fixed frame header.
pub const HEADER_LEN: usize = 20;

/// Default cap on a frame's declared payload length (32 MiB): large enough
/// for a several-thousand-input batch, small enough that a forged length
/// cannot balloon server memory.
pub const DEFAULT_MAX_PAYLOAD: u32 = 32 << 20;

/// Every operation the protocol knows, requests and responses.
///
/// Requests occupy the low range, responses have the top bit set; `Busy`
/// and `Error` are responses any request may receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Request: one input vector, answer one verdict.
    Query = 0x01,
    /// Request: a batch of input vectors, answer a verdict batch.
    QueryBatch = 0x02,
    /// Request: absorb a batch of inputs into the store-backed members.
    Absorb = 0x03,
    /// Request: snapshot the engine's serving metrics.
    Stats = 0x04,
    /// Request: begin a graceful server shutdown (drain, then close).
    Shutdown = 0x05,
    /// Response to [`Opcode::Query`]: one encoded verdict.
    Verdict = 0x81,
    /// Response to [`Opcode::QueryBatch`]: an encoded verdict batch.
    Verdicts = 0x82,
    /// Response to [`Opcode::Absorb`]: `u64` count of new patterns.
    Absorbed = 0x83,
    /// Response to [`Opcode::Stats`]: a JSON [`ServeReport`] plus wire
    /// gauges.
    ///
    /// [`ServeReport`]: napmon_serve::ServeReport
    StatsReport = 0x84,
    /// Response to [`Opcode::Shutdown`]: acknowledged, draining.
    ShuttingDown = 0x85,
    /// Response: the in-flight budget is exhausted; retry later.
    Busy = 0x90,
    /// Response: the request failed; payload carries code + message.
    Error = 0xFF,
}

impl Opcode {
    /// Decodes an opcode byte.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownOpcode`] for bytes naming no operation.
    pub fn from_wire(byte: u8) -> Result<Self, WireError> {
        Ok(match byte {
            0x01 => Opcode::Query,
            0x02 => Opcode::QueryBatch,
            0x03 => Opcode::Absorb,
            0x04 => Opcode::Stats,
            0x05 => Opcode::Shutdown,
            0x81 => Opcode::Verdict,
            0x82 => Opcode::Verdicts,
            0x83 => Opcode::Absorbed,
            0x84 => Opcode::StatsReport,
            0x85 => Opcode::ShuttingDown,
            0x90 => Opcode::Busy,
            0xFF => Opcode::Error,
            other => return Err(WireError::UnknownOpcode(other)),
        })
    }

    /// Whether this opcode is a request (client → server).
    pub fn is_request(self) -> bool {
        matches!(
            self,
            Opcode::Query | Opcode::QueryBatch | Opcode::Absorb | Opcode::Stats | Opcode::Shutdown
        )
    }
}

/// One decoded frame: the header fields plus the owned payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The operation (or response kind).
    pub opcode: Opcode,
    /// Correlates responses with requests across pipelining.
    pub request_id: u64,
    /// Opcode-specific payload bytes (see `codec`).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with no payload.
    pub fn empty(opcode: Opcode, request_id: u64) -> Self {
        Self {
            opcode,
            request_id,
            payload: Vec::new(),
        }
    }

    /// Encodes the frame (header + payload) into one buffer, ready for a
    /// single write.
    ///
    /// # Errors
    ///
    /// [`WireError::TooLarge`] when the payload is longer than the `u32`
    /// length prefix can carry. The old behavior — `len as u32` — silently
    /// wrapped, emitting a frame whose declared length disagreed with its
    /// bytes; a peer would misparse the remainder of the stream.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let declared = declared_payload_len(self.payload.len())?;
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&WIRE_PROTOCOL_VERSION.to_le_bytes());
        out.push(self.opcode as u8);
        out.push(0); // reserved
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&declared.to_le_bytes());
        out.extend_from_slice(&self.payload);
        Ok(out)
    }

    /// Decodes one frame from the front of `bytes`, returning it and the
    /// number of bytes consumed.
    ///
    /// Pure and total: arbitrary inputs yield a frame or a typed error,
    /// and no more than `HEADER_LEN + declared length` bytes are ever
    /// examined.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when `bytes` holds less than one whole
    /// frame, [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`]
    /// / [`WireError::UnknownOpcode`] / [`WireError::Malformed`] for
    /// invalid header fields, and [`WireError::PayloadTooLarge`] when the
    /// declared length exceeds `max_payload`.
    pub fn decode(bytes: &[u8], max_payload: u32) -> Result<(Self, usize), WireError> {
        let Some(header) = bytes.first_chunk::<HEADER_LEN>() else {
            return Err(WireError::Truncated);
        };
        let declared = Self::decode_header(header, max_payload)?;
        let total = HEADER_LEN + declared.payload_len as usize;
        if bytes.len() < total {
            return Err(WireError::Truncated);
        }
        Ok((
            Self {
                opcode: declared.opcode,
                request_id: declared.request_id,
                payload: bytes[HEADER_LEN..total].to_vec(),
            },
            total,
        ))
    }

    /// Validates a fixed-size header and returns its fields; the payload
    /// is read separately (streaming readers need the length before the
    /// bytes exist).
    ///
    /// # Errors
    ///
    /// Same header conditions as [`Frame::decode`].
    pub fn decode_header(
        header: &[u8; HEADER_LEN],
        max_payload: u32,
    ) -> Result<FrameHeader, WireError> {
        let magic: [u8; 4] = header[0..4].try_into().expect("fixed slice");
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(header[4..6].try_into().expect("fixed slice"));
        if version != WIRE_PROTOCOL_VERSION {
            return Err(WireError::UnsupportedVersion {
                found: version,
                supported: WIRE_PROTOCOL_VERSION,
            });
        }
        let opcode = Opcode::from_wire(header[6])?;
        if header[7] != 0 {
            return Err(WireError::Malformed(format!(
                "reserved header byte is {:#04x}, must be 0",
                header[7]
            )));
        }
        let request_id = u64::from_le_bytes(header[8..16].try_into().expect("fixed slice"));
        let payload_len = u32::from_le_bytes(header[16..20].try_into().expect("fixed slice"));
        if payload_len > max_payload {
            return Err(WireError::PayloadTooLarge {
                declared: payload_len,
                limit: max_payload,
            });
        }
        Ok(FrameHeader {
            opcode,
            request_id,
            payload_len,
        })
    }
}

/// Checks that a payload length fits the frame header's `u32` length
/// prefix — the seam [`Frame::encode`] refuses oversized payloads through
/// (kept separate so the refusal is testable without allocating 4 GiB).
pub(crate) fn declared_payload_len(len: usize) -> Result<u32, WireError> {
    u32::try_from(len).map_err(|_| WireError::TooLarge {
        what: "frame payload bytes",
        len: len as u64,
        limit: u64::from(u32::MAX),
    })
}

/// The validated fields of a frame header, before the payload arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The operation (or response kind).
    pub opcode: Opcode,
    /// Correlation id.
    pub request_id: u64,
    /// Declared payload length, already checked against the cap.
    pub payload_len: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let frame = Frame {
            opcode: Opcode::QueryBatch,
            request_id: 0xDEAD_BEEF_0042,
            payload: vec![1, 2, 3, 4, 5],
        };
        let bytes = frame.encode().unwrap();
        assert_eq!(bytes.len(), HEADER_LEN + 5);
        let (back, consumed) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(back, frame);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = Frame {
            opcode: Opcode::Query,
            request_id: 9,
            payload: vec![7; 16],
        }
        .encode()
        .unwrap();
        for cut in 0..bytes.len() {
            assert!(matches!(
                Frame::decode(&bytes[..cut], DEFAULT_MAX_PAYLOAD),
                Err(WireError::Truncated)
            ));
        }
    }

    #[test]
    fn header_corruption_is_typed() {
        let good = Frame::empty(Opcode::Stats, 1).encode().unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 99; // version
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::UnsupportedVersion { found: 99, .. })
        ));

        let mut bad = good.clone();
        bad[6] = 0x7E; // opcode
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::UnknownOpcode(0x7E))
        ));

        let mut bad = good.clone();
        bad[7] = 1; // reserved
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::Malformed(_))
        ));

        let mut bad = good;
        bad[16..20].copy_from_slice(&u32::MAX.to_le_bytes()); // length
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_left_for_the_next_frame() {
        let mut bytes = Frame::empty(Opcode::Stats, 4).encode().unwrap();
        let second = Frame::empty(Opcode::Shutdown, 5).encode().unwrap();
        bytes.extend_from_slice(&second);
        let (first, consumed) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(first.opcode, Opcode::Stats);
        let (next, _) = Frame::decode(&bytes[consumed..], DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(next.opcode, Opcode::Shutdown);
    }

    #[test]
    fn oversized_payload_length_is_too_large_not_wrapped() {
        // At the boundary: u32::MAX fits, one past does not. The wrap bug
        // this replaces would have declared a one-past-u32::MAX payload as
        // 0 bytes — a corrupt prefix desynchronizing the whole stream.
        assert_eq!(declared_payload_len(u32::MAX as usize).unwrap(), u32::MAX);
        let err = declared_payload_len(u32::MAX as usize + 1).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::TooLarge {
                    what: "frame payload bytes",
                    len,
                    limit,
                } if len == u64::from(u32::MAX) + 1 && limit == u64::from(u32::MAX)
            ),
            "{err}"
        );
    }

    #[test]
    fn request_and_response_opcodes_partition() {
        for byte in 0..=u8::MAX {
            if let Ok(op) = Opcode::from_wire(byte) {
                assert_eq!(op as u8, byte);
                assert_eq!(op.is_request(), byte < 0x80, "{op:?}");
            }
        }
    }
}
