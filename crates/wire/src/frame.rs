//! The framed binary protocol: one fixed header per message.
//!
//! Every message — request or response, either direction — is one frame:
//!
//! ```text
//! offset size field
//!      0    4 magic            b"NAPW"
//!      4    2 protocol version u16 LE (this build: [`WIRE_PROTOCOL_VERSION`])
//!      6    1 opcode           [`Opcode`]
//!      7    1 flags            bit 0: frame carries a tenant route,
//!                              bit 1: frame carries a trace id
//!      8    8 request id       u64 LE; responses echo the request's id
//!     16    4 payload length   u32 LE (includes the trace id and route
//!                              blocks, if any)
//!     20    t trace id         only when flag bit 1 is set: u64 LE
//!                              request trace id; responses echo it
//!   20+t    r tenant route     only when flag bit 0 is set: u8 id length,
//!                              the id bytes (UTF-8, [`valid_tenant_id`]),
//!                              u32 LE version (0 = the active version)
//! 20+t+r    n payload          opcode-specific (see `codec`)
//! ```
//!
//! The header is fixed-size and self-describing, so a reader always knows
//! how many bytes the frame still owes before interpreting any of them.
//! Decoding is total: any byte string yields either a frame or a typed
//! [`WireError`] — never a panic, and never a read past the declared
//! length (pinned against arbitrary inputs by `tests/frame_props.rs`).
//!
//! **Version negotiation policy:** there is no negotiation — each protocol
//! epoch has exactly one version, carried in every frame. A server
//! receiving a foreign version answers with a typed `Error` response
//! naming both the version it found and the version it speaks, then
//! closes the connection; the client surfaces that as
//! [`WireError::UnsupportedVersion`]. Mixed-version deployments upgrade
//! the servers first (a new client never talks down). v2 turned the
//! reserved header byte into a flags byte and added the tenant route —
//! a v1 peer is rejected with the typed error either direction, which
//! `tests/frame_props.rs` pins.

use crate::error::WireError;
pub use napmon_registry::{valid_tenant_id, TENANT_ID_MAX_BYTES};

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"NAPW";

/// The single protocol version this build speaks (see the
/// [module docs](self) for the policy). v2 added the flags byte and the
/// tenant route for registry dispatch.
pub const WIRE_PROTOCOL_VERSION: u16 = 2;

/// The previous protocol epoch (single-tenant, reserved byte instead of
/// flags). This build does not speak it — the constant exists so error
/// paths, tests, and tooling can name the version being rejected.
pub const LEGACY_WIRE_PROTOCOL_VERSION: u16 = 1;

/// Every protocol version this build accepts on the wire, in ascending
/// order. The strict-version policy keeps this a single-element set: a
/// peer speaking anything else — including
/// [`LEGACY_WIRE_PROTOCOL_VERSION`] — gets
/// [`WireError::UnsupportedVersion`] naming both sides. Tooling that
/// reports compatibility (CI banners, `validate_artifact`) iterates this
/// set instead of hardcoding a version string.
pub const SUPPORTED_WIRE_PROTOCOL_VERSIONS: [u16; 1] = [WIRE_PROTOCOL_VERSION];

/// Bytes in the fixed frame header.
pub const HEADER_LEN: usize = 20;

/// Header flag bit 0: the payload region starts with a tenant route.
pub const FLAG_ROUTED: u8 = 0x01;

/// Header flag bit 1: the payload region starts with an 8-byte request
/// trace id (before the tenant route, if both flags are set). Requests
/// carry the id to correlate server-side spans; responses echo it.
pub const FLAG_TRACED: u8 = 0x02;

/// Every header flag bit this build understands; anything else in the
/// flags byte is refused as [`WireError::Malformed`].
pub const KNOWN_FLAGS: u8 = FLAG_ROUTED | FLAG_TRACED;

/// Default cap on a frame's declared payload length (32 MiB): large enough
/// for a several-thousand-input batch, small enough that a forged length
/// cannot balloon server memory.
pub const DEFAULT_MAX_PAYLOAD: u32 = 32 << 20;

/// Every operation the protocol knows, requests and responses.
///
/// Requests occupy the low range, responses have the top bit set; `Busy`
/// and `Error` are responses any request may receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Request: one input vector, answer one verdict.
    Query = 0x01,
    /// Request: a batch of input vectors, answer a verdict batch.
    QueryBatch = 0x02,
    /// Request: absorb a batch of inputs into the store-backed members.
    Absorb = 0x03,
    /// Request: snapshot the engine's serving metrics.
    Stats = 0x04,
    /// Request: begin a graceful server shutdown (drain, then close).
    Shutdown = 0x05,
    /// Request: mount an artifact for the routed tenant (active or
    /// shadow; the payload says which).
    Mount = 0x06,
    /// Request: unmount the routed tenant entirely (drain, then report).
    Unmount = 0x07,
    /// Request: promote the routed tenant's shadow candidate to active.
    Promote = 0x08,
    /// Request: list every mounted tenant.
    ListTenants = 0x09,
    /// Request: snapshot the routed tenant's live shadow diff.
    ShadowStats = 0x0A,
    /// Request: scrape the server's observability surface (metrics
    /// registry, text exposition, slow-request log, recent trace spans).
    Metrics = 0x0B,
    /// Response to [`Opcode::Query`]: one encoded verdict.
    Verdict = 0x81,
    /// Response to [`Opcode::QueryBatch`]: an encoded verdict batch.
    Verdicts = 0x82,
    /// Response to [`Opcode::Absorb`]: `u64` count of new patterns.
    Absorbed = 0x83,
    /// Response to [`Opcode::Stats`]: a JSON [`ServeReport`] plus wire
    /// gauges.
    ///
    /// [`ServeReport`]: napmon_serve::ServeReport
    StatsReport = 0x84,
    /// Response to [`Opcode::Shutdown`]: acknowledged, draining.
    ShuttingDown = 0x85,
    /// Response to [`Opcode::Mount`]: mounted (hot-swapped if the tenant
    /// already existed).
    Mounted = 0x86,
    /// Response to [`Opcode::Unmount`]: the drained engine's final JSON
    /// [`ServeReport`](napmon_serve::ServeReport).
    Unmounted = 0x87,
    /// Response to [`Opcode::Promote`]: the final JSON
    /// [`ShadowReport`](napmon_registry::ShadowReport).
    Promoted = 0x88,
    /// Response to [`Opcode::ListTenants`]: a JSON list of
    /// [`TenantInfo`](napmon_registry::TenantInfo) rows.
    TenantList = 0x89,
    /// Response to [`Opcode::ShadowStats`]: a live JSON
    /// [`ShadowReport`](napmon_registry::ShadowReport).
    ShadowReport = 0x8A,
    /// Response to [`Opcode::Metrics`]: a JSON
    /// [`ObsReport`](napmon_obs::ObsReport).
    MetricsReport = 0x8B,
    /// Response: the in-flight budget is exhausted; retry later.
    Busy = 0x90,
    /// Response: the request failed; payload carries code + message.
    Error = 0xFF,
}

impl Opcode {
    /// Decodes an opcode byte.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownOpcode`] for bytes naming no operation.
    pub fn from_wire(byte: u8) -> Result<Self, WireError> {
        Ok(match byte {
            0x01 => Opcode::Query,
            0x02 => Opcode::QueryBatch,
            0x03 => Opcode::Absorb,
            0x04 => Opcode::Stats,
            0x05 => Opcode::Shutdown,
            0x06 => Opcode::Mount,
            0x07 => Opcode::Unmount,
            0x08 => Opcode::Promote,
            0x09 => Opcode::ListTenants,
            0x0A => Opcode::ShadowStats,
            0x0B => Opcode::Metrics,
            0x81 => Opcode::Verdict,
            0x82 => Opcode::Verdicts,
            0x83 => Opcode::Absorbed,
            0x84 => Opcode::StatsReport,
            0x85 => Opcode::ShuttingDown,
            0x86 => Opcode::Mounted,
            0x87 => Opcode::Unmounted,
            0x88 => Opcode::Promoted,
            0x89 => Opcode::TenantList,
            0x8A => Opcode::ShadowReport,
            0x8B => Opcode::MetricsReport,
            0x90 => Opcode::Busy,
            0xFF => Opcode::Error,
            other => return Err(WireError::UnknownOpcode(other)),
        })
    }

    /// The opcode's stable wire-facing name, used in metric keys
    /// (`wire.requests.<name>`) and slow-request log rows.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Query => "Query",
            Opcode::QueryBatch => "QueryBatch",
            Opcode::Absorb => "Absorb",
            Opcode::Stats => "Stats",
            Opcode::Shutdown => "Shutdown",
            Opcode::Mount => "Mount",
            Opcode::Unmount => "Unmount",
            Opcode::Promote => "Promote",
            Opcode::ListTenants => "ListTenants",
            Opcode::ShadowStats => "ShadowStats",
            Opcode::Metrics => "Metrics",
            Opcode::Verdict => "Verdict",
            Opcode::Verdicts => "Verdicts",
            Opcode::Absorbed => "Absorbed",
            Opcode::StatsReport => "StatsReport",
            Opcode::ShuttingDown => "ShuttingDown",
            Opcode::Mounted => "Mounted",
            Opcode::Unmounted => "Unmounted",
            Opcode::Promoted => "Promoted",
            Opcode::TenantList => "TenantList",
            Opcode::ShadowReport => "ShadowReport",
            Opcode::MetricsReport => "MetricsReport",
            Opcode::Busy => "Busy",
            Opcode::Error => "Error",
        }
    }

    /// Whether this opcode is a request (client → server).
    pub fn is_request(self) -> bool {
        matches!(
            self,
            Opcode::Query
                | Opcode::QueryBatch
                | Opcode::Absorb
                | Opcode::Stats
                | Opcode::Shutdown
                | Opcode::Mount
                | Opcode::Unmount
                | Opcode::Promote
                | Opcode::ListTenants
                | Opcode::ShadowStats
                | Opcode::Metrics
        )
    }
}

/// Route sentinel: version `0` resolves to the tenant's active version.
pub const ACTIVE_VERSION: u32 = 0;

/// The tenant route a v2 frame may carry: which mounted monitor a request
/// is for. Rides at the front of the payload region when the header's
/// [`FLAG_ROUTED`] bit is set, encoded as `u8` id length, the id bytes,
/// and a `u32` LE version ([`ACTIVE_VERSION`] routes to whatever is
/// currently active; a pinned version can also address a shadow
/// candidate directly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRoute {
    /// The tenant id (validated by [`valid_tenant_id`]).
    pub model_id: String,
    /// The target version; [`ACTIVE_VERSION`] for "whatever is active".
    pub version: u32,
}

impl TenantRoute {
    /// A route to `model_id`'s active version.
    pub fn active(model_id: impl Into<String>) -> Self {
        Self {
            model_id: model_id.into(),
            version: ACTIVE_VERSION,
        }
    }

    /// A route pinned to one mounted version (active or shadow).
    pub fn pinned(model_id: impl Into<String>, version: u32) -> Self {
        Self {
            model_id: model_id.into(),
            version,
        }
    }

    /// Bytes this route occupies on the wire.
    pub fn encoded_len(&self) -> usize {
        1 + self.model_id.len() + 4
    }

    /// Appends the wire encoding to `out`.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] when the id fails [`valid_tenant_id`] —
    /// an invalid id is refused at encode time, not shipped to the peer.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        if !valid_tenant_id(&self.model_id) {
            return Err(WireError::Malformed(format!(
                "invalid tenant id {:?} in route",
                self.model_id
            )));
        }
        out.push(self.model_id.len() as u8);
        out.extend_from_slice(self.model_id.as_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        Ok(())
    }

    /// Decodes a route from the front of `bytes`, returning it and the
    /// bytes consumed. Total: any input yields a route or a typed error.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] when the bytes run out mid-route (the
    /// containing frame was complete, so this is corruption, not a short
    /// read) or the id is not a valid tenant id.
    pub fn decode_from(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        let Some((&id_len, rest)) = bytes.split_first() else {
            return Err(WireError::Malformed(
                "routed frame too short for route id length".into(),
            ));
        };
        let id_len = id_len as usize;
        if rest.len() < id_len + 4 {
            return Err(WireError::Malformed(format!(
                "routed frame too short for {id_len}-byte id plus version"
            )));
        }
        let model_id = std::str::from_utf8(&rest[..id_len])
            .map_err(|_| WireError::Malformed("tenant id is not UTF-8".into()))?;
        if !valid_tenant_id(model_id) {
            return Err(WireError::Malformed(format!(
                "invalid tenant id {model_id:?} in route"
            )));
        }
        let version = u32::from_le_bytes(rest[id_len..id_len + 4].try_into().expect("fixed"));
        Ok((
            Self {
                model_id: model_id.to_string(),
                version,
            },
            1 + id_len + 4,
        ))
    }
}

impl std::fmt::Display for TenantRoute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.version == ACTIVE_VERSION {
            write!(f, "{}@active", self.model_id)
        } else {
            write!(f, "{}@v{}", self.model_id, self.version)
        }
    }
}

/// One decoded frame: the header fields plus the owned payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The operation (or response kind).
    pub opcode: Opcode,
    /// Correlates responses with requests across pipelining.
    pub request_id: u64,
    /// The request trace id this frame carries, when traced. A request's
    /// id correlates the server-side spans it produces; a response echoes
    /// the request's id back.
    pub trace_id: Option<u64>,
    /// The tenant this frame addresses, when registry-routed.
    pub route: Option<TenantRoute>,
    /// Opcode-specific payload bytes (see `codec`), trace id and route
    /// excluded.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with no payload, no trace id, and no route.
    pub fn empty(opcode: Opcode, request_id: u64) -> Self {
        Self {
            opcode,
            request_id,
            trace_id: None,
            route: None,
            payload: Vec::new(),
        }
    }

    /// This frame with a tenant route attached.
    pub fn routed(mut self, route: TenantRoute) -> Self {
        self.route = Some(route);
        self
    }

    /// This frame carrying `trace_id` (`None` leaves the frame untraced —
    /// the pass-through lets callers thread an `Option` straight in).
    pub fn traced(mut self, trace_id: impl Into<Option<u64>>) -> Self {
        self.trace_id = trace_id.into();
        self
    }

    /// Encodes the frame (header + payload) into one buffer, ready for a
    /// single write.
    ///
    /// # Errors
    ///
    /// [`WireError::TooLarge`] when the payload is longer than the `u32`
    /// length prefix can carry. The old behavior — `len as u32` — silently
    /// wrapped, emitting a frame whose declared length disagreed with its
    /// bytes; a peer would misparse the remainder of the stream.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let trace_len = if self.trace_id.is_some() { 8 } else { 0 };
        let route_len = self.route.as_ref().map_or(0, TenantRoute::encoded_len);
        let declared = declared_payload_len(trace_len + route_len + self.payload.len())?;
        let mut out = Vec::with_capacity(HEADER_LEN + trace_len + route_len + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&WIRE_PROTOCOL_VERSION.to_le_bytes());
        out.push(self.opcode as u8);
        let mut flags = 0u8;
        if self.route.is_some() {
            flags |= FLAG_ROUTED;
        }
        if self.trace_id.is_some() {
            flags |= FLAG_TRACED;
        }
        out.push(flags);
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&declared.to_le_bytes());
        if let Some(trace_id) = self.trace_id {
            out.extend_from_slice(&trace_id.to_le_bytes());
        }
        if let Some(route) = &self.route {
            route.encode_into(&mut out)?;
        }
        out.extend_from_slice(&self.payload);
        Ok(out)
    }

    /// Decodes one frame from the front of `bytes`, returning it and the
    /// number of bytes consumed.
    ///
    /// Pure and total: arbitrary inputs yield a frame or a typed error,
    /// and no more than `HEADER_LEN + declared length` bytes are ever
    /// examined.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when `bytes` holds less than one whole
    /// frame, [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`]
    /// / [`WireError::UnknownOpcode`] / [`WireError::Malformed`] for
    /// invalid header fields, and [`WireError::PayloadTooLarge`] when the
    /// declared length exceeds `max_payload`.
    pub fn decode(bytes: &[u8], max_payload: u32) -> Result<(Self, usize), WireError> {
        let Some(header) = bytes.first_chunk::<HEADER_LEN>() else {
            return Err(WireError::Truncated);
        };
        let declared = Self::decode_header(header, max_payload)?;
        let total = HEADER_LEN + declared.payload_len as usize;
        if bytes.len() < total {
            return Err(WireError::Truncated);
        }
        let frame = Self::assemble(declared, bytes[HEADER_LEN..total].to_vec())?;
        Ok((frame, total))
    }

    /// Builds a frame from a validated header and the payload region it
    /// declared, splitting the trace id and the tenant route off the front
    /// when the header says they are there. This is the seam streaming
    /// readers (which read header and payload separately) share with
    /// [`Frame::decode`].
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] when the declared trace id or route does
    /// not parse.
    pub fn assemble(header: FrameHeader, mut payload: Vec<u8>) -> Result<Self, WireError> {
        let trace_id = if header.traced {
            let Some(chunk) = payload.first_chunk::<8>() else {
                return Err(WireError::Malformed(
                    "traced frame too short for 8-byte trace id".into(),
                ));
            };
            let id = u64::from_le_bytes(*chunk);
            payload.drain(..8);
            Some(id)
        } else {
            None
        };
        let route = if header.routed {
            let (route, consumed) = TenantRoute::decode_from(&payload)?;
            payload.drain(..consumed);
            Some(route)
        } else {
            None
        };
        Ok(Self {
            opcode: header.opcode,
            request_id: header.request_id,
            trace_id,
            route,
            payload,
        })
    }

    /// Validates a fixed-size header and returns its fields; the payload
    /// is read separately (streaming readers need the length before the
    /// bytes exist).
    ///
    /// # Errors
    ///
    /// Same header conditions as [`Frame::decode`].
    pub fn decode_header(
        header: &[u8; HEADER_LEN],
        max_payload: u32,
    ) -> Result<FrameHeader, WireError> {
        let magic: [u8; 4] = header[0..4].try_into().expect("fixed slice");
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(header[4..6].try_into().expect("fixed slice"));
        if version != WIRE_PROTOCOL_VERSION {
            return Err(WireError::UnsupportedVersion {
                found: version,
                supported: WIRE_PROTOCOL_VERSION,
            });
        }
        let opcode = Opcode::from_wire(header[6])?;
        let flags = header[7];
        if flags & !KNOWN_FLAGS != 0 {
            return Err(WireError::Malformed(format!(
                "unknown header flag bits {:#04x} (known: {KNOWN_FLAGS:#04x})",
                flags & !KNOWN_FLAGS
            )));
        }
        let request_id = u64::from_le_bytes(header[8..16].try_into().expect("fixed slice"));
        let payload_len = u32::from_le_bytes(header[16..20].try_into().expect("fixed slice"));
        if payload_len > max_payload {
            return Err(WireError::PayloadTooLarge {
                declared: payload_len,
                limit: max_payload,
            });
        }
        Ok(FrameHeader {
            opcode,
            request_id,
            routed: flags & FLAG_ROUTED != 0,
            traced: flags & FLAG_TRACED != 0,
            payload_len,
        })
    }
}

/// Checks that a payload length fits the frame header's `u32` length
/// prefix — the seam [`Frame::encode`] refuses oversized payloads through
/// (kept separate so the refusal is testable without allocating 4 GiB).
pub(crate) fn declared_payload_len(len: usize) -> Result<u32, WireError> {
    u32::try_from(len).map_err(|_| WireError::TooLarge {
        what: "frame payload bytes",
        len: len as u64,
        limit: u64::from(u32::MAX),
    })
}

/// The validated fields of a frame header, before the payload arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The operation (or response kind).
    pub opcode: Opcode,
    /// Correlation id.
    pub request_id: u64,
    /// Whether the payload region starts with a tenant route (after the
    /// trace id, when both are present).
    pub routed: bool,
    /// Whether the payload region starts with an 8-byte trace id.
    pub traced: bool,
    /// Declared payload length (trace id and route included), already
    /// checked against the cap.
    pub payload_len: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let frame = Frame {
            opcode: Opcode::QueryBatch,
            request_id: 0xDEAD_BEEF_0042,
            trace_id: None,
            route: None,
            payload: vec![1, 2, 3, 4, 5],
        };
        let bytes = frame.encode().unwrap();
        assert_eq!(bytes.len(), HEADER_LEN + 5);
        let (back, consumed) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(back, frame);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn routed_round_trip_preserves_route_and_payload() {
        let frame = Frame {
            opcode: Opcode::Query,
            request_id: 7,
            trace_id: None,
            route: Some(TenantRoute::pinned("resnet50.v2", 3)),
            payload: vec![9, 8, 7],
        };
        let bytes = frame.encode().unwrap();
        assert_eq!(bytes[7], FLAG_ROUTED);
        // Declared length covers the route block plus the payload.
        let declared = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
        assert_eq!(declared as usize, 1 + "resnet50.v2".len() + 4 + 3);
        let (back, consumed) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(back, frame);
        assert_eq!(consumed, bytes.len());
        assert_eq!(back.payload, vec![9, 8, 7], "route split off the payload");
    }

    #[test]
    fn route_corruption_is_typed() {
        let good = Frame::empty(Opcode::Stats, 1)
            .routed(TenantRoute::active("model-a"))
            .encode()
            .unwrap();

        // Truncate the route mid-id: the frame itself stays complete by
        // shrinking the declared length, so this is Malformed, not
        // Truncated.
        let mut bad = good[..HEADER_LEN + 4].to_vec();
        let len = (bad.len() - HEADER_LEN) as u32;
        bad[16..20].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::Malformed(_))
        ));

        // Corrupt the id into an invalid tenant name.
        let mut bad = good.clone();
        bad[HEADER_LEN + 1] = b'/';
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::Malformed(_))
        ));

        // Non-UTF-8 id bytes.
        let mut bad = good;
        bad[HEADER_LEN + 1] = 0xFF;
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::Malformed(_))
        ));

        // Encoding refuses an invalid id before it ships.
        assert!(matches!(
            Frame::empty(Opcode::Query, 1)
                .routed(TenantRoute::active("../escape"))
                .encode(),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn traced_round_trip_preserves_trace_id_route_and_payload() {
        let frame = Frame {
            opcode: Opcode::Query,
            request_id: 11,
            trace_id: Some(0xFEED_FACE_CAFE_0001),
            route: Some(TenantRoute::active("model-a")),
            payload: vec![4, 5, 6],
        };
        let bytes = frame.encode().unwrap();
        assert_eq!(bytes[7], FLAG_ROUTED | FLAG_TRACED);
        // Declared length covers trace id + route block + payload.
        let declared = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
        assert_eq!(declared as usize, 8 + (1 + "model-a".len() + 4) + 3);
        // The trace id rides first in the payload region, little-endian.
        assert_eq!(
            u64::from_le_bytes(bytes[HEADER_LEN..HEADER_LEN + 8].try_into().unwrap()),
            0xFEED_FACE_CAFE_0001
        );
        let (back, consumed) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(back, frame);
        assert_eq!(consumed, bytes.len());

        // Traced without a route: only the trace block precedes the payload.
        let lone = Frame::empty(Opcode::Stats, 12).traced(7u64);
        let bytes = lone.encode().unwrap();
        assert_eq!(bytes[7], FLAG_TRACED);
        let (back, _) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(back.trace_id, Some(7));
        assert!(back.payload.is_empty());

        // `traced(None)` leaves the frame untraced.
        assert_eq!(
            Frame::empty(Opcode::Stats, 13)
                .traced(None)
                .encode()
                .unwrap(),
            Frame::empty(Opcode::Stats, 13).encode().unwrap()
        );
    }

    #[test]
    fn traced_frame_truncated_mid_trace_id_is_malformed() {
        let good = Frame::empty(Opcode::Stats, 1)
            .traced(99u64)
            .encode()
            .unwrap();
        // Shrink the payload region to 4 bytes: the frame stays complete
        // (declared length agrees), but the trace id is cut in half.
        let mut bad = good[..HEADER_LEN + 4].to_vec();
        bad[16..20].copy_from_slice(&4u32.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = Frame {
            opcode: Opcode::Query,
            request_id: 9,
            trace_id: None,
            route: None,
            payload: vec![7; 16],
        }
        .encode()
        .unwrap();
        for cut in 0..bytes.len() {
            assert!(matches!(
                Frame::decode(&bytes[..cut], DEFAULT_MAX_PAYLOAD),
                Err(WireError::Truncated)
            ));
        }
    }

    #[test]
    fn header_corruption_is_typed() {
        let good = Frame::empty(Opcode::Stats, 1).encode().unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 99; // version
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::UnsupportedVersion { found: 99, .. })
        ));

        // A v1 frame is rejected with the typed error naming both
        // versions — the strict cross-version policy, decoder side.
        let mut v1 = good.clone();
        v1[4..6].copy_from_slice(&LEGACY_WIRE_PROTOCOL_VERSION.to_le_bytes());
        assert!(matches!(
            Frame::decode(&v1, DEFAULT_MAX_PAYLOAD),
            Err(WireError::UnsupportedVersion {
                found: LEGACY_WIRE_PROTOCOL_VERSION,
                supported: WIRE_PROTOCOL_VERSION,
            })
        ));

        let mut bad = good.clone();
        bad[6] = 0x7E; // opcode
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::UnknownOpcode(0x7E))
        ));

        let mut bad = good.clone();
        bad[7] = 0x04; // unknown flag bit
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::Malformed(_))
        ));

        let mut bad = good.clone();
        bad[7] = FLAG_ROUTED; // routed flag with no route bytes
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::Malformed(_))
        ));

        let mut bad = good.clone();
        bad[7] = FLAG_TRACED; // traced flag with no trace id bytes
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::Malformed(_))
        ));

        let mut bad = good;
        bad[16..20].copy_from_slice(&u32::MAX.to_le_bytes()); // length
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_left_for_the_next_frame() {
        let mut bytes = Frame::empty(Opcode::Stats, 4).encode().unwrap();
        let second = Frame::empty(Opcode::Shutdown, 5).encode().unwrap();
        bytes.extend_from_slice(&second);
        let (first, consumed) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(first.opcode, Opcode::Stats);
        let (next, _) = Frame::decode(&bytes[consumed..], DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(next.opcode, Opcode::Shutdown);
    }

    #[test]
    fn oversized_payload_length_is_too_large_not_wrapped() {
        // At the boundary: u32::MAX fits, one past does not. The wrap bug
        // this replaces would have declared a one-past-u32::MAX payload as
        // 0 bytes — a corrupt prefix desynchronizing the whole stream.
        assert_eq!(declared_payload_len(u32::MAX as usize).unwrap(), u32::MAX);
        let err = declared_payload_len(u32::MAX as usize + 1).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::TooLarge {
                    what: "frame payload bytes",
                    len,
                    limit,
                } if len == u64::from(u32::MAX) + 1 && limit == u64::from(u32::MAX)
            ),
            "{err}"
        );
    }

    #[test]
    fn request_and_response_opcodes_partition() {
        for byte in 0..=u8::MAX {
            if let Ok(op) = Opcode::from_wire(byte) {
                assert_eq!(op as u8, byte);
                assert_eq!(op.is_request(), byte < 0x80, "{op:?}");
            }
        }
    }
}
