//! The typed error surface of the wire protocol.
//!
//! Every way a peer, the network, or a byte stream can misbehave maps to
//! one [`WireError`] variant — malformed frames, short reads, version
//! mismatches, and overload are *values*, never panics. The frame-decoder
//! property tests feed arbitrary byte strings through the decoder to pin
//! exactly that.

use napmon_core::wirefmt::WireDecodeError;
use napmon_registry::RegistryError;
use napmon_serve::ServeError;

/// Error categories a server reports back to a client inside an `Error`
/// response frame. The numeric value is the on-wire code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The monitor rejected the input (dimension mismatch, not
    /// store-backed, store failure…).
    Monitor = 1,
    /// A shard worker died; the request was not served.
    ShardDown = 2,
    /// The request payload did not decode.
    Malformed = 3,
    /// The request opcode is not one this server serves.
    UnsupportedOpcode = 4,
    /// The frame's protocol version is not the one this server speaks.
    UnsupportedVersion = 5,
    /// The server evicted this connection for stalling past its deadline
    /// (idle between frames, or mid-frame past the frame deadline). The
    /// connection closes after this frame; reconnect to continue.
    Evicted = 6,
    /// The frame's tenant route resolved to no mounted tenant or version
    /// — or a work frame arrived unrouted on a registry server (or routed
    /// on a single-engine server).
    UnknownTenant = 7,
    /// The registry refused an admin operation (version in use, no shadow
    /// attached, invalid tenant id, registry shut down, mount failure…).
    Registry = 8,
}

impl ErrorCode {
    /// Decodes an on-wire error code.
    pub fn from_wire(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::Monitor),
            2 => Some(Self::ShardDown),
            3 => Some(Self::Malformed),
            4 => Some(Self::UnsupportedOpcode),
            5 => Some(Self::UnsupportedVersion),
            6 => Some(Self::Evicted),
            7 => Some(Self::UnknownTenant),
            8 => Some(Self::Registry),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Monitor => "monitor",
            ErrorCode::ShardDown => "shard-down",
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnsupportedOpcode => "unsupported-opcode",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::Evicted => "evicted",
            ErrorCode::UnknownTenant => "unknown-tenant",
            ErrorCode::Registry => "registry",
        };
        f.write_str(name)
    }
}

/// Anything that can go wrong on the wire.
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The frame does not start with the protocol magic.
    BadMagic([u8; 4]),
    /// The frame speaks a different protocol version.
    UnsupportedVersion {
        /// Version in the received frame.
        found: u16,
        /// The single version this build speaks.
        supported: u16,
    },
    /// The frame's opcode byte names no known operation.
    UnknownOpcode(u8),
    /// The frame declares a payload larger than the configured limit.
    PayloadTooLarge {
        /// Declared payload length.
        declared: u32,
        /// Configured limit.
        limit: u32,
    },
    /// An outgoing value exceeds what the protocol can represent — a
    /// payload longer than the `u32` length prefix can carry, or a batch
    /// over the per-frame input cap. Refusing to encode beats emitting a
    /// silently wrapped length prefix (a corrupt frame the peer would
    /// misparse).
    TooLarge {
        /// What was oversized (`"frame payload bytes"`, `"batch inputs"`,
        /// `"error message bytes"`).
        what: &'static str,
        /// The actual size, in the unit `what` names.
        len: u64,
        /// The largest size the protocol can carry.
        limit: u64,
    },
    /// The stream ended (or the buffer ran out) mid-frame.
    Truncated,
    /// The frame or payload is structurally invalid.
    Malformed(String),
    /// The server is at its in-flight budget; retry later.
    Busy {
        /// Requests in flight when the server refused.
        in_flight: u32,
        /// The server's configured budget.
        budget: u32,
    },
    /// The server answered with a typed error response.
    Remote {
        /// The error category the server reported.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The server answered with a frame the request cannot accept.
    UnexpectedResponse {
        /// What the client was waiting for.
        expected: &'static str,
        /// The opcode byte that arrived instead.
        got: u8,
    },
    /// A response carried a request id the client never sent (pipelining
    /// desynchronized).
    RequestIdMismatch {
        /// The id the client was waiting on.
        sent: u64,
        /// The id that arrived.
        got: u64,
    },
    /// A client-side deadline expired (connect, read, or write timeout;
    /// see [`ClientConfig`](crate::ClientConfig)). The stream may hold a
    /// partial frame, so the connection must be re-established before
    /// reuse — [`RetryPolicy`](crate::RetryPolicy) does this
    /// automatically for idempotent requests.
    TimedOut,
    /// A [`RetryPolicy`](crate::RetryPolicy) gave up: every attempt
    /// failed and the attempt or time budget ran out.
    RetriesExhausted {
        /// Attempts made, including the first.
        attempts: u32,
        /// The error the final attempt died with.
        last: Box<WireError>,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "peer speaks protocol v{found}, this build speaks v{supported}"
                )
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::PayloadTooLarge { declared, limit } => {
                write!(
                    f,
                    "declared payload of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            WireError::TooLarge { what, len, limit } => {
                write!(f, "{what}: {len} exceeds the wire limit of {limit}")
            }
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::Busy { in_flight, budget } => {
                write!(
                    f,
                    "server busy: {in_flight} requests in flight (budget {budget})"
                )
            }
            WireError::Remote { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
            WireError::UnexpectedResponse { expected, got } => {
                write!(f, "expected a {expected} response, got opcode {got:#04x}")
            }
            WireError::RequestIdMismatch { sent, got } => {
                write!(f, "response for request {got} while waiting on {sent}")
            }
            WireError::TimedOut => write!(f, "client-side deadline expired"),
            WireError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl WireError {
    /// Whether this is a transient *transport* failure — the kind a fresh
    /// connection plus a retry can heal, but one that may have left a
    /// request half-delivered (so only idempotent requests should be
    /// retried across it). `Busy` is not a transport failure: the server
    /// explicitly did *not* admit the request, so retrying is always safe.
    pub fn is_transient_transport(&self) -> bool {
        matches!(
            self,
            WireError::Io(_) | WireError::Truncated | WireError::TimedOut
        )
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<WireDecodeError> for WireError {
    fn from(e: WireDecodeError) -> Self {
        match e {
            WireDecodeError::Truncated => WireError::Truncated,
            WireDecodeError::Malformed(what) => WireError::Malformed(what.to_string()),
            other => WireError::Malformed(other.to_string()),
        }
    }
}

impl WireError {
    /// The error-response code a server uses to report this failure.
    pub(crate) fn as_code(&self) -> ErrorCode {
        match self {
            WireError::UnsupportedVersion { .. } => ErrorCode::UnsupportedVersion,
            WireError::UnknownOpcode(_) => ErrorCode::UnsupportedOpcode,
            _ => ErrorCode::Malformed,
        }
    }
}

/// Maps an engine-side serving failure onto its wire error code.
pub(crate) fn serve_error_code(e: &ServeError) -> ErrorCode {
    match e {
        ServeError::Monitor(_) => ErrorCode::Monitor,
        ServeError::ShardDown => ErrorCode::ShardDown,
    }
}

/// Maps a registry-side failure onto its wire error code. Routing misses
/// get their own code (clients can distinguish "wrong address" from "the
/// operation failed"); engine failures keep the codes the single-engine
/// path uses; everything else is a registry refusal.
pub(crate) fn registry_error_code(e: &RegistryError) -> ErrorCode {
    match e {
        RegistryError::UnknownTenant(_) | RegistryError::UnknownVersion { .. } => {
            ErrorCode::UnknownTenant
        }
        RegistryError::Serve(serve) => serve_error_code(serve),
        RegistryError::Monitor(_) => ErrorCode::Monitor,
        _ => ErrorCode::Registry,
    }
}
