//! A minimal readiness facility over `poll(2)` — the only platform
//! surface the wire reactor needs, kept behind one function so the
//! event loop itself stays pure std.
//!
//! On Linux this is a direct FFI shim onto `poll(2)` via
//! [`std::os::fd::RawFd`] — no crate dependency, per the vendoring
//! policy. The struct layout (`fd`, `events`, `revents`) and the
//! `POLLIN`/`POLLOUT` constants are fixed by POSIX, which is what makes
//! a three-field `#[repr(C)]` shim sound. On other Unixes the fallback
//! reports every registered interest as ready and sleeps the requested
//! timeout: the reactor's nonblocking I/O then resolves the speculation
//! to `WouldBlock`, and its adaptive backoff keeps the loop from
//! spinning when nothing is happening.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Readable readiness (or an error/hangup condition, which also makes a
/// read attempt the right next move).
pub const POLLIN: i16 = 0x001;
/// Writable readiness.
pub const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

/// One registered descriptor: interest in, readiness out. Layout matches
/// `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    pub fn new(fd: RawFd, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether a read attempt should be made now. Error and hangup
    /// conditions count: the read is how the error becomes observable.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// Whether a write attempt should be made now.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR) != 0
    }
}

/// Blocks until at least one registered interest is ready or `timeout`
/// passes; returns how many descriptors have events. `EINTR` retries
/// internally.
#[cfg(target_os = "linux")]
pub fn wait(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    use std::os::raw::{c_int, c_ulong};
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }
    let ms = c_int::try_from(timeout.as_millis())
        .unwrap_or(c_int::MAX)
        .max(1);
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout structs for the whole call.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Portable fallback: speculate readiness on everything after sleeping
/// the caller's (backoff-adapted) timeout.
#[cfg(not(target_os = "linux"))]
pub fn wait(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    std::thread::sleep(timeout.max(Duration::from_micros(100)));
    for fd in fds.iter_mut() {
        fd.revents = fd.events;
    }
    Ok(fds.len())
}
