//! The client side: a blocking connection with pipelined batches,
//! deadlines, and opt-in retry.
//!
//! [`WireClient`] wraps one TCP connection. Single-shot calls
//! ([`WireClient::query`], [`WireClient::stats`], …) are plain
//! request/response; [`WireClient::query_batch`] *pipelines* — it splits
//! the batch into chunks, writes every chunk's frame before reading any
//! response, and reassembles the verdicts in input order — so a large
//! batch pays one round-trip of latency, not one per chunk. The server
//! answers a connection's frames in arrival order; request ids are
//! checked on every response, so a desynchronized stream fails typed
//! ([`WireError::RequestIdMismatch`]) instead of mispairing verdicts.
//!
//! # Deadlines and retry
//!
//! Every socket operation runs under [`ClientConfig`] deadlines — a dead
//! or stalled server surfaces as [`WireError::TimedOut`] instead of a
//! hang. A [`RetryPolicy`] (off by default, [`RetryPolicy::standard`] to
//! opt in) transparently retries two classes of failure with jittered
//! exponential backoff:
//!
//! - **`Busy`** — always retryable: the server refused *before* admitting
//!   the request, so nothing happened.
//! - **Transient transport failures** (I/O errors, timeouts, truncation) —
//!   retried only for idempotent requests (`Query`, `QueryBatch`,
//!   `Stats`), because the request may have been half-delivered. The
//!   client reconnects first, resetting the request-id window, so a
//!   connection dropped mid-pipeline never strands the stream.
//!
//! `Absorb` is *not* idempotent at the counting level (re-absorbing
//! deduplicates, but the fresh-pattern count would lie), so it is retried
//! on `Busy` only. When the budget runs out the last error comes back
//! wrapped in [`WireError::RetriesExhausted`].
//!
//! # Tenant routing
//!
//! Against a registry server every work frame must name its tenant. The
//! client carries a **sticky route** ([`WireClient::set_route`]): once
//! set, every outgoing frame is stamped with it until it is changed or
//! cleared. The registry admin calls ([`WireClient::mount_artifact`],
//! [`WireClient::unmount`], [`WireClient::promote`],
//! [`WireClient::shadow_stats`]) address the routed tenant too —
//! `mount_artifact` reads the *version to mount* from the route, so it
//! needs a pinned route, not an active one. `ListTenants` and `ShadowStats`
//! are idempotent and retried like queries; `Mount`/`Unmount`/`Promote`
//! retry on `Busy` only, since a transport error may mean the operation
//! already landed.

use crate::codec::{Request, Response, StatsSnapshot};
use crate::frame::{Frame, TenantRoute, DEFAULT_MAX_PAYLOAD, HEADER_LEN};
use crate::WireError;
use napmon_core::Verdict;
use napmon_obs::ObsReport;
use napmon_registry::{ShadowReport, TenantInfo};
use napmon_serve::ServeReport;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Requests per pipelined frame in [`WireClient::query_batch`] /
/// [`WireClient::absorb_batch`].
const PIPELINE_CHUNK: usize = 64;

/// Maximum chunk frames written ahead of the responses read. Unbounded
/// pipelining can deadlock on large batches: the server writes responses
/// with no timeout, so once unread response bytes exceed the socket
/// buffers, the server stops reading requests and both sides block on
/// `write_all` forever. A small window keeps the un-drained response
/// backlog far below any realistic socket buffer while still amortizing
/// the round trip.
const PIPELINE_WINDOW: usize = 8;

/// SplitMix64 step — the jitter source behind [`RetryPolicy`]. Inlined
/// (not a dependency on the faultline test crate) so production clients
/// carry no test machinery.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Budget-capped, jittered exponential backoff for retryable failures.
///
/// Attempt `n`'s backoff is drawn uniformly from the upper half of
/// `initial_backoff · 2ⁿ` (capped at `max_backoff`) — "equal jitter",
/// which decorrelates a fleet of clients without ever sleeping near
/// zero. Retrying stops when `max_attempts` or the wall-clock `budget`
/// is exhausted, whichever comes first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first. `1` disables retry.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub initial_backoff: Duration,
    /// Hard cap on a single backoff sleep.
    pub max_backoff: Duration,
    /// Wall-clock cap across all attempts and sleeps.
    pub budget: Duration,
    /// Seed for the jitter draws; `None` derives a per-client seed, a
    /// fixed value makes the backoff schedule fully reproducible.
    pub jitter_seed: Option<u64>,
}

impl RetryPolicy {
    /// No retry at all: every failure surfaces immediately. The default.
    pub fn disabled() -> Self {
        Self {
            max_attempts: 1,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            budget: Duration::ZERO,
            jitter_seed: None,
        }
    }

    /// The recommended client loop: up to 6 attempts, 10 ms doubling to
    /// 500 ms, 10 s total budget.
    pub fn standard() -> Self {
        Self {
            max_attempts: 6,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            budget: Duration::from_secs(10),
            jitter_seed: None,
        }
    }

    /// [`RetryPolicy::standard`] with a fixed jitter seed, for
    /// deterministic tests.
    pub fn seeded(seed: u64) -> Self {
        Self {
            jitter_seed: Some(seed),
            ..Self::standard()
        }
    }

    fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// The jittered sleep before retry number `retry_index` (0-based).
    fn backoff(&self, retry_index: u32, jitter: &mut u64) -> Duration {
        let doubling = 1u32.checked_shl(retry_index.min(20)).unwrap_or(u32::MAX);
        let cap = self
            .initial_backoff
            .saturating_mul(doubling)
            .min(self.max_backoff);
        let nanos = cap.as_nanos().min(u64::MAX as u128) as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        let half = nanos / 2;
        let draw = ((splitmix_next(jitter) as u128 * (half + 1) as u128) >> 64) as u64;
        Duration::from_nanos(half + draw)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Connection-level knobs of a [`WireClient`].
///
/// Non-exhaustive: start from [`ClientConfig::default`] and chain the
/// `with_*` setters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection (and re-establishing
    /// it on retry).
    pub connect_timeout: Duration,
    /// Deadline for each socket read; `None` blocks forever (the
    /// pre-deadline behavior — not recommended against remote servers).
    pub read_timeout: Option<Duration>,
    /// Deadline for each socket write; `None` blocks forever.
    pub write_timeout: Option<Duration>,
    /// Largest response payload the client will accept.
    pub max_payload: u32,
    /// Retry policy for `Busy` and transient transport failures.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    /// Deadlines on (5 s connect, 30 s read/write), retry off.
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_payload: DEFAULT_MAX_PAYLOAD,
            retry: RetryPolicy::disabled(),
        }
    }
}

impl ClientConfig {
    /// Overrides the connect deadline.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Overrides the per-read deadline (`None` blocks forever).
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Overrides the per-write deadline (`None` blocks forever).
    pub fn with_write_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Overrides the largest response payload accepted.
    pub fn with_max_payload(mut self, max_payload: u32) -> Self {
        self.max_payload = max_payload;
        self
    }

    /// Installs a retry policy.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }
}

fn map_read_err(e: std::io::Error) -> WireError {
    match e.kind() {
        std::io::ErrorKind::UnexpectedEof => WireError::Truncated,
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::TimedOut,
        _ => WireError::Io(e),
    }
}

fn map_write_err(e: std::io::Error) -> WireError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::TimedOut,
        _ => WireError::Io(e),
    }
}

/// A blocking client for one [`WireServer`](crate::WireServer).
pub struct WireClient {
    stream: TcpStream,
    /// The resolved address actually connected to; reconnects re-dial it.
    addr: SocketAddr,
    next_id: u64,
    config: ClientConfig,
    /// Jitter generator state for the retry backoff schedule.
    jitter: u64,
    /// Sticky tenant route stamped on every outgoing frame when set.
    route: Option<TenantRoute>,
    /// Sticky trace id stamped on every outgoing frame when set.
    trace_id: Option<u64>,
    /// Trace id echoed on the most recent response — the server-minted id
    /// when the request went out untraced against a tracing server.
    last_trace_id: Option<u64>,
}

impl WireClient {
    /// Connects with [`ClientConfig::default`]: deadlines on, retry off.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if every resolved address refuses, or
    /// [`WireError::TimedOut`] if connecting exceeds the deadline.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit configuration.
    ///
    /// # Errors
    ///
    /// As [`WireClient::connect`].
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self, WireError> {
        let mut last: Option<WireError> = None;
        for candidate in addr.to_socket_addrs()? {
            match dial(candidate, &config) {
                Ok(stream) => {
                    let jitter = config.retry.jitter_seed.unwrap_or_else(derived_jitter_seed);
                    return Ok(Self {
                        stream,
                        addr: candidate,
                        next_id: 1,
                        config,
                        jitter,
                        route: None,
                        trace_id: None,
                        last_trace_id: None,
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            WireError::Io(std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            ))
        }))
    }

    /// Drops the current connection and dials the same address again,
    /// resetting the request-id window — the resync step that makes a
    /// retried pipelined batch start from a clean stream.
    fn reconnect(&mut self) -> Result<(), WireError> {
        self.stream = dial(self.addr, &self.config)?;
        self.next_id = 1;
        Ok(())
    }

    /// Sets (or clears) the sticky tenant route; every subsequent frame
    /// carries it. Routing against a single-engine server earns a typed
    /// `UnknownTenant` error, so a misdirected client fails loudly.
    pub fn set_route(&mut self, route: Option<TenantRoute>) {
        self.route = route;
    }

    /// Builder form of [`WireClient::set_route`].
    pub fn with_route(mut self, route: TenantRoute) -> Self {
        self.route = Some(route);
        self
    }

    /// The sticky route currently stamped on outgoing frames.
    pub fn route(&self) -> Option<&TenantRoute> {
        self.route.as_ref()
    }

    /// Sets (or clears) the sticky request trace id; every subsequent
    /// frame carries it as a `FLAG_TRACED` header extension. A tracing
    /// server threads the id through its internal spans, so one client-
    /// chosen id stitches the whole request path together. Id `0` means
    /// "untraced" server-side, so prefer nonzero ids (e.g. from
    /// [`napmon_obs::mint_trace_id`]).
    pub fn set_trace_id(&mut self, trace_id: Option<u64>) {
        self.trace_id = trace_id;
    }

    /// Builder form of [`WireClient::set_trace_id`].
    pub fn with_trace_id(mut self, trace_id: u64) -> Self {
        self.trace_id = Some(trace_id);
        self
    }

    /// The trace id echoed on the most recent response: the sticky id if
    /// one was sent, or the server-minted id when the server traced an
    /// untraced request on its own. `None` when the last response carried
    /// no trace id (tracing disabled server-side).
    pub fn last_trace_id(&self) -> Option<u64> {
        self.last_trace_id
    }

    fn send(&mut self, request: Request) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut frame = request.into_frame(id)?;
        if let Some(route) = &self.route {
            frame = frame.routed(route.clone());
        }
        if let Some(trace_id) = self.trace_id {
            frame = frame.traced(trace_id);
        }
        self.stream
            .write_all(&frame.encode()?)
            .map_err(map_write_err)?;
        Ok(id)
    }

    /// Reads one response frame, checking it answers request `id`.
    fn receive(&mut self, id: u64) -> Result<Response, WireError> {
        let mut header = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut header).map_err(map_read_err)?;
        let parsed = Frame::decode_header(&header, self.config.max_payload)?;
        let mut payload = vec![0u8; parsed.payload_len as usize];
        self.stream.read_exact(&mut payload).map_err(map_read_err)?;
        if parsed.request_id != id {
            return Err(WireError::RequestIdMismatch {
                sent: id,
                got: parsed.request_id,
            });
        }
        let frame = Frame::assemble(parsed, payload)?;
        self.last_trace_id = frame.trace_id;
        Response::decode(&frame)
    }

    fn call(&mut self, request: Request) -> Result<Response, WireError> {
        let id = self.send(request)?;
        match self.receive(id)? {
            Response::Busy { in_flight, budget } => Err(WireError::Busy { in_flight, budget }),
            Response::Error { code, message } => Err(WireError::Remote { code, message }),
            response => Ok(response),
        }
    }

    /// Runs `op` under the retry policy. `Busy` refusals always retry;
    /// transient transport failures retry (after a reconnect) only when
    /// `idempotent`. Exhaustion surfaces as
    /// [`WireError::RetriesExhausted`].
    fn with_retry<T>(
        &mut self,
        idempotent: bool,
        mut op: impl FnMut(&mut Self) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        let policy = self.config.retry.clone();
        if !policy.enabled() {
            return op(self);
        }
        let start = Instant::now();
        let mut attempts = 0u32;
        let mut needs_reconnect = false;
        loop {
            attempts += 1;
            let result = if needs_reconnect {
                self.reconnect().and_then(|()| {
                    needs_reconnect = false;
                    op(self)
                })
            } else {
                op(self)
            };
            let err = match result {
                Ok(value) => return Ok(value),
                Err(e) => e,
            };
            let transport = err.is_transient_transport();
            let retryable = matches!(err, WireError::Busy { .. }) || (transport && idempotent);
            if !retryable {
                return Err(err);
            }
            needs_reconnect |= transport;
            let backoff = policy.backoff(attempts - 1, &mut self.jitter);
            if attempts >= policy.max_attempts || start.elapsed() + backoff > policy.budget {
                return Err(WireError::RetriesExhausted {
                    attempts,
                    last: Box::new(err),
                });
            }
            std::thread::sleep(backoff);
        }
    }

    /// Serves one input (idempotent; retried under the policy).
    ///
    /// # Errors
    ///
    /// [`WireError::Busy`] under backpressure, [`WireError::Remote`] for
    /// server-side failures, [`WireError::TimedOut`] past a deadline,
    /// [`WireError::RetriesExhausted`] when a policy gives up, and
    /// transport/protocol errors otherwise.
    pub fn query(&mut self, input: &[f64]) -> Result<Verdict, WireError> {
        self.with_retry(true, |client| {
            match client.call(Request::Query(input.to_vec()))? {
                Response::Verdict(verdict) => Ok(verdict),
                other => Err(unexpected("verdict", &other)),
            }
        })
    }

    /// Serves a whole batch with pipelined chunked submission; verdicts
    /// come back in input order. Idempotent: a retry policy re-submits
    /// the whole batch (reconnecting first after a transport failure).
    ///
    /// # Errors
    ///
    /// The first failing chunk's error, after the stream has been fully
    /// drained (the connection stays usable); retry/deadline errors as
    /// [`WireClient::query`].
    pub fn query_batch(&mut self, inputs: &[Vec<f64>]) -> Result<Vec<Verdict>, WireError> {
        self.with_retry(true, |client| {
            let responses = client.pipeline(inputs, |chunk| Request::QueryBatch(chunk.to_vec()))?;
            let mut verdicts = Vec::with_capacity(inputs.len());
            for response in responses {
                match response {
                    Response::Verdicts(mut chunk) => verdicts.append(&mut chunk),
                    other => return Err(unexpected("verdict batch", &other)),
                }
            }
            if verdicts.len() != inputs.len() {
                return Err(WireError::Malformed(format!(
                    "server answered {} verdicts for {} inputs",
                    verdicts.len(),
                    inputs.len()
                )));
            }
            Ok(verdicts)
        })
    }

    /// Absorbs a batch of inputs into the server's store-backed members
    /// (operation-time monitor enlargement over the wire). Returns the
    /// number of new patterns stored.
    ///
    /// Retried on `Busy` only: a `Busy` refusal admitted nothing, so
    /// re-submitting is safe. Transport failures are *not* retried —
    /// the batch may have been half-absorbed, and although re-absorbing
    /// deduplicates, the returned fresh-pattern count would undercount.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] with [`ErrorCode::Monitor`] if the served
    /// monitor is not store-backed, plus the usual transport errors.
    ///
    /// [`ErrorCode::Monitor`]: crate::ErrorCode::Monitor
    pub fn absorb_batch(&mut self, inputs: &[Vec<f64>]) -> Result<u64, WireError> {
        self.with_retry(false, |client| {
            let responses = client.pipeline(inputs, |chunk| Request::Absorb(chunk.to_vec()))?;
            let mut fresh = 0u64;
            for response in responses {
                match response {
                    Response::Absorbed(n) => fresh += n,
                    other => return Err(unexpected("absorbed count", &other)),
                }
            }
            Ok(fresh)
        })
    }

    /// Snapshots the server's metrics: the engine's [`ServeReport`] plus
    /// the wire layer's in-flight/budget/busy gauges and degradation
    /// counters. Idempotent; retried under the policy.
    ///
    /// [`ServeReport`]: napmon_serve::ServeReport
    ///
    /// # Errors
    ///
    /// Transport/protocol errors; stats are never refused as busy.
    pub fn stats(&mut self) -> Result<StatsSnapshot, WireError> {
        self.with_retry(true, |client| match client.call(Request::Stats)? {
            Response::Stats(snapshot) => Ok(*snapshot),
            other => Err(unexpected("stats report", &other)),
        })
    }

    /// Scrapes the server's observability surface: the full metrics
    /// snapshot (counters, gauges, latency histograms) with a rendered
    /// Prometheus-style text exposition, the slow-request log, and recent
    /// trace spans. Control-plane: the server answers even under
    /// backpressure, so this never comes back `Busy`. Idempotent; retried
    /// under the policy.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn metrics(&mut self) -> Result<ObsReport, WireError> {
        self.with_retry(true, |client| match client.call(Request::Metrics)? {
            Response::Metrics(report) => Ok(*report),
            other => Err(unexpected("metrics report", &other)),
        })
    }

    /// Asks the server to shut down gracefully (drain, then close).
    /// Never retried: a transport error may mean the request landed and
    /// the server is already draining.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn shutdown_server(&mut self) -> Result<(), WireError> {
        match self.call(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown acknowledgement", &other)),
        }
    }

    /// Mounts `artifact_json` (a serialized
    /// [`MonitorArtifact`](napmon_artifact::MonitorArtifact)) on the
    /// registry at the client's sticky route — the route's tenant id names
    /// the tenant, its *pinned version* names the version to mount
    /// (version 0 is reserved, so an active route is refused). With
    /// `shadow`, the artifact mounts as a shadow candidate beside the
    /// active engine instead of hot-swapping it.
    ///
    /// Retried on `Busy` only: after a transport failure the mount may
    /// already have landed, and re-mounting the same version is a typed
    /// `VersionInUse` refusal.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] with [`ErrorCode`](crate::ErrorCode)
    /// `Registry`/`UnknownTenant` for registry refusals, plus the usual
    /// transport errors.
    pub fn mount_artifact(&mut self, shadow: bool, artifact_json: &str) -> Result<(), WireError> {
        self.with_retry(false, |client| {
            match client.call(Request::Mount {
                shadow,
                artifact_json: artifact_json.to_string(),
            })? {
                Response::Mounted => Ok(()),
                other => Err(unexpected("mount acknowledgement", &other)),
            }
        })
    }

    /// Unmounts the routed tenant entirely (shadow first, then the active
    /// engine, drained to an empty queue) and returns the retired active
    /// engine's final report. Retried on `Busy` only.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] with `UnknownTenant` if nothing is mounted
    /// there, plus transport errors.
    pub fn unmount(&mut self) -> Result<ServeReport, WireError> {
        self.with_retry(false, |client| match client.call(Request::Unmount)? {
            Response::Unmounted(report) => Ok(*report),
            other => Err(unexpected("unmount report", &other)),
        })
    }

    /// Promotes the routed tenant's shadow candidate to active and
    /// returns the final [`ShadowReport`] — the verdict-agreement account
    /// that justified (or should have blocked) the flip. Retried on
    /// `Busy` only: a transport failure may mean the flip already
    /// happened, and re-promoting without a shadow is a typed `NoShadow`
    /// refusal, not a double flip.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] with `Registry` (`NoShadow`) or
    /// `UnknownTenant`, plus transport errors.
    pub fn promote(&mut self) -> Result<ShadowReport, WireError> {
        self.with_retry(false, |client| match client.call(Request::Promote)? {
            Response::Promoted(report) => Ok(*report),
            other => Err(unexpected("promotion report", &other)),
        })
    }

    /// Lists every mounted tenant (id, active version, shadow version,
    /// queue depth). Needs no route; idempotent and retried under the
    /// policy.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn list_tenants(&mut self) -> Result<Vec<TenantInfo>, WireError> {
        self.with_retry(true, |client| match client.call(Request::ListTenants)? {
            Response::TenantList(tenants) => Ok(tenants),
            other => Err(unexpected("tenant list", &other)),
        })
    }

    /// Snapshots the routed tenant's live shadow diff without touching
    /// the deployment. Idempotent; retried under the policy.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] with `Registry` (`NoShadow`) or
    /// `UnknownTenant`, plus transport errors.
    pub fn shadow_stats(&mut self) -> Result<ShadowReport, WireError> {
        self.with_retry(true, |client| match client.call(Request::ShadowStats)? {
            Response::ShadowReport(report) => Ok(*report),
            other => Err(unexpected("shadow report", &other)),
        })
    }

    /// Writes chunk frames ahead of the responses read, up to
    /// [`PIPELINE_WINDOW`] outstanding, then drains the rest. All
    /// responses are read even when one is an error, so a failure leaves
    /// the stream framed and the connection usable.
    fn pipeline(
        &mut self,
        inputs: &[Vec<f64>],
        request: impl Fn(&[Vec<f64>]) -> Request,
    ) -> Result<Vec<Response>, WireError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let mut outstanding = std::collections::VecDeque::with_capacity(PIPELINE_WINDOW);
        let mut responses = Vec::with_capacity(inputs.len().div_ceil(PIPELINE_CHUNK));
        let mut first_error: Option<WireError> = None;
        for chunk in inputs.chunks(PIPELINE_CHUNK) {
            if outstanding.len() >= PIPELINE_WINDOW {
                let id = outstanding.pop_front().expect("non-empty window");
                self.collect(id, &mut responses, &mut first_error)?;
            }
            outstanding.push_back(self.send(request(chunk))?);
        }
        while let Some(id) = outstanding.pop_front() {
            self.collect(id, &mut responses, &mut first_error)?;
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(responses),
        }
    }

    /// Reads the response to request `id`, recording the first
    /// server-side refusal without ending the drain.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors only — those desynchronize the stream,
    /// so they fail immediately.
    fn collect(
        &mut self,
        id: u64,
        responses: &mut Vec<Response>,
        first_error: &mut Option<WireError>,
    ) -> Result<(), WireError> {
        match self.receive(id)? {
            Response::Busy { in_flight, budget } => {
                first_error.get_or_insert(WireError::Busy { in_flight, budget });
            }
            Response::Error { code, message } => {
                first_error.get_or_insert(WireError::Remote { code, message });
            }
            response => responses.push(response),
        }
        Ok(())
    }
}

/// One TCP dial under the config's deadlines.
fn dial(addr: SocketAddr, config: &ClientConfig) -> Result<TcpStream, WireError> {
    let stream = TcpStream::connect_timeout(&addr, config.connect_timeout).map_err(|e| {
        if e.kind() == std::io::ErrorKind::TimedOut || e.kind() == std::io::ErrorKind::WouldBlock {
            WireError::TimedOut
        } else {
            WireError::Io(e)
        }
    })?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_write_timeout(config.write_timeout)?;
    Ok(stream)
}

/// A per-client jitter seed when the policy does not fix one: the process
/// id mixed with a client counter, so concurrent clients (and restarted
/// processes) never share a backoff schedule.
fn derived_jitter_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut state = (std::process::id() as u64) << 32 | COUNTER.fetch_add(1, Ordering::Relaxed);
    splitmix_next(&mut state)
}

fn unexpected(expected: &'static str, got: &Response) -> WireError {
    WireError::UnexpectedResponse {
        expected,
        got: got.opcode() as u8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_jitters_within_bounds() {
        let policy = RetryPolicy {
            max_attempts: 8,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            budget: Duration::from_secs(10),
            jitter_seed: Some(1),
        };
        let mut jitter = 1u64;
        for retry in 0..8 {
            let nominal =
                Duration::from_millis(10 * (1u64 << retry.min(3))).min(Duration::from_millis(80));
            let sleep = policy.backoff(retry, &mut jitter);
            assert!(
                sleep >= nominal / 2 && sleep <= nominal,
                "retry {retry}: {sleep:?} outside [{:?}, {nominal:?}]",
                nominal / 2
            );
        }
    }

    #[test]
    fn backoff_schedule_replays_from_seed() {
        let policy = RetryPolicy::seeded(42);
        let mut a = 42u64;
        let mut b = 42u64;
        for retry in 0..6 {
            assert_eq!(policy.backoff(retry, &mut a), policy.backoff(retry, &mut b));
        }
    }

    #[test]
    fn disabled_policy_is_single_attempt() {
        assert!(!RetryPolicy::disabled().enabled());
        assert!(RetryPolicy::standard().enabled());
        assert_eq!(ClientConfig::default().retry, RetryPolicy::disabled());
    }
}
