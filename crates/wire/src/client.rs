//! The client side: a blocking connection with pipelined batches.
//!
//! [`WireClient`] wraps one TCP connection. Single-shot calls
//! ([`WireClient::query`], [`WireClient::stats`], …) are plain
//! request/response; [`WireClient::query_batch`] *pipelines* — it splits
//! the batch into chunks, writes every chunk's frame before reading any
//! response, and reassembles the verdicts in input order — so a large
//! batch pays one round-trip of latency, not one per chunk. The server
//! answers a connection's frames in arrival order; request ids are
//! checked on every response, so a desynchronized stream fails typed
//! ([`WireError::RequestIdMismatch`]) instead of mispairing verdicts.

use crate::codec::{Request, Response, StatsSnapshot};
use crate::frame::{Frame, DEFAULT_MAX_PAYLOAD, HEADER_LEN};
use crate::WireError;
use napmon_core::Verdict;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Requests per pipelined frame in [`WireClient::query_batch`] /
/// [`WireClient::absorb_batch`].
const PIPELINE_CHUNK: usize = 64;

/// Maximum chunk frames written ahead of the responses read. Unbounded
/// pipelining can deadlock on large batches: the server writes responses
/// with no timeout, so once unread response bytes exceed the socket
/// buffers, the server stops reading requests and both sides block on
/// `write_all` forever. A small window keeps the un-drained response
/// backlog far below any realistic socket buffer while still amortizing
/// the round trip.
const PIPELINE_WINDOW: usize = 8;

/// A blocking client for one [`WireServer`](crate::WireServer).
pub struct WireClient {
    stream: TcpStream,
    next_id: u64,
    max_payload: u32,
}

impl WireClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            next_id: 1,
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    fn send(&mut self, request: Request) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = request.into_frame(id);
        self.stream.write_all(&frame.encode())?;
        Ok(id)
    }

    /// Reads one response frame, checking it answers request `id`.
    fn receive(&mut self, id: u64) -> Result<Response, WireError> {
        let mut header = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut header).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Truncated
            } else {
                WireError::Io(e)
            }
        })?;
        let parsed = Frame::decode_header(&header, self.max_payload)?;
        let mut payload = vec![0u8; parsed.payload_len as usize];
        self.stream.read_exact(&mut payload).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Truncated
            } else {
                WireError::Io(e)
            }
        })?;
        if parsed.request_id != id {
            return Err(WireError::RequestIdMismatch {
                sent: id,
                got: parsed.request_id,
            });
        }
        Response::decode(&Frame {
            opcode: parsed.opcode,
            request_id: parsed.request_id,
            payload,
        })
    }

    fn call(&mut self, request: Request) -> Result<Response, WireError> {
        let id = self.send(request)?;
        match self.receive(id)? {
            Response::Busy { in_flight, budget } => Err(WireError::Busy { in_flight, budget }),
            Response::Error { code, message } => Err(WireError::Remote { code, message }),
            response => Ok(response),
        }
    }

    /// Serves one input.
    ///
    /// # Errors
    ///
    /// [`WireError::Busy`] under backpressure, [`WireError::Remote`] for
    /// server-side failures, and transport/protocol errors otherwise.
    pub fn query(&mut self, input: &[f64]) -> Result<Verdict, WireError> {
        match self.call(Request::Query(input.to_vec()))? {
            Response::Verdict(verdict) => Ok(verdict),
            other => Err(unexpected("verdict", &other)),
        }
    }

    /// Serves a whole batch with pipelined chunked submission; verdicts
    /// come back in input order.
    ///
    /// # Errors
    ///
    /// The first failing chunk's error, after the stream has been fully
    /// drained (the connection stays usable).
    pub fn query_batch(&mut self, inputs: &[Vec<f64>]) -> Result<Vec<Verdict>, WireError> {
        let responses = self.pipeline(inputs, |chunk| Request::QueryBatch(chunk.to_vec()))?;
        let mut verdicts = Vec::with_capacity(inputs.len());
        for response in responses {
            match response {
                Response::Verdicts(mut chunk) => verdicts.append(&mut chunk),
                other => return Err(unexpected("verdict batch", &other)),
            }
        }
        if verdicts.len() != inputs.len() {
            return Err(WireError::Malformed(format!(
                "server answered {} verdicts for {} inputs",
                verdicts.len(),
                inputs.len()
            )));
        }
        Ok(verdicts)
    }

    /// Absorbs a batch of inputs into the server's store-backed members
    /// (operation-time monitor enlargement over the wire). Returns the
    /// number of new patterns stored.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] with [`ErrorCode::Monitor`] if the served
    /// monitor is not store-backed, plus the usual transport errors.
    ///
    /// [`ErrorCode::Monitor`]: crate::ErrorCode::Monitor
    pub fn absorb_batch(&mut self, inputs: &[Vec<f64>]) -> Result<u64, WireError> {
        let responses = self.pipeline(inputs, |chunk| Request::Absorb(chunk.to_vec()))?;
        let mut fresh = 0u64;
        for response in responses {
            match response {
                Response::Absorbed(n) => fresh += n,
                other => return Err(unexpected("absorbed count", &other)),
            }
        }
        Ok(fresh)
    }

    /// Snapshots the server's metrics: the engine's [`ServeReport`] plus
    /// the wire layer's in-flight/budget/busy gauges.
    ///
    /// [`ServeReport`]: napmon_serve::ServeReport
    ///
    /// # Errors
    ///
    /// Transport/protocol errors; stats are never refused as busy.
    pub fn stats(&mut self) -> Result<StatsSnapshot, WireError> {
        match self.call(Request::Stats)? {
            Response::Stats(snapshot) => Ok(*snapshot),
            other => Err(unexpected("stats report", &other)),
        }
    }

    /// Asks the server to shut down gracefully (drain, then close).
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn shutdown_server(&mut self) -> Result<(), WireError> {
        match self.call(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown acknowledgement", &other)),
        }
    }

    /// Writes chunk frames ahead of the responses read, up to
    /// [`PIPELINE_WINDOW`] outstanding, then drains the rest. All
    /// responses are read even when one is an error, so a failure leaves
    /// the stream framed and the connection usable.
    fn pipeline(
        &mut self,
        inputs: &[Vec<f64>],
        request: impl Fn(&[Vec<f64>]) -> Request,
    ) -> Result<Vec<Response>, WireError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let mut outstanding = std::collections::VecDeque::with_capacity(PIPELINE_WINDOW);
        let mut responses = Vec::with_capacity(inputs.len().div_ceil(PIPELINE_CHUNK));
        let mut first_error: Option<WireError> = None;
        for chunk in inputs.chunks(PIPELINE_CHUNK) {
            if outstanding.len() >= PIPELINE_WINDOW {
                let id = outstanding.pop_front().expect("non-empty window");
                self.collect(id, &mut responses, &mut first_error)?;
            }
            outstanding.push_back(self.send(request(chunk))?);
        }
        while let Some(id) = outstanding.pop_front() {
            self.collect(id, &mut responses, &mut first_error)?;
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(responses),
        }
    }

    /// Reads the response to request `id`, recording the first
    /// server-side refusal without ending the drain.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors only — those desynchronize the stream,
    /// so they fail immediately.
    fn collect(
        &mut self,
        id: u64,
        responses: &mut Vec<Response>,
        first_error: &mut Option<WireError>,
    ) -> Result<(), WireError> {
        match self.receive(id)? {
            Response::Busy { in_flight, budget } => {
                first_error.get_or_insert(WireError::Busy { in_flight, budget });
            }
            Response::Error { code, message } => {
                first_error.get_or_insert(WireError::Remote { code, message });
            }
            response => responses.push(response),
        }
        Ok(())
    }
}

fn unexpected(expected: &'static str, got: &Response) -> WireError {
    WireError::UnexpectedResponse {
        expected,
        got: got.opcode() as u8,
    }
}
