//! Typed payloads: what each opcode's frame body means.
//!
//! Requests and responses are plain enums; `encode` produces the payload
//! bytes for a [`Frame`], `decode` interprets a received frame. Input
//! vectors and verdicts use the shared binary helpers in
//! [`napmon_core::wirefmt`]; the stats report rides as JSON (it is an
//! ops-facing document, not a hot-path value).
//!
//! Decoding is strict: a payload must spell exactly one value of the
//! opcode's type, with no trailing bytes — anything else is a typed
//! [`WireError::Malformed`].

use crate::error::{ErrorCode, WireError};
use crate::frame::{Frame, Opcode};
use napmon_core::wirefmt;
use napmon_core::Verdict;
use napmon_obs::ObsReport;
use napmon_registry::{ShadowReport, TenantInfo};
use napmon_serve::ServeReport;

/// A client → server message.
///
/// Work requests (`Query`/`QueryBatch`/`Absorb`) and the per-tenant admin
/// requests carry their tenant in the **frame route**, not the payload —
/// the route is addressing, the payload is content.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Serve one input.
    Query(Vec<f64>),
    /// Serve a batch of inputs.
    QueryBatch(Vec<Vec<f64>>),
    /// Absorb a batch of inputs into the store-backed members.
    Absorb(Vec<Vec<f64>>),
    /// Snapshot serving metrics.
    Stats,
    /// Begin a graceful shutdown.
    Shutdown,
    /// Mount the carried artifact at the routed `(model_id, version)` —
    /// as the shadow candidate when `shadow`, otherwise as active
    /// (hot-swapping any current active).
    Mount {
        /// Mount beside the active engine instead of replacing it.
        shadow: bool,
        /// The serialized [`MonitorArtifact`](napmon_artifact::MonitorArtifact).
        artifact_json: String,
    },
    /// Unmount the routed tenant entirely (drain, then final report).
    Unmount,
    /// Promote the routed tenant's shadow candidate to active.
    Promote,
    /// List every mounted tenant.
    ListTenants,
    /// Snapshot the routed tenant's live shadow diff.
    ShadowStats,
    /// Scrape the server's observability report (metrics registry, text
    /// exposition, slow-request log, recent trace spans).
    Metrics,
}

impl Request {
    /// The opcode carrying this request.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Query(_) => Opcode::Query,
            Request::QueryBatch(_) => Opcode::QueryBatch,
            Request::Absorb(_) => Opcode::Absorb,
            Request::Stats => Opcode::Stats,
            Request::Shutdown => Opcode::Shutdown,
            Request::Mount { .. } => Opcode::Mount,
            Request::Unmount => Opcode::Unmount,
            Request::Promote => Opcode::Promote,
            Request::ListTenants => Opcode::ListTenants,
            Request::ShadowStats => Opcode::ShadowStats,
            Request::Metrics => Opcode::Metrics,
        }
    }

    /// Packages the request as a frame with `request_id`.
    ///
    /// # Errors
    ///
    /// [`WireError::TooLarge`] for a batch over [`MAX_BATCH_INPUTS`]: the
    /// decode side has always refused such frames, so encoding one only
    /// manufactured a guaranteed rejection — and the old `len as u32`
    /// count prefix silently wrapped past `u32::MAX`, corrupting the
    /// payload outright. The same frame cap is now checked before any
    /// bytes are written.
    pub fn into_frame(self, request_id: u64) -> Result<Frame, WireError> {
        let mut payload = Vec::new();
        match &self {
            Request::Query(input) => wirefmt::put_features(&mut payload, input),
            Request::QueryBatch(inputs) | Request::Absorb(inputs) => {
                if inputs.len() > MAX_BATCH_INPUTS {
                    return Err(WireError::TooLarge {
                        what: "batch inputs",
                        len: inputs.len() as u64,
                        limit: MAX_BATCH_INPUTS as u64,
                    });
                }
                encode_inputs(&mut payload, inputs)
            }
            Request::Mount {
                shadow,
                artifact_json,
            } => {
                payload.push(u8::from(*shadow));
                payload.extend_from_slice(artifact_json.as_bytes());
            }
            Request::Stats
            | Request::Shutdown
            | Request::Unmount
            | Request::Promote
            | Request::ListTenants
            | Request::ShadowStats
            | Request::Metrics => {}
        }
        Ok(Frame {
            opcode: self.opcode(),
            request_id,
            trace_id: None,
            route: None,
            payload,
        })
    }

    /// Interprets a received frame as a request.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownOpcode`] for response opcodes (a server only
    /// accepts requests) and [`WireError::Malformed`] /
    /// [`WireError::Truncated`] for payloads that do not spell the
    /// opcode's type exactly.
    pub fn decode(frame: &Frame) -> Result<Self, WireError> {
        let mut bytes = frame.payload.as_slice();
        let request = match frame.opcode {
            Opcode::Query => Request::Query(wirefmt::get_features(&mut bytes)?),
            Opcode::QueryBatch => Request::QueryBatch(decode_inputs(&mut bytes)?),
            Opcode::Absorb => Request::Absorb(decode_inputs(&mut bytes)?),
            Opcode::Stats => Request::Stats,
            Opcode::Shutdown => Request::Shutdown,
            Opcode::Mount => {
                let raw = *bytes.first().ok_or(WireError::Truncated)?;
                let shadow = match raw {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(WireError::Malformed(format!(
                            "unknown mount mode byte {other:#04x} (0 = active, 1 = shadow)"
                        )))
                    }
                };
                let artifact_json = std::str::from_utf8(&bytes[1..])
                    .map_err(|_| WireError::Malformed("mount artifact is not UTF-8".to_string()))?
                    .to_string();
                bytes = &[];
                Request::Mount {
                    shadow,
                    artifact_json,
                }
            }
            Opcode::Unmount => Request::Unmount,
            Opcode::Promote => Request::Promote,
            Opcode::ListTenants => Request::ListTenants,
            Opcode::ShadowStats => Request::ShadowStats,
            Opcode::Metrics => Request::Metrics,
            other => return Err(WireError::UnknownOpcode(other as u8)),
        };
        if !bytes.is_empty() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after a {:?} payload",
                bytes.len(),
                frame.opcode
            )));
        }
        Ok(request)
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One verdict ([`Request::Query`]).
    Verdict(Verdict),
    /// A verdict batch ([`Request::QueryBatch`]).
    Verdicts(Vec<Verdict>),
    /// New patterns stored ([`Request::Absorb`]).
    Absorbed(u64),
    /// Metrics snapshot ([`Request::Stats`]).
    Stats(Box<StatsSnapshot>),
    /// Shutdown acknowledged; the server is draining.
    ShuttingDown,
    /// Mount succeeded ([`Request::Mount`]).
    Mounted,
    /// Unmount succeeded; the retired engine's final report
    /// ([`Request::Unmount`]).
    Unmounted(Box<ServeReport>),
    /// Promotion succeeded; the final shadow diff ([`Request::Promote`]).
    Promoted(Box<ShadowReport>),
    /// Every mounted tenant ([`Request::ListTenants`]).
    TenantList(Vec<TenantInfo>),
    /// A live shadow diff snapshot ([`Request::ShadowStats`]).
    ShadowReport(Box<ShadowReport>),
    /// The observability report ([`Request::Metrics`]).
    Metrics(Box<ObsReport>),
    /// The in-flight budget is exhausted; the request was not served.
    Busy {
        /// Requests in flight when the server refused.
        in_flight: u32,
        /// The configured budget.
        budget: u32,
    },
    /// The request failed.
    Error {
        /// Error category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// The stats payload: the engine's own report plus wire-level gauges.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StatsSnapshot {
    /// The sharded engine's aggregated metrics.
    pub engine: ServeReport,
    /// The engine's shard backlog at snapshot time, sampled from the
    /// lock-free counters (`MonitorEngine::queue_depth`) — unlike
    /// `engine.queue_depth`, this does not ride the job queues, so it is
    /// the instantaneous figure an operator's scrape sees.
    pub engine_queue_depth: u64,
    /// Requests the wire layer is serving right now.
    pub wire_in_flight: u32,
    /// The server's in-flight budget.
    pub wire_budget: u32,
    /// Requests refused with `Busy` since the server started — the sum of
    /// every `Busy`-shaped refusal in [`DegradedStats`] (budget, watermark,
    /// and connection-cap), kept as one headline figure for dashboards.
    pub wire_busy_rejections: u64,
    /// The split degradation ledger: which defense refused or evicted what.
    pub degraded: DegradedStats,
}

/// Counters for every load-shedding and eviction decision the server has
/// made — the audit trail of its graceful-degradation ladder. Each counter
/// is one defense; together they account for every request or connection
/// the server turned away rather than served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DegradedStats {
    /// Work requests answered `Busy` because the in-flight budget was
    /// exhausted (the request was fully read; the connection stays open).
    pub busy_budget: u64,
    /// Work requests answered `Busy` because the engine's shard backlog
    /// stood above the queue watermark — shed *before* saturating the
    /// engine, again without disconnecting.
    pub shed_watermark: u64,
    /// Connections refused at accept because the connection cap was
    /// reached (answered with one `Busy` frame, then closed).
    pub refused_connections: u64,
    /// Connections evicted for sitting idle between frames past the idle
    /// deadline (each got a typed `Evicted` error frame first).
    pub evicted_idle: u64,
    /// Connections evicted for stalling mid-frame past the frame deadline
    /// — the slow-loris defense — or for not draining their responses past
    /// the write deadline.
    pub evicted_stalled: u64,
    /// Requests refused with a typed error because their tenant route
    /// named no mounted tenant or version (or was missing / present when
    /// the backend cannot use one). Routing misses are client errors, not
    /// load, but they are counted here so a misconfigured fleet shows up
    /// on the same degradation dashboard.
    pub unknown_tenant: u64,
}

impl DegradedStats {
    /// Total `Busy`-shaped refusals: what [`StatsSnapshot`] reports as the
    /// headline `wire_busy_rejections`.
    pub fn busy_total(&self) -> u64 {
        self.busy_budget + self.shed_watermark + self.refused_connections
    }

    /// Total connections evicted for stalling (idle or mid-frame).
    pub fn evicted_total(&self) -> u64 {
        self.evicted_idle + self.evicted_stalled
    }
}

impl Response {
    /// The opcode carrying this response.
    pub fn opcode(&self) -> Opcode {
        match self {
            Response::Verdict(_) => Opcode::Verdict,
            Response::Verdicts(_) => Opcode::Verdicts,
            Response::Absorbed(_) => Opcode::Absorbed,
            Response::Stats(_) => Opcode::StatsReport,
            Response::ShuttingDown => Opcode::ShuttingDown,
            Response::Mounted => Opcode::Mounted,
            Response::Unmounted(_) => Opcode::Unmounted,
            Response::Promoted(_) => Opcode::Promoted,
            Response::TenantList(_) => Opcode::TenantList,
            Response::ShadowReport(_) => Opcode::ShadowReport,
            Response::Metrics(_) => Opcode::MetricsReport,
            Response::Busy { .. } => Opcode::Busy,
            Response::Error { .. } => Opcode::Error,
        }
    }

    /// Packages the response as a frame echoing `request_id`.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] if the stats report fails to serialize
    /// (never expected; surfaced rather than panicking in the server), and
    /// [`WireError::TooLarge`] for an error message over
    /// [`MAX_ERROR_MESSAGE_BYTES`] — previously `message.len() as u32`
    /// silently wrapped for absurd messages, emitting a corrupt length
    /// prefix.
    pub fn into_frame(self, request_id: u64) -> Result<Frame, WireError> {
        let opcode = self.opcode();
        let mut payload = Vec::new();
        match self {
            Response::Verdict(v) => wirefmt::put_verdict(&mut payload, &v),
            Response::Verdicts(vs) => wirefmt::put_verdicts(&mut payload, &vs),
            Response::Absorbed(n) => wirefmt::put_u64(&mut payload, n),
            Response::Stats(snapshot) => {
                payload = serde_json::to_string(&*snapshot)
                    .map_err(|e| WireError::Malformed(format!("stats serialization: {e}")))?
                    .into_bytes();
            }
            Response::ShuttingDown | Response::Mounted => {}
            Response::Unmounted(report) => {
                payload = encode_json("unmount report", &*report)?;
            }
            Response::Promoted(report) => {
                payload = encode_json("promotion report", &*report)?;
            }
            Response::TenantList(tenants) => {
                payload = encode_json("tenant list", &tenants)?;
            }
            Response::ShadowReport(report) => {
                payload = encode_json("shadow report", &*report)?;
            }
            Response::Metrics(report) => {
                payload = encode_json("metrics report", &*report)?;
            }
            Response::Busy { in_flight, budget } => {
                wirefmt::put_u32(&mut payload, in_flight);
                wirefmt::put_u32(&mut payload, budget);
            }
            Response::Error { code, message } => {
                if message.len() > MAX_ERROR_MESSAGE_BYTES {
                    return Err(WireError::TooLarge {
                        what: "error message bytes",
                        len: message.len() as u64,
                        limit: MAX_ERROR_MESSAGE_BYTES as u64,
                    });
                }
                payload.push(code as u8);
                wirefmt::put_u32(&mut payload, message.len() as u32);
                payload.extend_from_slice(message.as_bytes());
            }
        }
        Ok(Frame {
            opcode,
            request_id,
            trace_id: None,
            route: None,
            payload,
        })
    }

    /// Interprets a received frame as a response.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownOpcode`] for request opcodes and
    /// [`WireError::Malformed`] / [`WireError::Truncated`] for payloads
    /// that do not spell the opcode's type exactly.
    pub fn decode(frame: &Frame) -> Result<Self, WireError> {
        let mut bytes = frame.payload.as_slice();
        let response = match frame.opcode {
            Opcode::Verdict => Response::Verdict(wirefmt::get_verdict(&mut bytes)?),
            Opcode::Verdicts => Response::Verdicts(wirefmt::get_verdicts(&mut bytes)?),
            Opcode::Absorbed => Response::Absorbed(wirefmt::get_u64(&mut bytes)?),
            Opcode::StatsReport => {
                let snapshot: StatsSnapshot =
                    serde_json::from_str(std::str::from_utf8(bytes).map_err(|_| {
                        WireError::Malformed("stats payload is not UTF-8".to_string())
                    })?)
                    .map_err(|e| WireError::Malformed(format!("stats payload: {e}")))?;
                bytes = &[];
                Response::Stats(Box::new(snapshot))
            }
            Opcode::ShuttingDown => Response::ShuttingDown,
            Opcode::Mounted => Response::Mounted,
            Opcode::Unmounted => {
                let report = decode_json("unmount report", bytes)?;
                bytes = &[];
                Response::Unmounted(Box::new(report))
            }
            Opcode::Promoted => {
                let report = decode_json("promotion report", bytes)?;
                bytes = &[];
                Response::Promoted(Box::new(report))
            }
            Opcode::TenantList => {
                let tenants = decode_json("tenant list", bytes)?;
                bytes = &[];
                Response::TenantList(tenants)
            }
            Opcode::ShadowReport => {
                let report = decode_json("shadow report", bytes)?;
                bytes = &[];
                Response::ShadowReport(Box::new(report))
            }
            Opcode::MetricsReport => {
                let report = decode_json("metrics report", bytes)?;
                bytes = &[];
                Response::Metrics(Box::new(report))
            }
            Opcode::Busy => Response::Busy {
                in_flight: wirefmt::get_u32(&mut bytes)?,
                budget: wirefmt::get_u32(&mut bytes)?,
            },
            Opcode::Error => {
                let raw = *bytes.first().ok_or(WireError::Truncated)?;
                bytes = &bytes[1..];
                let code = ErrorCode::from_wire(raw)
                    .ok_or_else(|| WireError::Malformed(format!("unknown error code {raw}")))?;
                let len = wirefmt::get_u32(&mut bytes)? as usize;
                if bytes.len() < len {
                    return Err(WireError::Truncated);
                }
                let message = std::str::from_utf8(&bytes[..len])
                    .map_err(|_| WireError::Malformed("error message is not UTF-8".to_string()))?
                    .to_string();
                bytes = &bytes[len..];
                Response::Error { code, message }
            }
            other => return Err(WireError::UnknownOpcode(other as u8)),
        };
        if !bytes.is_empty() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after a {:?} payload",
                bytes.len(),
                frame.opcode
            )));
        }
        Ok(response)
    }
}

/// Protocol-level cap on inputs per batch frame. A `Vec<Vec<f64>>`
/// spends ~24 bytes of header per element, so a forged count costing only
/// 4 payload bytes each would amplify a frame ~6x into allocator
/// pressure; the cap bounds that before admission or decoding. Clients
/// chunk far below this ([`crate::WireClient`] uses 64-input chunks).
pub const MAX_BATCH_INPUTS: usize = 1 << 16;

/// Cap on an error response's message, far below where `len as u32` would
/// wrap: an error detail is a diagnostic sentence, not a document, and a
/// server echoing unbounded attacker-influenced text back into frames
/// would hand out payload amplification.
pub const MAX_ERROR_MESSAGE_BYTES: usize = 64 << 10;

/// Serializes an ops-facing JSON payload (reports, tenant lists).
fn encode_json<T: serde::Serialize>(what: &str, value: &T) -> Result<Vec<u8>, WireError> {
    Ok(serde_json::to_string(value)
        .map_err(|e| WireError::Malformed(format!("{what} serialization: {e}")))?
        .into_bytes())
}

/// Deserializes an ops-facing JSON payload with typed errors.
fn decode_json<T: for<'de> serde::Deserialize<'de>>(
    what: &str,
    bytes: &[u8],
) -> Result<T, WireError> {
    serde_json::from_str(
        std::str::from_utf8(bytes)
            .map_err(|_| WireError::Malformed(format!("{what} payload is not UTF-8")))?,
    )
    .map_err(|e| WireError::Malformed(format!("{what} payload: {e}")))
}

/// Encodes a batch of input vectors: `u32` count, then each vector with
/// its own length prefix (members of a composed monitor may disagree on
/// dimension only at the engine, which rejects them with a typed error).
fn encode_inputs(out: &mut Vec<u8>, inputs: &[Vec<f64>]) {
    wirefmt::put_u32(out, inputs.len() as u32);
    for input in inputs {
        wirefmt::put_features(out, input);
    }
}

fn decode_inputs(bytes: &mut &[u8]) -> Result<Vec<Vec<f64>>, WireError> {
    let count = wirefmt::get_u32(bytes)? as usize;
    if count > MAX_BATCH_INPUTS {
        return Err(WireError::Malformed(format!(
            "batch of {count} inputs exceeds the {MAX_BATCH_INPUTS}-input frame cap"
        )));
    }
    // Each vector costs at least its 4-byte length prefix.
    if bytes.len() / 4 < count {
        return Err(WireError::Truncated);
    }
    let mut inputs = Vec::with_capacity(count);
    for _ in 0..count {
        inputs.push(wirefmt::get_features(bytes)?);
    }
    Ok(inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_core::Violation;

    fn round_trip_request(request: Request) {
        let frame = request.clone().into_frame(77).unwrap();
        assert_eq!(frame.request_id, 77);
        assert!(frame.opcode.is_request());
        assert_eq!(Request::decode(&frame).unwrap(), request);
    }

    fn round_trip_response(response: Response) {
        let frame = response.clone().into_frame(78).unwrap();
        assert_eq!(frame.request_id, 78);
        assert!(!frame.opcode.is_request());
        assert_eq!(Response::decode(&frame).unwrap(), response);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Query(vec![1.0, -2.5]));
        round_trip_request(Request::QueryBatch(vec![vec![0.0; 3], vec![9.0; 3]]));
        round_trip_request(Request::Absorb(vec![vec![1.5; 2]]));
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Mount {
            shadow: false,
            artifact_json: "{\"format\":1}".to_string(),
        });
        round_trip_request(Request::Mount {
            shadow: true,
            artifact_json: String::new(),
        });
        round_trip_request(Request::Unmount);
        round_trip_request(Request::Promote);
        round_trip_request(Request::ListTenants);
        round_trip_request(Request::ShadowStats);
        round_trip_request(Request::Metrics);
    }

    #[test]
    fn mount_mode_byte_is_validated() {
        let mut frame = Request::Mount {
            shadow: false,
            artifact_json: "{}".to_string(),
        }
        .into_frame(1)
        .unwrap();
        frame.payload[0] = 7;
        assert!(matches!(
            Request::decode(&frame),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Verdict(Verdict::ok()));
        round_trip_response(Response::Verdicts(vec![
            Verdict::ok(),
            Verdict::warn(vec![Violation::UnknownPattern {
                word: vec![true, false, true],
            }]),
        ]));
        round_trip_response(Response::Absorbed(42));
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Busy {
            in_flight: 64,
            budget: 64,
        });
        round_trip_response(Response::Error {
            code: ErrorCode::Monitor,
            message: "dimension mismatch".to_string(),
        });
        round_trip_response(Response::Mounted);
        round_trip_response(Response::Unmounted(Box::new(ServeReport::aggregate(
            Vec::new(),
        ))));
        let shadow = ShadowReport {
            model_id: "model-a".to_string(),
            active_version: 1,
            shadow_version: 2,
            mirrored: 100,
            dropped: 3,
            agreements: 96,
            warn_only_active: 1,
            warn_only_shadow: 2,
            detail_mismatch: 1,
            shadow_errors: 0,
            absorbed: 4,
            agreement_rate: 0.96,
            mean_active_ns: 1000.0,
            mean_shadow_ns: 1200.0,
            latency_delta_ns: 200.0,
            latency_delta_p50_ns: 150.0,
            latency_delta_p90_ns: 250.0,
            latency_delta_p99_ns: 400.0,
            latency_delta_p999_ns: 900.0,
            active_latency_ns: {
                let mut h = napmon_obs::HistogramSnapshot::new();
                h.record(1000);
                h
            },
            shadow_latency_ns: {
                let mut h = napmon_obs::HistogramSnapshot::new();
                h.record(1200);
                h
            },
        };
        round_trip_response(Response::Promoted(Box::new(shadow.clone())));
        round_trip_response(Response::ShadowReport(Box::new(shadow)));
        round_trip_response(Response::TenantList(vec![TenantInfo {
            model_id: "model-a".to_string(),
            active_version: 1,
            shadow_version: Some(2),
            queue_depth: 5,
        }]));
        round_trip_response(Response::TenantList(Vec::new()));
        let registry = napmon_obs::MetricsRegistry::new();
        registry.counter("wire.requests.query").add(7);
        registry.histogram("serve.latency_ns").record(1234);
        let slow = napmon_obs::SlowLog::new(4, 10);
        slow.observe(99, "Query", 25_000);
        round_trip_response(Response::Metrics(Box::new(ObsReport::capture(
            &registry, &slow,
        ))));
    }

    #[test]
    fn stats_round_trip() {
        let degraded = DegradedStats {
            busy_budget: 3,
            shed_watermark: 1,
            refused_connections: 1,
            evicted_idle: 2,
            evicted_stalled: 1,
            unknown_tenant: 4,
        };
        let snapshot = StatsSnapshot {
            engine: ServeReport::aggregate(Vec::new()),
            engine_queue_depth: 1,
            wire_in_flight: 2,
            wire_budget: 16,
            wire_busy_rejections: degraded.busy_total(),
            degraded,
        };
        assert_eq!(degraded.busy_total(), 5);
        assert_eq!(degraded.evicted_total(), 3);
        round_trip_response(Response::Stats(Box::new(snapshot)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = Request::Stats.into_frame(1).unwrap();
        frame.payload.push(0);
        assert!(matches!(
            Request::decode(&frame),
            Err(WireError::Malformed(_))
        ));
        let mut frame = Response::Absorbed(1).into_frame(1).unwrap();
        frame.payload.push(0);
        assert!(matches!(
            Response::decode(&frame),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn wrong_direction_opcodes_are_rejected() {
        let frame = Response::ShuttingDown.into_frame(1).unwrap();
        assert!(matches!(
            Request::decode(&frame),
            Err(WireError::UnknownOpcode(_))
        ));
        let frame = Request::Shutdown.into_frame(1).unwrap();
        assert!(matches!(
            Response::decode(&frame),
            Err(WireError::UnknownOpcode(_))
        ));
    }

    #[test]
    fn batch_at_the_input_cap_encodes_and_round_trips() {
        let inputs = vec![Vec::new(); MAX_BATCH_INPUTS];
        let frame = Request::QueryBatch(inputs.clone()).into_frame(3).unwrap();
        assert_eq!(
            Request::decode(&frame).unwrap(),
            Request::QueryBatch(inputs)
        );
    }

    #[test]
    fn batch_one_past_the_input_cap_is_too_large() {
        // Before the guard, `inputs.len() as u32` was fine here but the
        // frame was guaranteed to be refused on decode; past u32::MAX the
        // count prefix silently wrapped. Both are now one typed refusal
        // at encode time.
        let inputs = vec![Vec::new(); MAX_BATCH_INPUTS + 1];
        for request in [Request::QueryBatch(inputs.clone()), Request::Absorb(inputs)] {
            let err = request.into_frame(3).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::TooLarge {
                        what: "batch inputs",
                        len,
                        limit,
                    } if len == (MAX_BATCH_INPUTS + 1) as u64 && limit == MAX_BATCH_INPUTS as u64
                ),
                "{err}"
            );
        }
    }

    #[test]
    fn error_message_at_the_cap_encodes_one_past_is_too_large() {
        let at_cap = Response::Error {
            code: ErrorCode::Monitor,
            message: "x".repeat(MAX_ERROR_MESSAGE_BYTES),
        };
        round_trip_response(at_cap);
        let over = Response::Error {
            code: ErrorCode::Monitor,
            message: "x".repeat(MAX_ERROR_MESSAGE_BYTES + 1),
        };
        let err = over.into_frame(4).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::TooLarge {
                    what: "error message bytes",
                    ..
                }
            ),
            "{err}"
        );
    }
}
