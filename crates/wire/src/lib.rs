//! Networked monitoring: the sharded engine behind a TCP boundary.
//!
//! The paper's monitors run *in operation* beside a deployed DNN; after
//! `napmon-serve` they run hot and sharded — but only inside the process
//! that mounted them. This crate is the network boundary that turns the
//! library into a deployable service: a length-prefixed, versioned binary
//! frame protocol (pure `std::net`, no async runtime) carrying the
//! engine's whole serving surface — `Query`, `QueryBatch`, `Absorb`
//! (operation-time monitor enlargement over the wire), `Stats`, and
//! graceful `Shutdown` — plus, since protocol v2, tenant-routed frames
//! and the registry control plane (`Mount`, `Unmount`, `Promote`,
//! `ListTenants`, `ShadowStats`) over a
//! [`MonitorRegistry`](napmon_registry::MonitorRegistry) backend
//! ([`Backend::Registry`]).
//!
//! The server's I/O core is an event-driven reactor (see the
//! [`reactor`]-module topology diagram): one thread owns every
//! connection on nonblocking sockets, so an idle connection costs a
//! buffer rather than an OS thread, and a small fixed worker pool
//! serves the decoded frames. Construction goes through
//! [`WireServer::builder`], which takes either backend.
//!
//! ```text
//! clients (any host)                      monitoring service
//! ┌───────────────┐  framed TCP  ┌─────────────────────────────────┐
//! │ WireClient    │ ───────────► │ WireServer                      │
//! │  query_batch  │   NAPW v2    │  reactor + worker pool          │
//! │  absorb_batch │ ◄─────────── │  global in-flight budget (Busy) │
//! │  stats        │  [routed]    │  MonitorEngine: N shards        │
//! │  mount/promote│              │  — or MonitorRegistry: tenants  │
//! └───────────────┘              └─────────────────────────────────┘
//! ```
//!
//! Design invariants, pinned by this crate's tests:
//!
//! - **No panic on any byte string.** The frame decoder and every payload
//!   decoder are total: arbitrary input yields a value or a typed
//!   [`WireError`] (`tests/frame_props.rs` fuzzes this).
//! - **Backpressure is typed.** Over-budget requests get a `Busy`
//!   response with the budget figures; bytes are never dropped and the
//!   connection stays framed.
//! - **Wire verdicts are bit-identical** to direct
//!   [`MonitorEngine::submit_batch`](napmon_serve::MonitorEngine::submit_batch)
//!   calls on the same engine — the wire encoding of a
//!   [`Verdict`](napmon_core::Verdict) is lossless (`tests/e2e.rs`).
//! - **Shutdown drains.** In-flight requests are served and answered
//!   before the engine's final report (queue depth zero) comes back.
//!
//! # Example
//!
//! ```
//! use napmon_core::{MonitorKind, MonitorSpec};
//! use napmon_nn::{Activation, LayerSpec, Network};
//! use napmon_serve::{EngineConfig, MonitorEngine};
//! use napmon_wire::{WireClient, WireConfig, WireServer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = Network::seeded(7, 4, &[
//!     LayerSpec::dense(8, Activation::Relu),
//!     LayerSpec::dense(2, Activation::Identity),
//! ]);
//! let train: Vec<Vec<f64>> = (0..32)
//!     .map(|i| (0..4).map(|j| ((i + j) % 8) as f64 / 8.0).collect())
//!     .collect();
//! let spec = MonitorSpec::new(2, MonitorKind::pattern());
//! let monitor = spec.build(&net, &train)?;
//!
//! let engine = MonitorEngine::new(net, monitor, EngineConfig::with_shards(2));
//! let server = WireServer::builder(engine)
//!     .config(WireConfig::default())
//!     .bind("127.0.0.1:0")?;
//!
//! let mut client = WireClient::connect(server.local_addr())?;
//! let verdicts = client.query_batch(&train)?;
//! assert!(verdicts.iter().all(|v| !v.warning));
//! client.shutdown_server()?;
//! let report = server.wait();
//! assert_eq!(report.queue_depth, 0);
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod codec;
pub mod error;
pub mod frame;
mod poll;
pub mod reactor;
pub mod server;

pub use client::{ClientConfig, RetryPolicy, WireClient};
pub use codec::{
    DegradedStats, Request, Response, StatsSnapshot, MAX_BATCH_INPUTS, MAX_ERROR_MESSAGE_BYTES,
};
pub use error::{ErrorCode, WireError};
pub use frame::{
    valid_tenant_id, Frame, FrameHeader, Opcode, TenantRoute, ACTIVE_VERSION, DEFAULT_MAX_PAYLOAD,
    FLAG_ROUTED, FLAG_TRACED, HEADER_LEN, KNOWN_FLAGS, LEGACY_WIRE_PROTOCOL_VERSION, MAGIC,
    SUPPORTED_WIRE_PROTOCOL_VERSIONS, TENANT_ID_MAX_BYTES, WIRE_PROTOCOL_VERSION,
};
pub use server::{Backend, WireConfig, WireServer, WireServerBuilder, SLOW_LOG_CAPACITY};
