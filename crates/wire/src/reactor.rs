//! The readiness-loop I/O core: one reactor thread owns every
//! connection on nonblocking sockets, and a small fixed worker pool
//! serves the decoded frames.
//!
//! ```text
//!                    ┌──────────────────────────────┐
//!   accept ──────────▶          reactor             │
//!   conn 0 ──▶ inbuf ─▶ frame state machine ─┐      │
//!   conn 1 ──▶ inbuf ─▶ frame state machine ─┤ jobs │──▶ worker pool
//!   conn N ──▶ inbuf ─▶ frame state machine ─┘      │    (serve_frame)
//!          ◀── outbuf ◀── completions ◀── wake pipe ◀──── responses
//!                    └──────────────────────────────┘
//! ```
//!
//! The reactor never blocks on a peer: reads accumulate into a
//! per-connection buffer that a frame-reassembly state machine consumes
//! (incremental header, then payload), and writes drain a per-connection
//! outbound queue with partial-write resumption. Decoded frames are
//! dispatched to the worker pool **one batch per connection at a time**,
//! which preserves the protocol's ordering contract: responses on a
//! connection come back in the order its requests arrived. Workers post
//! encoded responses to a completion queue and nudge the reactor through
//! a wake pipe, so response latency is not quantized by the poll tick.
//!
//! Deadlines — idle eviction, the slow-loris frame deadline, write
//! stalls, the error-path read-drain, and the shutdown drain grace — all
//! live on one hashed timer wheel: each connection keeps a generation
//! counter so a superseded deadline is cancelled lazily when its stale
//! wheel entry pops.

use crate::codec::Response;
use crate::error::WireError;
use crate::frame::{Frame, FrameHeader, Opcode, HEADER_LEN, MAGIC};
use crate::poll::{self, PollFd, POLLIN, POLLOUT};
use crate::server::{Shared, WireConfig};
use napmon_obs::SpanKind;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Frames a connection may hold parsed-but-undispatched before the
/// reactor stops reading from it (per-peer pipelining bound; the
/// byte-level bound is [`WireConfig::write_high_water`]).
const PENDING_CAP: usize = 128;

/// Read syscalls per connection per tick — a firehose peer yields the
/// loop to its neighbors and picks up next tick (the readiness report is
/// level-triggered, so nothing is lost).
const MAX_READS_PER_TICK: usize = 8;

/// How long the error path keeps a half-closed connection open to drain
/// the peer's already-sent bytes, so the typed error frame survives
/// instead of being torn down by a reset.
const ERROR_DRAIN_LINGER: Duration = Duration::from_secs(1);

/// One frame's worth of work travelling to the worker pool.
pub(crate) enum JobKind {
    /// A well-formed frame to serve against the backend.
    Serve(Frame),
    /// A frame that completed on the wire but failed assembly (bad route
    /// or trace block): the stream stays aligned, so the typed error
    /// rides the ordered response pipeline like any other reply.
    Reject(Response),
}

pub(crate) struct JobItem {
    pub(crate) kind: JobKind,
    pub(crate) request_id: u64,
    /// Request opcode, for the per-opcode slow-log naming.
    pub(crate) opcode: Opcode,
    pub(crate) trace_id: u64,
    pub(crate) echo_trace: Option<u64>,
    /// Obs clock at header completion — the start of the end-to-end
    /// latency measurement.
    pub(crate) decode_started: u64,
}

/// A batch of consecutive frames from one connection. At most one job
/// per connection is ever in flight, so workers may serve items serially
/// and concatenate the replies.
pub(crate) struct Job {
    pub(crate) conn: u64,
    pub(crate) items: Vec<JobItem>,
}

/// What a worker hands back: the encoded reply bytes for the job's
/// items, in order.
pub(crate) struct Completion {
    pub(crate) conn: u64,
    pub(crate) bytes: Vec<u8>,
    /// Close the connection once `bytes` flush (a response failed to
    /// encode, or the job carried a `Shutdown` request).
    pub(crate) close: bool,
    /// The job asked the server to shut down.
    pub(crate) initiated_shutdown: bool,
}

/// The worker → reactor return path: a locked queue plus a wake pipe so
/// a completion interrupts the reactor's poll instead of waiting out the
/// tick.
pub(crate) struct CompletionQueue {
    items: Mutex<Vec<Completion>>,
    wake: UnixStream,
}

impl CompletionQueue {
    /// Builds the queue and the reactor-side wake receiver.
    pub(crate) fn new() -> std::io::Result<(Arc<Self>, UnixStream)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((
            Arc::new(Self {
                items: Mutex::new(Vec::new()),
                wake: tx,
            }),
            rx,
        ))
    }

    pub(crate) fn post(&self, completion: Completion) {
        self.items
            .lock()
            .expect("completion queue poisoned")
            .push(completion);
        // A full pipe means wake bytes are already pending — the reactor
        // will drain the queue on that wake; dropping this byte is fine.
        let _ = (&self.wake).write(&[1]);
    }

    fn drain_into(&self, out: &mut Vec<Completion>) {
        let mut items = self.items.lock().expect("completion queue poisoned");
        out.append(&mut items);
    }
}

/// Timer wheel slot count. Power of two so the modulo is cheap; the
/// width of one lap is `slots × slot_width`, and deadlines beyond a lap
/// cascade by re-queueing when their slot comes around early.
const WHEEL_SLOTS: u64 = 64;

struct TimerEntry {
    deadline: Instant,
    conn: u64,
    gen: u64,
}

/// A hashed timer wheel: entries land in `deadline_tick % WHEEL_SLOTS`,
/// and advancing the cursor drains passed slots — popping entries whose
/// deadline arrived and re-queueing the future laps. Cancellation is
/// lazy: the connection's generation counter invalidates stale entries.
struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    slot_width: Duration,
    epoch: Instant,
    cursor_tick: u64,
}

impl TimerWheel {
    fn new(slot_width: Duration, now: Instant) -> Self {
        Self {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            slot_width: slot_width.max(Duration::from_millis(1)),
            epoch: now,
            cursor_tick: 0,
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        (t.saturating_duration_since(self.epoch).as_nanos() / self.slot_width.as_nanos().max(1))
            as u64
    }

    fn schedule(&mut self, deadline: Instant, conn: u64, gen: u64) {
        // Never into the cursor's own slot: an already-due deadline pops
        // on the next advance instead of waiting a whole lap.
        let tick = self.tick_of(deadline).max(self.cursor_tick + 1);
        let slot = (tick % WHEEL_SLOTS) as usize;
        self.slots[slot].push(TimerEntry {
            deadline,
            conn,
            gen,
        });
    }

    /// Advances to `now`, pushing `(conn, gen)` for every entry whose
    /// deadline has passed.
    fn advance(&mut self, now: Instant, expired: &mut Vec<(u64, u64)>) {
        let target = self.tick_of(now);
        if target <= self.cursor_tick {
            return;
        }
        // A jump past a full lap visits every slot exactly once.
        let steps = (target - self.cursor_tick).min(WHEEL_SLOTS);
        let mut requeue = Vec::new();
        for step in 1..=steps {
            let slot = ((self.cursor_tick + step) % WHEEL_SLOTS) as usize;
            for entry in self.slots[slot].drain(..) {
                if entry.deadline <= now {
                    expired.push((entry.conn, entry.gen));
                } else {
                    requeue.push(entry);
                }
            }
        }
        self.cursor_tick = target;
        for entry in requeue {
            self.schedule(entry.deadline, entry.conn, entry.gen);
        }
    }
}

/// Connection lifecycle. `Serving` runs the frame state machine;
/// `Closing` has its final bytes queued (typed error, eviction notice,
/// refusal, or a post-`Shutdown` reply) and half-closes once they flush.
enum ConnState {
    Serving,
    /// `drain_reads` keeps the socket open after the half-close,
    /// discarding the peer's in-flight bytes until EOF or the linger
    /// deadline — closing with unread bytes would reset the connection
    /// and could destroy the error frame before the peer reads it.
    Closing {
        drain_reads: bool,
    },
}

/// Why a connection is being evicted; selects the counter and the typed
/// message (both part of the degradation contract).
pub(crate) enum EvictKind {
    Idle,
    Stalled,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Inbound accumulation: bytes in, frames out.
    inbuf: Vec<u8>,
    /// Header already validated for the frame being accumulated.
    header: Option<FrameHeader>,
    /// Obs clock when `header` completed.
    decode_started: u64,
    /// Outbound queue with partial-write resumption (`outpos` is the
    /// flushed prefix).
    outbuf: Vec<u8>,
    outpos: usize,
    /// A job for this connection is at the workers.
    inflight: bool,
    /// Parsed frames waiting for the in-flight job to return.
    pending: Vec<JobItem>,
    /// Peer half-closed its write side.
    read_closed: bool,
    /// We half-closed our write side.
    half_closed: bool,
    /// An unframed-stream error waiting for the response pipeline to
    /// drain before it is emitted (ordering: replies first, then the
    /// error, then the close).
    poisoned: Option<Vec<u8>>,
    last_read: Instant,
    last_write: Instant,
    last_activity: Instant,
    drain_deadline: Option<Instant>,
    close_deadline: Option<Instant>,
    /// Timer generation; stale wheel entries carry an older value.
    gen: u64,
}

impl Conn {
    fn new(stream: TcpStream, state: ConnState, now: Instant) -> Self {
        Self {
            stream,
            state,
            inbuf: Vec::new(),
            header: None,
            decode_started: 0,
            outbuf: Vec::new(),
            outpos: 0,
            inflight: false,
            pending: Vec::new(),
            read_closed: false,
            half_closed: false,
            poisoned: None,
            last_read: now,
            last_write: now,
            last_activity: now,
            drain_deadline: None,
            close_deadline: None,
            gen: 0,
        }
    }

    fn unflushed(&self) -> usize {
        self.outbuf.len() - self.outpos
    }

    /// A frame has started but not finished on the inbound side.
    fn mid_frame(&self) -> bool {
        self.header.is_some() || !self.inbuf.is_empty()
    }

    /// Nothing started, nothing owed: the state idle eviction and the
    /// drain guarantee are defined over.
    fn quiescent(&self) -> bool {
        !self.mid_frame()
            && !self.inflight
            && self.pending.is_empty()
            && self.outbuf.is_empty()
            && self.poisoned.is_none()
    }

    /// Backpressure gate: stop reading while the peer owes us drains.
    fn paused(&self, config: &WireConfig) -> bool {
        self.pending.len() >= PENDING_CAP || self.unflushed() >= config.write_high_water
    }

    fn wants_read(&self, config: &WireConfig) -> bool {
        match self.state {
            ConnState::Serving => {
                !self.read_closed && self.poisoned.is_none() && !self.paused(config)
            }
            ConnState::Closing { drain_reads } => drain_reads,
        }
    }

    /// The earliest deadline the timer wheel must fire for, given the
    /// current state; `None` when only external events can matter.
    fn next_deadline(&self, config: &WireConfig, draining: bool) -> Option<Instant> {
        match self.state {
            ConnState::Closing { .. } => self.close_deadline,
            ConnState::Serving => {
                let mut next = self.drain_deadline;
                if !self.outbuf.is_empty() {
                    next = min_deadline(next, self.last_write.checked_add(config.frame_deadline));
                }
                if !draining {
                    if self.mid_frame() {
                        next =
                            min_deadline(next, self.last_read.checked_add(config.frame_deadline));
                    } else if self.quiescent() && !self.read_closed {
                        next =
                            min_deadline(next, self.last_activity.checked_add(config.idle_timeout));
                    }
                }
                next
            }
        }
    }
}

fn min_deadline(a: Option<Instant>, b: Option<Instant>) -> Option<Instant> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (x, None) | (None, x) => x,
    }
}

/// What one connection's I/O handler decided.
enum Io {
    Live,
    Close,
}

pub(crate) struct Reactor {
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    jobs: Sender<Job>,
    completions: Arc<CompletionQueue>,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    wheel: TimerWheel,
    drain_started: bool,
    /// Whether this tick moved any bytes or jobs — feeds the adaptive
    /// backoff on platforms where readiness is speculative.
    progressed: bool,
}

impl Reactor {
    pub(crate) fn new(
        listener: TcpListener,
        shared: Arc<Shared>,
        jobs: Sender<Job>,
        completions: Arc<CompletionQueue>,
        wake_rx: UnixStream,
    ) -> Self {
        let now = Instant::now();
        let tick = shared.config.poll_tick;
        Self {
            listener: Some(listener),
            shared,
            jobs,
            completions,
            wake_rx,
            conns: HashMap::new(),
            next_id: 0,
            wheel: TimerWheel::new(tick, now),
            drain_started: false,
            progressed: false,
        }
    }

    /// The event loop. Returns once a shutdown has been observed and
    /// every connection is gone; dropping `self` then hangs up the job
    /// channel, which is the workers' exit signal.
    pub(crate) fn run(mut self) {
        let tick = self.shared.config.poll_tick;
        let mut fds: Vec<PollFd> = Vec::new();
        let mut tokens: Vec<Token> = Vec::new();
        let mut scratch = vec![0u8; 64 * 1024];
        let mut completions: Vec<Completion> = Vec::new();
        let mut expired: Vec<(u64, u64)> = Vec::new();
        let mut backoff = Duration::from_micros(200);
        loop {
            if self.shared.shutting_down() && !self.drain_started {
                self.begin_drain();
            }
            if self.drain_started && self.conns.is_empty() {
                return;
            }

            fds.clear();
            tokens.clear();
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            tokens.push(Token::Wake);
            if let Some(listener) = &self.listener {
                fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
                tokens.push(Token::Listener);
            }
            for (&id, conn) in &self.conns {
                let mut events = 0;
                if conn.wants_read(&self.shared.config) {
                    events |= POLLIN;
                }
                if !conn.outbuf.is_empty() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                tokens.push(Token::Conn(id));
            }

            // On Linux `poll` blocks until real readiness; elsewhere the
            // shim speculates, so the timeout doubles as backoff.
            let timeout = if cfg!(target_os = "linux") {
                tick
            } else {
                backoff
            };
            self.progressed = false;
            let _ = poll::wait(&mut fds, timeout);
            let now = Instant::now();

            // Completions first: they free dispatch slots and queue
            // response bytes ahead of this tick's write pass.
            if fds[0].readable() {
                while let Ok(n) = self.wake_rx.read(&mut scratch) {
                    if n == 0 || n < scratch.len() {
                        break;
                    }
                }
            }
            self.completions.drain_into(&mut completions);
            for completion in completions.drain(..) {
                self.on_completion(completion, now);
            }

            for (i, fd) in fds.iter().enumerate() {
                match tokens[i] {
                    Token::Wake => {}
                    Token::Listener => {
                        if fd.readable() {
                            self.accept_ready(now);
                        }
                    }
                    Token::Conn(id) => {
                        if fd.readable() {
                            self.on_readable(id, now, &mut scratch);
                        }
                        if fd.writable() {
                            self.flush(id, now);
                        }
                    }
                }
            }

            self.wheel.advance(now, &mut expired);
            for (id, gen) in expired.drain(..) {
                if self.conns.get(&id).is_some_and(|c| c.gen == gen) {
                    self.check_deadlines(id, now);
                }
            }
            // During a drain the population only shrinks; a sweep per
            // tick guarantees the grace bound even if a wheel entry was
            // lost, so `drain()` can never hang on a forgotten timer.
            if self.drain_started {
                let ids: Vec<u64> = self.conns.keys().copied().collect();
                for id in ids {
                    self.check_deadlines(id, now);
                }
            }

            backoff = if self.progressed {
                Duration::from_micros(200)
            } else {
                (backoff * 2).min(tick)
            };
        }
    }

    /// Shutdown observed: stop accepting and stamp every connection's
    /// drain grace. Idle connections close now (EOF is their typed
    /// signal); connections with work started get to finish it.
    fn begin_drain(&mut self) {
        self.drain_started = true;
        self.listener = None;
        let now = Instant::now();
        let grace = self.shared.config.drain_grace;
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            conn.drain_deadline = now.checked_add(grace);
            if matches!(conn.state, ConnState::Serving) && conn.quiescent() {
                self.close(id);
            } else {
                self.rearm(id, now);
            }
        }
    }

    fn serving_count(&self) -> usize {
        self.conns
            .values()
            .filter(|c| matches!(c.state, ConnState::Serving))
            .count()
    }

    fn accept_ready(&mut self, now: Instant) {
        for _ in 0..self.shared.config.max_events_per_tick {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.progressed = true;
                    self.admit_or_refuse(stream, now);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                // A failed accept (fd pressure, transient network error)
                // affects that one attempt, not the server.
                Err(_) => return,
            }
        }
    }

    fn admit_or_refuse(&mut self, stream: TcpStream, now: Instant) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let id = self.next_id;
        self.next_id += 1;
        let serving = self.serving_count();
        let cap = self.shared.config.max_connections;
        if serving >= cap {
            // Refusal at accept time: one typed Busy frame through the
            // nonblocking write path, counted exactly once, then the
            // polite hangup (flush → half-close → read-drain).
            self.shared.degraded.refused_connections.inc();
            let refusal = Response::Busy {
                in_flight: serving.min(u32::MAX as usize) as u32,
                budget: cap.min(u32::MAX as usize) as u32,
            };
            let mut conn = Conn::new(stream, ConnState::Closing { drain_reads: true }, now);
            match refusal.into_frame(0).and_then(|f| f.encode()) {
                Ok(bytes) => conn.outbuf = bytes,
                Err(_) => return, // unencodable refusal: plain close
            }
            conn.close_deadline = now.checked_add(ERROR_DRAIN_LINGER);
            self.conns.insert(id, conn);
        } else {
            let mut conn = Conn::new(stream, ConnState::Serving, now);
            if self.drain_started {
                // Raced the shutdown flag through the accept queue.
                conn.drain_deadline = now.checked_add(self.shared.config.drain_grace);
            }
            self.conns.insert(id, conn);
        }
        self.flush(id, now);
    }

    fn on_readable(&mut self, id: u64, now: Instant, scratch: &mut [u8]) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let io = match conn.state {
            ConnState::Closing { drain_reads: true } => loop {
                match conn.stream.read(scratch) {
                    Ok(0) => break Io::Close,
                    Ok(_) => self.progressed = true, // discard: draining
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break Io::Live,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => break Io::Close,
                }
            },
            ConnState::Closing { drain_reads: false } => Io::Live,
            ConnState::Serving => {
                let mut reads = 0;
                loop {
                    if conn.read_closed
                        || conn.poisoned.is_some()
                        || conn.paused(&self.shared.config)
                        || reads >= MAX_READS_PER_TICK
                    {
                        break Io::Live;
                    }
                    match conn.stream.read(scratch) {
                        Ok(0) => {
                            conn.read_closed = true;
                            conn.last_activity = now;
                            break Io::Live;
                        }
                        Ok(n) => {
                            reads += 1;
                            self.progressed = true;
                            conn.inbuf.extend_from_slice(&scratch[..n]);
                            conn.last_read = now;
                            conn.last_activity = now;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break Io::Live,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        // The transport failed under us; there is no
                        // deliverable reply, so the close is silent.
                        Err(_) => break Io::Close,
                    }
                }
            }
        };
        match io {
            Io::Close => self.close(id),
            Io::Live => self.pump(id, now),
        }
    }

    /// Runs a connection's frame state machine to quiescence: parse
    /// whatever frames the inbound buffer holds, dispatch one job if the
    /// slot is free, flush the outbound queue, and settle the lifecycle.
    fn pump(&mut self, id: u64, now: Instant) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if !matches!(conn.state, ConnState::Serving)
                || conn.poisoned.is_some()
                || conn.pending.len() >= PENDING_CAP
            {
                break;
            }
            if conn.header.is_none() {
                if conn.inbuf.len() < HEADER_LEN {
                    // EOF mid-header is a truncation the peer should
                    // hear about; mid-payload (below) has no readable
                    // peer state to correlate an answer to.
                    if conn.read_closed && !conn.inbuf.is_empty() {
                        self.poison(id, 0, &WireError::Truncated, now);
                        return;
                    }
                    break;
                }
                let header: [u8; HEADER_LEN] =
                    conn.inbuf[..HEADER_LEN].try_into().expect("length checked");
                match Frame::decode_header(&header, self.shared.config.max_payload) {
                    Ok(parsed) => {
                        conn.header = Some(parsed);
                        conn.decode_started = napmon_obs::now_ns();
                    }
                    Err(e) => {
                        // The stream is unframed from here. The request
                        // id at its fixed offset still correlates the
                        // error — unless the magic itself is wrong, in
                        // which case the offset means nothing.
                        let raw_id = if header[0..4] == MAGIC {
                            u64::from_le_bytes(header[8..16].try_into().expect("fixed slice"))
                        } else {
                            0
                        };
                        self.poison(id, raw_id, &e, now);
                        return;
                    }
                }
            }
            let header = conn.header.expect("just parsed");
            let total = HEADER_LEN + header.payload_len as usize;
            if conn.inbuf.len() < total {
                if conn.read_closed {
                    // Peer died mid-payload; nothing to answer.
                    self.close(id);
                    return;
                }
                break;
            }
            let payload = conn.inbuf[HEADER_LEN..total].to_vec();
            conn.inbuf.drain(..total);
            conn.header = None;
            let item = match Frame::assemble(header, payload) {
                Ok(frame) => {
                    // The request's trace id: carried by the client, or
                    // minted here when tracing is armed and the frame
                    // came untraced — the wire server is where ids are
                    // born.
                    let trace_id = match frame.trace_id {
                        Some(id) => id,
                        None if napmon_obs::tracing_enabled() => napmon_obs::mint_trace_id(),
                        None => 0,
                    };
                    let echo_trace = (trace_id != 0).then_some(trace_id);
                    if trace_id != 0 && napmon_obs::tracing_enabled() {
                        napmon_obs::record_span(
                            trace_id,
                            SpanKind::WireDecode,
                            conn.decode_started,
                            napmon_obs::now_ns().saturating_sub(conn.decode_started),
                            frame.opcode as u8 as u64,
                        );
                    }
                    JobItem {
                        request_id: header.request_id,
                        opcode: frame.opcode,
                        trace_id,
                        echo_trace,
                        decode_started: conn.decode_started,
                        kind: JobKind::Serve(frame),
                    }
                }
                // A frame whose trace/route block fails to decode is
                // still a *complete* frame — the stream stays aligned —
                // so the error is a typed response and the connection
                // lives on, ordered behind the replies it is owed.
                Err(e) => JobItem {
                    kind: JobKind::Reject(Response::Error {
                        code: e.as_code(),
                        message: e.to_string(),
                    }),
                    request_id: header.request_id,
                    opcode: header.opcode,
                    trace_id: 0,
                    echo_trace: None,
                    decode_started: conn.decode_started,
                },
            };
            conn.pending.push(item);
            conn.last_activity = now;
        }

        if let Some(conn) = self.conns.get_mut(&id) {
            if !conn.inflight && !conn.pending.is_empty() {
                let items = std::mem::take(&mut conn.pending);
                conn.inflight = true;
                conn.last_activity = now;
                self.progressed = true;
                if self.jobs.send(Job { conn: id, items }).is_err() {
                    // Workers are gone; only reachable mid-teardown.
                    self.close(id);
                    return;
                }
            }
        }
        self.flush(id, now);
    }

    /// Drains the outbound queue as far as the socket allows, then
    /// settles the connection's lifecycle and re-arms its timer.
    fn flush(&mut self, id: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        while conn.outpos < conn.outbuf.len() {
            match conn.stream.write(&conn.outbuf[conn.outpos..]) {
                Ok(0) => {
                    self.close(id);
                    return;
                }
                Ok(n) => {
                    conn.outpos += n;
                    conn.last_write = now;
                    conn.last_activity = now;
                    self.progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                // A disconnected client: the work is done (the engine
                // served it); only the reply is lost.
                Err(_) => {
                    self.close(id);
                    return;
                }
            }
        }
        if conn.outpos == conn.outbuf.len() && !conn.outbuf.is_empty() {
            conn.outbuf.clear();
            conn.outpos = 0;
        }
        self.settle(id, now);
    }

    /// Lifecycle decisions after any I/O or completion: emit a deferred
    /// error once the pipeline drains, half-close flushed `Closing`
    /// connections, close what is finished, re-arm the timer.
    fn settle(&mut self, id: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        // A poisoned stream waits for the replies it owes, then speaks
        // its typed error and starts the polite hangup.
        if conn.poisoned.is_some() && !conn.inflight && conn.pending.is_empty() {
            let bytes = conn.poisoned.take().expect("just checked");
            conn.outbuf.extend_from_slice(&bytes);
            conn.state = ConnState::Closing { drain_reads: true };
            conn.close_deadline = now.checked_add(ERROR_DRAIN_LINGER);
            conn.inbuf.clear();
            conn.header = None;
            self.flush(id, now);
            return;
        }
        let flushed = conn.outbuf.is_empty();
        match conn.state {
            ConnState::Closing { drain_reads } => {
                if flushed && !conn.half_closed {
                    conn.half_closed = true;
                    let _ = conn.stream.shutdown(Shutdown::Write);
                    if !drain_reads || conn.read_closed {
                        self.close(id);
                        return;
                    }
                }
            }
            ConnState::Serving => {
                // Peer hung up and nothing is owed in either direction.
                if conn.read_closed && flushed && !conn.inflight && conn.pending.is_empty() {
                    self.close(id);
                    return;
                }
                if self.drain_started && conn.quiescent() {
                    self.close(id);
                    return;
                }
            }
        }
        self.rearm(id, now);
    }

    fn on_completion(&mut self, completion: Completion, now: Instant) {
        if completion.initiated_shutdown {
            self.shared.shutting_down.store(true, Ordering::Release);
        }
        let Some(conn) = self.conns.get_mut(&completion.conn) else {
            return; // connection died; the unsendable reply is dropped
        };
        self.progressed = true;
        conn.inflight = false;
        conn.last_activity = now;
        conn.outbuf.extend_from_slice(&completion.bytes);
        if completion.close {
            // A `Shutdown` reply (or an unencodable response): flush
            // what is queued, then hang up — matching the pre-reactor
            // behavior of closing right after the shutdown respond.
            conn.state = ConnState::Closing { drain_reads: false };
            conn.close_deadline = now.checked_add(self.shared.config.frame_deadline);
            conn.pending.clear();
            conn.inbuf.clear();
            conn.header = None;
            conn.poisoned = None;
        }
        self.pump(completion.conn, now);
    }

    /// Marks the stream unframed: remembers the encoded typed error and
    /// stops parsing. [`Reactor::settle`] emits it once the replies
    /// already owed have gone out.
    fn poison(&mut self, id: u64, request_id: u64, e: &WireError, now: Instant) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let response = Response::Error {
            code: e.as_code(),
            message: e.to_string(),
        };
        match response.into_frame(request_id).and_then(|f| f.encode()) {
            Ok(bytes) => conn.poisoned = Some(bytes),
            Err(_) => {
                self.close(id);
                return;
            }
        }
        self.settle(id, now);
    }

    /// Evicts a connection that broke a liveness deadline: count it,
    /// tell the peer why with a typed `Evicted` error frame, and hang up
    /// once it flushes.
    fn evict(&mut self, id: u64, kind: &EvictKind, now: Instant) {
        let (counter, message) = match kind {
            EvictKind::Idle => (
                &self.shared.degraded.evicted_idle,
                "connection idle past the deadline; reconnect to continue",
            ),
            EvictKind::Stalled => (
                &self.shared.degraded.evicted_stalled,
                "frame stalled past the deadline; reconnect to continue",
            ),
        };
        counter.inc();
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        // A mid-payload stall has a validated header, so the eviction
        // correlates to the started request; mid-header or idle it
        // cannot.
        let request_id = conn.header.map_or(0, |h| h.request_id);
        let response = Response::Error {
            code: crate::ErrorCode::Evicted,
            message: message.to_string(),
        };
        match response.into_frame(request_id).and_then(|f| f.encode()) {
            Ok(bytes) => conn.outbuf.extend_from_slice(&bytes),
            Err(_) => {
                self.close(id);
                return;
            }
        }
        conn.state = ConnState::Closing { drain_reads: false };
        conn.close_deadline = now.checked_add(self.shared.config.frame_deadline);
        conn.pending.clear();
        conn.inbuf.clear();
        conn.header = None;
        self.flush(id, now);
    }

    /// Acts on whichever deadline actually expired (state may have moved
    /// since the wheel entry was armed), then re-arms.
    fn check_deadlines(&mut self, id: u64, now: Instant) {
        let config = self.shared.config;
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        match conn.state {
            ConnState::Closing { .. } => {
                if conn.close_deadline.is_some_and(|d| now >= d) {
                    self.close(id);
                } else {
                    self.rearm(id, now);
                }
            }
            ConnState::Serving => {
                if conn.drain_deadline.is_some_and(|d| now >= d) {
                    // Grace spent: close instead of serving new work.
                    // The peer reads EOF and gets a typed transport
                    // error client-side.
                    self.close(id);
                    return;
                }
                let write_stalled = !conn.outbuf.is_empty()
                    && conn
                        .last_write
                        .checked_add(config.frame_deadline)
                        .is_some_and(|d| now >= d);
                if write_stalled {
                    // The peer stopped draining its responses — that is
                    // an eviction, and it is accounted as one, but there
                    // is no point queueing a frame behind a write queue
                    // that is already stuck.
                    self.shared.degraded.evicted_stalled.inc();
                    self.close(id);
                    return;
                }
                if self.drain_started {
                    self.rearm(id, now);
                    return;
                }
                let read_stalled = conn.mid_frame()
                    && !conn.inflight
                    && conn.pending.is_empty()
                    && conn
                        .last_read
                        .checked_add(config.frame_deadline)
                        .is_some_and(|d| now >= d);
                if read_stalled {
                    self.evict(id, &EvictKind::Stalled, now);
                    return;
                }
                let idle = conn.quiescent()
                    && !conn.read_closed
                    && conn
                        .last_activity
                        .checked_add(config.idle_timeout)
                        .is_some_and(|d| now >= d);
                if idle {
                    self.evict(id, &EvictKind::Idle, now);
                    return;
                }
                self.rearm(id, now);
            }
        }
    }

    fn rearm(&mut self, id: u64, _now: Instant) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        conn.gen += 1;
        if let Some(deadline) = conn.next_deadline(&self.shared.config, self.drain_started) {
            self.wheel.schedule(deadline, id, conn.gen);
        }
    }

    fn close(&mut self, id: u64) {
        self.conns.remove(&id);
    }
}

enum Token {
    Wake,
    Listener,
    Conn(u64),
}
