//! Property tests: the frame and payload decoders are *total*.
//!
//! A network peer controls every byte a server reads, so the decoding
//! pipeline must map **any** byte string to either a value or a typed
//! [`WireError`] — never a panic, never an out-of-bounds read, never an
//! attacker-sized allocation. These properties feed arbitrary bytes (and
//! adversarially mutated valid frames, which get past the header checks
//! and stress the payload decoders) through every decoding entry point.

use napmon_core::wirefmt;
use napmon_wire::{
    Frame, Opcode, Request, Response, TenantRoute, WireError, DEFAULT_MAX_PAYLOAD, HEADER_LEN,
    LEGACY_WIRE_PROTOCOL_VERSION, WIRE_PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// A tight payload cap so forged-length checks are reachable from small
/// generated inputs.
const SMALL_MAX_PAYLOAD: u32 = 1 << 16;

/// Every opcode, for building valid-header frames around arbitrary
/// payloads.
const OPCODES: [Opcode; 24] = [
    Opcode::Query,
    Opcode::QueryBatch,
    Opcode::Absorb,
    Opcode::Stats,
    Opcode::Shutdown,
    Opcode::Mount,
    Opcode::Unmount,
    Opcode::Promote,
    Opcode::ListTenants,
    Opcode::ShadowStats,
    Opcode::Metrics,
    Opcode::Verdict,
    Opcode::Verdicts,
    Opcode::Absorbed,
    Opcode::StatsReport,
    Opcode::ShuttingDown,
    Opcode::Mounted,
    Opcode::Unmounted,
    Opcode::Promoted,
    Opcode::TenantList,
    Opcode::ShadowReport,
    Opcode::MetricsReport,
    Opcode::Busy,
    Opcode::Error,
];

/// A valid tenant id derived deterministically from integer draws: first
/// byte alphanumeric, the rest from the id charset, 1..=64 bytes.
fn tenant_id_from(seed: u64, len: usize) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
    let mut state = seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut id = String::new();
    id.push(FIRST[next() % FIRST.len()] as char);
    for _ in 1..len.clamp(1, 64) {
        id.push(REST[next() % REST.len()] as char);
    }
    id
}

/// Decoding must not read past the end, allocate per forged counts, or
/// panic; on success it must consume within bounds.
fn check_frame_decode(bytes: &[u8], max_payload: u32) {
    match Frame::decode(bytes, max_payload) {
        Ok((frame, consumed)) => {
            assert!(consumed <= bytes.len());
            let trace_len = if frame.trace_id.is_some() { 8 } else { 0 };
            let route_len = frame.route.as_ref().map_or(0, TenantRoute::encoded_len);
            assert_eq!(
                consumed,
                HEADER_LEN + trace_len + route_len + frame.payload.len()
            );
            // A decoded frame re-encodes to exactly the bytes consumed.
            assert_eq!(frame.encode().unwrap(), bytes[..consumed]);
            // The payload decoders are total too, whatever the opcode.
            let _ = Request::decode(&frame);
            let _ = Response::decode(&frame);
        }
        Err(e) => drop(e), // typed failure is the other legal outcome
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte strings: most fail the magic check, some get deeper.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(0u8..=255, 0..96)) {
        check_frame_decode(&bytes, DEFAULT_MAX_PAYLOAD);
        check_frame_decode(&bytes, SMALL_MAX_PAYLOAD);
    }

    /// Byte strings opening with the protocol magic: these exercise the
    /// version/opcode/reserved/length checks rather than dying at byte 0.
    #[test]
    fn magic_prefixed_bytes_never_panic(tail in collection::vec(0u8..=255, 0..96)) {
        let mut bytes = napmon_wire::MAGIC.to_vec();
        bytes.extend_from_slice(&tail);
        check_frame_decode(&bytes, SMALL_MAX_PAYLOAD);
    }

    /// Structurally valid frames around arbitrary payload bytes: the
    /// header decodes clean, so the payload decoders see every input.
    #[test]
    fn valid_frames_with_arbitrary_payloads_never_panic(
        opcode_index in 0usize..24,
        request_id in 0u64..u64::MAX,
        trace_id in proptest::option::of(0u64..u64::MAX),
        payload in collection::vec(0u8..=255, 0..80),
    ) {
        let frame = Frame {
            opcode: OPCODES[opcode_index],
            request_id,
            trace_id,
            route: None,
            payload,
        };
        let bytes = frame.encode().unwrap();
        let (decoded, consumed) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD)
            .expect("a well-formed frame must decode");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(&decoded, &frame);
        let _ = Request::decode(&decoded);
        let _ = Response::decode(&decoded);
        // Every strict prefix is a typed Truncated, nothing else.
        for cut in [0, 1, HEADER_LEN.min(bytes.len() - 1), bytes.len() - 1] {
            prop_assert!(matches!(
                Frame::decode(&bytes[..cut], DEFAULT_MAX_PAYLOAD),
                Err(WireError::Truncated)
            ));
        }
    }

    /// Mutating one byte of a valid frame yields a frame or a typed
    /// error — and the verdict payload decoder in particular stays total
    /// under corruption of a real verdict encoding.
    #[test]
    fn mutated_verdict_payloads_never_panic(
        flip_at in 0usize..1000,
        flip_to in 0u8..=255,
    ) {
        use napmon_core::{Verdict, Violation};
        let mut payload = Vec::new();
        wirefmt::put_verdicts(&mut payload, &[
            Verdict::ok(),
            Verdict::warn(vec![
                Violation::BelowMin { neuron: 2, value: -0.5, bound: 0.0 },
                Violation::UnknownPattern { word: (0..19).map(|i| i % 2 == 0).collect() },
            ]),
        ]);
        let mut frame = Frame {
            opcode: Opcode::Verdicts,
            request_id: 1,
            trace_id: None,
            route: None,
            payload,
        };
        let index = flip_at % frame.payload.len();
        frame.payload[index] = flip_to;
        let _ = Response::decode(&frame); // value or typed error, no panic
    }

    /// v2 tenant-routed frames round-trip — route preserved, payload
    /// untouched, re-encode byte-identical — and both payload decoders
    /// stay total over arbitrary payload bytes behind a route.
    #[test]
    fn routed_frames_round_trip_and_decoders_stay_total(
        opcode_index in 0usize..24,
        request_id in 0u64..u64::MAX,
        trace_id in proptest::option::of(0u64..u64::MAX),
        id_seed in 0u64..u64::MAX,
        id_len in 1usize..65,
        version in 0u32..u32::MAX,
        payload in collection::vec(0u8..=255, 0..80),
    ) {
        let route = TenantRoute {
            model_id: tenant_id_from(id_seed, id_len),
            version,
        };
        let frame = Frame {
            opcode: OPCODES[opcode_index],
            request_id,
            trace_id,
            route: Some(route.clone()),
            payload,
        };
        let bytes = frame.encode().unwrap();
        let (decoded, consumed) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD)
            .expect("a well-formed routed frame must decode");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(decoded.route.as_ref(), Some(&route));
        let _ = Request::decode(&decoded);
        let _ = Response::decode(&decoded);
        // Every strict prefix is a typed Truncated, nothing else.
        for cut in [0, HEADER_LEN.min(bytes.len() - 1), bytes.len() - 1] {
            prop_assert!(matches!(
                Frame::decode(&bytes[..cut], DEFAULT_MAX_PAYLOAD),
                Err(WireError::Truncated)
            ));
        }
    }

    /// Mutating any one byte of a valid routed frame — header, flags,
    /// route block, or payload — yields a frame or a typed error through
    /// every decoding entry point. This is the adversarial leg for the
    /// v2 route machinery specifically.
    #[test]
    fn mutated_routed_frames_never_panic(
        id_seed in 0u64..u64::MAX,
        id_len in 1usize..65,
        version in 0u32..u32::MAX,
        flip_at in 0usize..10_000,
        flip_to in 0u8..=255,
    ) {
        let frame = Frame {
            opcode: Opcode::Query,
            request_id: 7,
            trace_id: Some(0x5EED_7ACE_5EED_7ACE),
            route: Some(TenantRoute {
                model_id: tenant_id_from(id_seed, id_len),
                version,
            }),
            payload: {
                let mut p = Vec::new();
                wirefmt::put_features(&mut p, &[0.25, -1.5, 3.0]);
                p
            },
        };
        let mut bytes = frame.encode().unwrap();
        let index = flip_at % bytes.len();
        bytes[index] = flip_to;
        check_frame_decode(&bytes, DEFAULT_MAX_PAYLOAD);
    }

    /// Cross-version peers fail typed in both directions: any frame whose
    /// header names a version other than [`WIRE_PROTOCOL_VERSION`] — the
    /// v1 legacy version included — is refused with
    /// [`WireError::UnsupportedVersion`] naming both versions, so each
    /// side of a v1↔v2 pairing can report exactly what the other speaks.
    #[test]
    fn cross_version_frames_fail_typed(
        opcode_index in 0usize..24,
        request_id in 0u64..u64::MAX,
        version in 0u16..u16::MAX,
        payload in collection::vec(0u8..=255, 0..32),
    ) {
        let frame = Frame {
            opcode: OPCODES[opcode_index],
            request_id,
            trace_id: None,
            route: None,
            payload,
        };
        let mut bytes = frame.encode().unwrap();
        // A v1 peer's frame: same layout, version field rewritten. (The
        // layouts genuinely agree through the header: v1 frames carry a
        // zero flags byte, which v2 reads as "unrouted".)
        bytes[4..6].copy_from_slice(&LEGACY_WIRE_PROTOCOL_VERSION.to_le_bytes());
        match Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD) {
            Err(WireError::UnsupportedVersion { found, supported }) => {
                prop_assert_eq!(found, LEGACY_WIRE_PROTOCOL_VERSION);
                prop_assert_eq!(supported, WIRE_PROTOCOL_VERSION);
            }
            other => prop_assert!(false, "v1 frame must fail typed, got {other:?}"),
        }
        // And any foreign version at all — what a v1 server sees from a
        // v2 client is the mirror image of this check.
        if version != WIRE_PROTOCOL_VERSION {
            bytes[4..6].copy_from_slice(&version.to_le_bytes());
            match Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD) {
                Err(WireError::UnsupportedVersion { found, supported }) => {
                    prop_assert_eq!(found, version);
                    prop_assert_eq!(supported, WIRE_PROTOCOL_VERSION);
                }
                other => prop_assert!(false, "foreign version must fail typed, got {other:?}"),
            }
        }
    }

    /// The low-level value decoders never read past their buffer: after a
    /// successful decode the remaining slice is a suffix of the input.
    #[test]
    fn value_decoders_respect_bounds(bytes in collection::vec(0u8..=255, 0..64)) {
        let mut cursor = bytes.as_slice();
        if let Ok(features) = wirefmt::get_features(&mut cursor) {
            prop_assert!(cursor.len() <= bytes.len());
            prop_assert_eq!(
                bytes.len() - cursor.len(),
                4 + 8 * features.len()
            );
        }
        let mut cursor = bytes.as_slice();
        if wirefmt::get_verdict(&mut cursor).is_ok() {
            prop_assert!(cursor.len() <= bytes.len());
        }
        let mut cursor = bytes.as_slice();
        if wirefmt::get_verdicts(&mut cursor).is_ok() {
            prop_assert!(cursor.len() <= bytes.len());
        }
    }
}
