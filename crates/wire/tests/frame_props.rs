//! Property tests: the frame and payload decoders are *total*.
//!
//! A network peer controls every byte a server reads, so the decoding
//! pipeline must map **any** byte string to either a value or a typed
//! [`WireError`] — never a panic, never an out-of-bounds read, never an
//! attacker-sized allocation. These properties feed arbitrary bytes (and
//! adversarially mutated valid frames, which get past the header checks
//! and stress the payload decoders) through every decoding entry point.

use napmon_core::wirefmt;
use napmon_wire::{Frame, Opcode, Request, Response, WireError, DEFAULT_MAX_PAYLOAD, HEADER_LEN};
use proptest::prelude::*;

/// A tight payload cap so forged-length checks are reachable from small
/// generated inputs.
const SMALL_MAX_PAYLOAD: u32 = 1 << 16;

/// Every opcode, for building valid-header frames around arbitrary
/// payloads.
const OPCODES: [Opcode; 12] = [
    Opcode::Query,
    Opcode::QueryBatch,
    Opcode::Absorb,
    Opcode::Stats,
    Opcode::Shutdown,
    Opcode::Verdict,
    Opcode::Verdicts,
    Opcode::Absorbed,
    Opcode::StatsReport,
    Opcode::ShuttingDown,
    Opcode::Busy,
    Opcode::Error,
];

/// Decoding must not read past the end, allocate per forged counts, or
/// panic; on success it must consume within bounds.
fn check_frame_decode(bytes: &[u8], max_payload: u32) {
    match Frame::decode(bytes, max_payload) {
        Ok((frame, consumed)) => {
            assert!(consumed <= bytes.len());
            assert_eq!(consumed, HEADER_LEN + frame.payload.len());
            // A decoded frame re-encodes to exactly the bytes consumed.
            assert_eq!(frame.encode().unwrap(), bytes[..consumed]);
            // The payload decoders are total too, whatever the opcode.
            let _ = Request::decode(&frame);
            let _ = Response::decode(&frame);
        }
        Err(e) => drop(e), // typed failure is the other legal outcome
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte strings: most fail the magic check, some get deeper.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(0u8..=255, 0..96)) {
        check_frame_decode(&bytes, DEFAULT_MAX_PAYLOAD);
        check_frame_decode(&bytes, SMALL_MAX_PAYLOAD);
    }

    /// Byte strings opening with the protocol magic: these exercise the
    /// version/opcode/reserved/length checks rather than dying at byte 0.
    #[test]
    fn magic_prefixed_bytes_never_panic(tail in collection::vec(0u8..=255, 0..96)) {
        let mut bytes = napmon_wire::MAGIC.to_vec();
        bytes.extend_from_slice(&tail);
        check_frame_decode(&bytes, SMALL_MAX_PAYLOAD);
    }

    /// Structurally valid frames around arbitrary payload bytes: the
    /// header decodes clean, so the payload decoders see every input.
    #[test]
    fn valid_frames_with_arbitrary_payloads_never_panic(
        opcode_index in 0usize..12,
        request_id in 0u64..u64::MAX,
        payload in collection::vec(0u8..=255, 0..80),
    ) {
        let frame = Frame {
            opcode: OPCODES[opcode_index],
            request_id,
            payload,
        };
        let bytes = frame.encode().unwrap();
        let (decoded, consumed) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD)
            .expect("a well-formed frame must decode");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(&decoded, &frame);
        let _ = Request::decode(&decoded);
        let _ = Response::decode(&decoded);
        // Every strict prefix is a typed Truncated, nothing else.
        for cut in [0, 1, HEADER_LEN.min(bytes.len() - 1), bytes.len() - 1] {
            prop_assert!(matches!(
                Frame::decode(&bytes[..cut], DEFAULT_MAX_PAYLOAD),
                Err(WireError::Truncated)
            ));
        }
    }

    /// Mutating one byte of a valid frame yields a frame or a typed
    /// error — and the verdict payload decoder in particular stays total
    /// under corruption of a real verdict encoding.
    #[test]
    fn mutated_verdict_payloads_never_panic(
        flip_at in 0usize..1000,
        flip_to in 0u8..=255,
    ) {
        use napmon_core::{Verdict, Violation};
        let mut payload = Vec::new();
        wirefmt::put_verdicts(&mut payload, &[
            Verdict::ok(),
            Verdict::warn(vec![
                Violation::BelowMin { neuron: 2, value: -0.5, bound: 0.0 },
                Violation::UnknownPattern { word: (0..19).map(|i| i % 2 == 0).collect() },
            ]),
        ]);
        let mut frame = Frame {
            opcode: Opcode::Verdicts,
            request_id: 1,
            payload,
        };
        let index = flip_at % frame.payload.len();
        frame.payload[index] = flip_to;
        let _ = Response::decode(&frame); // value or typed error, no panic
    }

    /// The low-level value decoders never read past their buffer: after a
    /// successful decode the remaining slice is a suffix of the input.
    #[test]
    fn value_decoders_respect_bounds(bytes in collection::vec(0u8..=255, 0..64)) {
        let mut cursor = bytes.as_slice();
        if let Ok(features) = wirefmt::get_features(&mut cursor) {
            prop_assert!(cursor.len() <= bytes.len());
            prop_assert_eq!(
                bytes.len() - cursor.len(),
                4 + 8 * features.len()
            );
        }
        let mut cursor = bytes.as_slice();
        if wirefmt::get_verdict(&mut cursor).is_ok() {
            prop_assert!(cursor.len() <= bytes.len());
        }
        let mut cursor = bytes.as_slice();
        if wirefmt::get_verdicts(&mut cursor).is_ok() {
            prop_assert!(cursor.len() <= bytes.len());
        }
    }
}
