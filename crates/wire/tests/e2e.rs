//! End-to-end wire serving over loopback.
//!
//! The contract mirrored from `tests/serve.rs`, now with a network in the
//! middle: verdicts served over the wire are **bit-identical** to direct
//! `MonitorEngine::submit_batch` calls, N concurrent clients interleave
//! safely on one engine, malformed peers get typed errors (and never
//! crash the server), overload gets typed `Busy`, and a graceful shutdown
//! drains every in-flight request — the final report's queue depth is
//! zero and every request is accounted for.

use napmon_core::{ComposedMonitor, MonitorKind, MonitorSpec};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_serve::{EngineConfig, MonitorEngine};
use napmon_tensor::Prng;
use napmon_wire::{ErrorCode, Frame, Opcode, WireClient, WireConfig, WireError, WireServer, MAGIC};
use std::io::{Read, Write};

const INPUT_DIM: usize = 6;

fn fixture() -> (Network, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let net = Network::seeded(
        501,
        INPUT_DIM,
        &[
            LayerSpec::dense(16, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(77);
    let train: Vec<Vec<f64>> = (0..128)
        .map(|_| rng.uniform_vec(INPUT_DIM, -1.0, 1.0))
        .collect();
    // Probes straddling the training distribution, so both verdict
    // branches occur on the wire.
    let probes: Vec<Vec<f64>> = (0..160)
        .map(|i| {
            if i % 3 == 0 {
                rng.uniform_vec(INPUT_DIM, -2.5, 2.5)
            } else {
                train[i % train.len()].clone()
            }
        })
        .collect();
    (net, train, probes)
}

fn engine(net: &Network, train: &[Vec<f64>], shards: usize) -> MonitorEngine<ComposedMonitor> {
    let spec = MonitorSpec::new(2, MonitorKind::pattern());
    let monitor = spec.build(net, train).expect("build monitor");
    MonitorEngine::new(net.clone(), monitor, EngineConfig::with_shards(shards))
}

/// Wire verdicts must be bit-identical to direct engine submission, for
/// N concurrent clients sharing one server.
#[test]
fn concurrent_wire_clients_match_direct_engine_bit_for_bit() {
    const CLIENTS: usize = 4;
    let (net, train, probes) = fixture();

    // The reference: a direct engine, no network.
    let spec = MonitorSpec::new(2, MonitorKind::pattern());
    let monitor = spec.build(&net, &train).expect("build monitor");
    let direct = MonitorEngine::new(net.clone(), monitor, EngineConfig::with_shards(2));
    let expected = direct.submit_batch(probes.clone()).expect("direct batch");
    direct.shutdown();
    let warned = expected.iter().filter(|v| v.warning).count();
    assert!(
        warned > 0 && warned < probes.len(),
        "fixture must exercise both verdict branches ({warned}/{})",
        probes.len()
    );

    let server = WireServer::builder(engine(&net, &train, 2))
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr();

    let worker = |client_id: usize| {
        let probes = probes.clone();
        let expected = expected.clone();
        move || {
            let mut client = WireClient::connect(addr).expect("connect");
            // Pipelined batch…
            let verdicts = client.query_batch(&probes).expect("wire batch");
            assert_eq!(verdicts, expected, "client {client_id}: batch drifted");
            // …and single-shot queries agree with it.
            for (probe, want) in probes.iter().zip(&expected).take(8) {
                let got = client.query(probe).expect("wire query");
                assert_eq!(&got, want, "client {client_id}: single query drifted");
            }
        }
    };
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| std::thread::spawn(worker(i)))
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    // Stats ride the same protocol and account for all served traffic.
    let mut client = WireClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    let per_client = probes.len() as u64 + 8;
    assert_eq!(stats.engine.requests, CLIENTS as u64 * per_client);
    assert_eq!(
        stats.wire_budget,
        WireConfig::default().max_in_flight as u32
    );

    let report = server.shutdown();
    assert_eq!(report.requests, CLIENTS as u64 * per_client);
    assert_eq!(report.queue_depth, 0, "drain left queued work");
}

/// A client-initiated shutdown drains in-flight pipelined work: every
/// request enqueued before the shutdown is served and answered, and the
/// final report shows empty queues (the `tests/serve.rs` guarantee, over
/// the wire).
#[test]
fn client_shutdown_drains_in_flight_requests() {
    let (net, train, probes) = fixture();
    let server = WireServer::builder(engine(&net, &train, 2))
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr();

    // One client pipelines a large batch; another asks for shutdown while
    // that batch is (potentially) still being served. The channel makes
    // the ordering honest: the prober's connection is accepted (its first
    // query answered) and its batch frames written before the shutdown
    // request is sent — so the batch is genuinely in flight, and the
    // drain must serve it.
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let prober = {
        let probes = probes.clone();
        std::thread::spawn(move || {
            let mut client = WireClient::connect(addr).expect("connect");
            client.query(&probes[0]).expect("connection accepted");
            ready_tx.send(()).expect("signal");
            client.query_batch(&probes).expect("batch served in full")
        })
    };
    let mut killer = WireClient::connect(addr).expect("connect");
    ready_rx.recv().expect("prober ready");
    killer.shutdown_server().expect("shutdown acknowledged");

    // The batch client observes either full service (its frames arrived
    // before the drain finished) — never a partial answer.
    let verdicts = prober.join().expect("prober thread");
    assert_eq!(verdicts.len(), probes.len());

    let report = server.wait();
    assert_eq!(report.queue_depth, 0, "drain left queued work");
    for shard in &report.shards {
        assert_eq!(
            shard.queue_depth, 0,
            "shard {} retired with queued work",
            shard.shard
        );
    }
    assert!(report.requests >= probes.len() as u64);

    // The server is gone: new connections are refused or die unserved.
    match WireClient::connect(addr) {
        Err(_) => {}
        Ok(mut client) => {
            assert!(client.query(&probes[0]).is_err(), "server still serving");
        }
    }
}

/// Malformed frames and payloads get typed errors; the connection (and
/// the server) survives what the protocol allows it to.
#[test]
fn malformed_peers_get_typed_errors_not_a_dead_server() {
    let (net, train, probes) = fixture();
    let server = WireServer::builder(engine(&net, &train, 1))
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr();

    // Raw socket speaking garbage: the server answers a typed error frame
    // and closes.
    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    raw.write_all(b"GET / HTTP/1.1\r\nHost: napmon\r\n\r\n")
        .expect("write");
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("read reply");
    let (frame, _) =
        Frame::decode(&reply, napmon_wire::DEFAULT_MAX_PAYLOAD).expect("typed error frame back");
    assert_eq!(frame.opcode, Opcode::Error);

    // A version from the future: typed rejection naming the supported one.
    let mut future = Frame::empty(Opcode::Stats, 9).encode().unwrap();
    future[4..6].copy_from_slice(&7u16.to_le_bytes());
    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    raw.write_all(&future).expect("write");
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("read reply");
    let (frame, _) =
        Frame::decode(&reply, napmon_wire::DEFAULT_MAX_PAYLOAD).expect("typed error frame back");
    assert_eq!(frame.opcode, Opcode::Error);
    match napmon_wire::Response::decode(&frame).expect("decodes") {
        napmon_wire::Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::UnsupportedVersion);
            assert!(
                message.contains("v7") && message.contains("v2"),
                "{message}"
            );
        }
        other => panic!("expected an error response, got {other:?}"),
    }
    assert_eq!(&reply[..4], &MAGIC, "error frames are themselves framed");

    // A well-framed but wrong-dimension input: a Monitor error response,
    // after which the same connection keeps serving.
    let mut client = WireClient::connect(addr).expect("connect");
    match client.query(&[1.0, 2.0]) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Monitor),
        other => panic!("expected a typed monitor error, got {other:?}"),
    }
    let verdict = client.query(&probes[0]).expect("connection still usable");
    let _ = verdict;

    // Absorb on a non-store-backed monitor: typed, not fatal.
    match client.absorb_batch(&probes[..2]) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Monitor),
        other => panic!("expected a typed monitor error, got {other:?}"),
    }

    let report = server.shutdown();
    assert_eq!(report.queue_depth, 0);
}

/// Over-budget traffic is refused with a typed `Busy` carrying the
/// budget figures — backpressure is a response, not dropped bytes.
#[test]
fn over_budget_requests_get_typed_busy() {
    let (net, train, probes) = fixture();
    // A budget of 1 with 2 competing clients: the loser of the race gets
    // Busy. Force the race by pipelining from both sides.
    let server = WireServer::builder(engine(&net, &train, 1))
        .config(WireConfig::default().with_max_in_flight(1))
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr();

    let mut saw_busy = false;
    'outer: for _ in 0..20 {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let probes = probes.clone();
                std::thread::spawn(move || {
                    let mut client = WireClient::connect(addr).expect("connect");
                    client.query_batch(&probes)
                })
            })
            .collect();
        for handle in handles {
            match handle.join().expect("client thread") {
                Ok(verdicts) => assert_eq!(verdicts.len(), probes.len()),
                Err(WireError::Busy { budget, .. }) => {
                    assert_eq!(budget, 1);
                    saw_busy = true;
                }
                Err(other) => panic!("expected service or Busy, got {other:?}"),
            }
        }
        if saw_busy {
            break 'outer;
        }
    }
    assert!(saw_busy, "two pipelining clients never hit a budget of 1");

    let stats = WireClient::connect(addr)
        .expect("connect")
        .stats()
        .expect("stats");
    assert!(stats.wire_busy_rejections > 0);
    server.shutdown();
}
