//! The shutdown-ordering regression: a server shut down **mid-hot-swap**
//! leaks no worker threads.
//!
//! `WireServer::drain` joins the accept loop and every connection thread
//! *before* tearing the backend down, and the registry backend's
//! teardown joins every background drainer and shadow mirror — so a
//! shutdown landing between a `mount_shadow` and its `promote` cannot
//! orphan the outgoing engine's workers.
//!
//! This test lives in its own binary on purpose: it proves thread
//! hygiene by enumerating `/proc/self/task`, which only works when no
//! sibling test is spinning its own servers in the same process.

use napmon_core::{ComposedMonitor, MonitorKind, MonitorSpec};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_registry::{MonitorRegistry, RegistryConfig};
use napmon_serve::{EngineConfig, MonitorEngine};
use napmon_tensor::Prng;
use napmon_wire::{TenantRoute, WireClient, WireConfig, WireServer};
use std::sync::Arc;
use std::time::Duration;

const INPUT_DIM: usize = 6;

fn engine(net: &Network, monitor: ComposedMonitor) -> MonitorEngine<ComposedMonitor> {
    MonitorEngine::new(net.clone(), monitor, EngineConfig::with_shards(1))
}

/// Shutting down while promotes are in full flight joins every thread:
/// accept loop, connections, shard workers, shadow mirrors, and the
/// background drainers retiring hot-swapped engines.
#[test]
fn shutdown_during_hot_swap_leaks_no_worker_threads() {
    let net = Network::seeded(
        501,
        INPUT_DIM,
        &[
            LayerSpec::dense(16, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(77);
    let train: Vec<Vec<f64>> = (0..128)
        .map(|_| rng.uniform_vec(INPUT_DIM, -1.0, 1.0))
        .collect();
    let probes: Vec<Vec<f64>> = (0..48)
        .map(|_| rng.uniform_vec(INPUT_DIM, -2.5, 2.5))
        .collect();
    let spec = MonitorSpec::new(2, MonitorKind::pattern());
    let monitor_a = spec.build(&net, &train).expect("build monitor A");
    let monitor_b = spec
        .build(&net, &train[..train.len() / 2])
        .expect("build monitor B");

    // Short drain grace: the prober streams frames back-to-back, so the
    // shutdown rides the grace window out before cutting it loose.
    let config = WireConfig::default().with_drain_grace(Duration::from_millis(250));
    let server = WireServer::builder(Arc::new(MonitorRegistry::new(RegistryConfig::with_engine(
        EngineConfig::with_shards(1),
    ))))
    .config(config)
    .bind("127.0.0.1:0")
    .expect("bind registry server");
    let addr = server.local_addr();
    let registry = Arc::clone(server.registry().expect("registry backend"));
    registry
        .mount_engine("prod", 1, engine(&net, monitor_a.clone()))
        .expect("mount v1");

    // One thread keeps swaps rolling (paced — every flip spawns an
    // engine, a mirror, and a drainer, and an unthrottled mill would
    // just exhaust thread stacks); another keeps query traffic in flight
    // over the wire. Both run until the shutdown cuts them off. Finished
    // drainers are reaped along the way; in-flight ones are what the
    // shutdown must join.
    let swapper = {
        let registry = Arc::clone(&registry);
        let net = net.clone();
        std::thread::spawn(move || {
            let mut version = 1u32;
            let mut flips = 0u32;
            let mut reaped: Vec<napmon_registry::DrainOutcome> = Vec::new();
            loop {
                version += 1;
                let monitor = if version.is_multiple_of(2) {
                    monitor_b.clone()
                } else {
                    monitor_a.clone()
                };
                if registry
                    .mount_shadow_engine("prod", version, engine(&net, monitor))
                    .and_then(|()| registry.promote("prod").map(|_| ()))
                    .is_err()
                {
                    // The registry closed under us: the expected end.
                    return (flips, reaped);
                }
                flips += 1;
                reaped.extend(registry.reap_retired());
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };
    let prober = std::thread::spawn(move || {
        let mut client = WireClient::connect(addr)
            .expect("connect")
            .with_route(TenantRoute::active("prod"));
        let mut served = 0u32;
        while client.query_batch(&probes).is_ok() {
            served += 1;
        }
        served
    });

    // Let the swap mill actually turn, then pull the plug mid-swap.
    std::thread::sleep(Duration::from_millis(150));
    let report = server.shutdown_registry().expect("registry report");
    let (flips, reaped) = swapper.join().expect("swapper thread");
    let served = prober.join().expect("prober thread");
    assert!(flips > 0, "shutdown must land while swaps are in flight");
    assert!(served > 0, "traffic must overlap the swaps");

    // Every engine the registry ever ran is accounted for: the surviving
    // active mount plus one retiree per completed flip — some reaped by
    // the swapper as it went, the rest joined by the shutdown (the last
    // mount may have been interrupted between shadow and promote).
    let drained = report.tenants.len() + report.retired.len() + reaped.len();
    assert!(
        drained > flips as usize,
        "{drained} drains cannot account for {flips} flips"
    );
    for outcome in reaped.iter().chain(&report.tenants).chain(&report.retired) {
        assert!(
            !outcome.timed_out,
            "{} v{} drain timed out under shutdown",
            outcome.model_id, outcome.version
        );
        assert_eq!(outcome.report.queue_depth, 0);
    }

    // The workers are all named; on Linux, prove they are gone. (`comm`
    // truncates names to 15 bytes, so match on prefixes.)
    #[cfg(target_os = "linux")]
    {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let leaked: Vec<String> = std::fs::read_dir("/proc/self/task")
                .expect("task list")
                .filter_map(|entry| {
                    let comm = entry.ok()?.path().join("comm");
                    let name = std::fs::read_to_string(comm).ok()?.trim().to_string();
                    (name.starts_with("napmon-registry")
                        || name.starts_with("napmon-shadow")
                        || name.starts_with("napmon-shard")
                        || name.starts_with("napmon-wire"))
                    .then_some(name)
                })
                .collect();
            if leaked.is_empty() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "worker threads leaked past shutdown: {leaked:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}
