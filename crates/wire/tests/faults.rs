//! Seeded network-fault end-to-end tests: the wire stack under a
//! misbehaving network, driven by `napmon_faultline::FaultProxy`.
//!
//! Every schedule is derived from a committed seed (override with
//! `NAPMON_FAULT_SEED`), and every failure message carries the seed — so
//! a red run replays exactly. The invariants:
//!
//! - Verdicts served through kills, truncations, and stalls are
//!   **bit-identical** to direct engine submission once the client's
//!   `RetryPolicy` has healed the connection (reconnect-with-resync).
//! - Evicted connections (idle or stalled mid-frame) get a typed
//!   `Evicted` error frame, free their connection slot, and are counted
//!   in `DegradedStats`.
//! - Watermark sheds are typed `Busy` on a still-usable connection —
//!   degradation never disconnects a peer mid-frame.
//! - Client deadlines turn a silent server into `TimedOut`, and an
//!   exhausted policy into typed `RetriesExhausted`.

use napmon_core::{ComposedMonitor, MonitorKind, MonitorSpec};
use napmon_faultline::{FaultProxy, ProxyPlan};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_serve::{EngineConfig, MonitorEngine};
use napmon_tensor::Prng;
use napmon_wire::{
    ClientConfig, ErrorCode, Frame, Opcode, Response, RetryPolicy, WireClient, WireConfig,
    WireError, WireServer, DEFAULT_MAX_PAYLOAD,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const INPUT_DIM: usize = 6;

/// Committed schedule seeds for the chaos run. Override with
/// `NAPMON_FAULT_SEED` to replay a reported schedule.
const DEFAULT_SEEDS: [u64; 3] = [
    0xDA7E_2021_0000_0001,
    0xC0FF_EE00_0000_0002,
    0x5EED_0000_0000_0006,
];

fn seeds() -> Vec<u64> {
    match std::env::var("NAPMON_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(seed) => vec![seed],
        None => DEFAULT_SEEDS.to_vec(),
    }
}

fn fixture() -> (Network, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let net = Network::seeded(
        501,
        INPUT_DIM,
        &[
            LayerSpec::dense(16, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(77);
    let train: Vec<Vec<f64>> = (0..128)
        .map(|_| rng.uniform_vec(INPUT_DIM, -1.0, 1.0))
        .collect();
    let probes: Vec<Vec<f64>> = (0..160)
        .map(|i| {
            if i % 3 == 0 {
                rng.uniform_vec(INPUT_DIM, -2.5, 2.5)
            } else {
                train[i % train.len()].clone()
            }
        })
        .collect();
    (net, train, probes)
}

fn engine(net: &Network, train: &[Vec<f64>], shards: usize) -> MonitorEngine<ComposedMonitor> {
    let spec = MonitorSpec::new(2, MonitorKind::pattern());
    let monitor = spec.build(net, train).expect("build monitor");
    MonitorEngine::new(net.clone(), monitor, EngineConfig::with_shards(shards))
}

/// A retry policy generous enough to outlast any survivable schedule
/// (the proxy caps kills at 4 per plan), seeded for reproducibility.
fn chaos_retry(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        budget: Duration::from_secs(60),
        jitter_seed: Some(seed),
    }
}

/// The tentpole e2e: for every committed seed, a client talking through
/// the fault proxy — kills tearing frames, stalls exercising deadlines —
/// produces verdicts bit-identical to direct engine submission.
#[test]
fn seeded_fault_schedules_pin_verdicts_bit_identical() {
    let (net, train, probes) = fixture();

    // The reference: a direct engine, no network, no faults.
    let direct = engine(&net, &train, 2);
    let expected = direct.submit_batch(probes.clone()).expect("direct batch");
    direct.shutdown();

    let server = WireServer::builder(engine(&net, &train, 2))
        .bind("127.0.0.1:0")
        .expect("bind");

    let mut total_kills = 0u64;
    for seed in seeds() {
        eprintln!("fault schedule seed: {seed:#x}");
        let proxy =
            FaultProxy::spawn(server.local_addr(), ProxyPlan::seeded(seed)).expect("spawn proxy");
        let config = ClientConfig::default()
            .with_read_timeout(Some(Duration::from_millis(500)))
            .with_retry(chaos_retry(seed));
        let mut client = WireClient::connect_with(proxy.addr(), config)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: connect through proxy: {e}"));
        let verdicts = client
            .query_batch(&probes)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: batch under faults: {e}"));
        assert_eq!(
            verdicts, expected,
            "seed {seed:#x}: verdicts drifted under network faults"
        );
        // Single-shot queries agree too, over the same faulty channel.
        for (probe, want) in probes.iter().zip(&expected).take(4) {
            let got = client
                .query(probe)
                .unwrap_or_else(|e| panic!("seed {seed:#x}: query under faults: {e}"));
            assert_eq!(&got, want, "seed {seed:#x}: single query drifted");
        }
        total_kills += proxy.stats().kills;
        drop(client);
    }
    assert!(
        total_kills > 0,
        "committed seeds never killed a connection; the schedule is not exercising faults"
    );
    server.shutdown();
}

/// Reads whatever the server sends until EOF and decodes it as one frame.
fn read_one_frame(stream: &mut TcpStream) -> Frame {
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read reply");
    let (frame, _) = Frame::decode(&reply, DEFAULT_MAX_PAYLOAD).expect("framed reply");
    frame
}

fn expect_evicted(frame: &Frame) {
    assert_eq!(frame.opcode, Opcode::Error);
    match Response::decode(frame).expect("decodes") {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Evicted);
            assert!(message.contains("reconnect"), "{message}");
        }
        other => panic!("expected an eviction error, got {other:?}"),
    }
}

/// A connection sitting idle past the deadline is evicted with a typed
/// `Evicted` frame — and, with `max_connections = 1`, its slot is free
/// again for the next client. Slow-loris peers cannot pin the server.
#[test]
fn idle_and_stalled_peers_are_evicted_and_free_their_slot() {
    let (net, train, probes) = fixture();
    let server = WireServer::builder(engine(&net, &train, 1))
        .config(
            WireConfig::default()
                .with_max_connections(1)
                .with_idle_timeout(Duration::from_millis(100))
                .with_frame_deadline(Duration::from_millis(100))
                .with_poll_interval(Duration::from_millis(5)),
        )
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr();

    // Idle peer: connects, says nothing, gets evicted.
    let mut idle = TcpStream::connect(addr).expect("connect");
    expect_evicted(&read_one_frame(&mut idle));

    // Stalled peer: starts a header and trickles nothing more — the
    // slow-loris shape. Evicted on the frame deadline.
    let mut loris = TcpStream::connect(addr).expect("connect");
    loris.write_all(&b"NAPW"[..]).expect("partial header");
    expect_evicted(&read_one_frame(&mut loris));

    // Both slots came back: a real client connects and is served.
    let mut client = WireClient::connect(addr).expect("slot freed");
    client.query(&probes[0]).expect("served after evictions");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.degraded.evicted_idle, 1, "idle eviction uncounted");
    assert_eq!(
        stats.degraded.evicted_stalled, 1,
        "stalled eviction uncounted"
    );
    assert_eq!(stats.degraded.evicted_total(), 2);
    server.shutdown();
}

/// Above the queue watermark, fully-read requests are shed with a typed
/// `Busy` — and the connection survives the shed, still serving. The
/// shed shows up in `DegradedStats::shed_watermark`.
#[test]
fn watermark_shed_is_typed_busy_on_a_usable_connection() {
    let (net, train, probes) = fixture();
    // Watermark 1 over a single shard: each in-flight batch frame is one
    // shard job, and the depth gauge counts jobs not yet *picked up* — so
    // six clients racing keep several jobs queued behind the worker. Six
    // dispatch workers let all six clients submit concurrently (the auto
    // pool would serialize them on a small machine and never queue).
    let server = WireServer::builder(engine(&net, &train, 1))
        .config(
            WireConfig::default()
                .with_queue_watermark(1)
                .with_dispatch_threads(6),
        )
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr();
    let big: Vec<Vec<f64>> = probes.iter().cycle().take(640).cloned().collect();

    let mut saw_shed = false;
    for _ in 0..20 {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let big = big.clone();
                std::thread::spawn(move || {
                    let mut client = WireClient::connect(addr).expect("connect");
                    let outcome = client.query_batch(&big);
                    (client, outcome)
                })
            })
            .collect();
        for handle in handles {
            let (mut client, outcome) = handle.join().expect("client thread");
            match outcome {
                Ok(verdicts) => assert_eq!(verdicts.len(), big.len()),
                Err(WireError::Busy { .. }) => {
                    saw_shed = true;
                    // The shed never tore the stream: the same connection
                    // keeps serving. Watermark pressure is transient (the
                    // other clients are still draining), so tolerate
                    // further Busy refusals while insisting the
                    // connection itself stays alive and framed.
                    let mut served = false;
                    for _ in 0..100 {
                        match client.query(&probes[0]) {
                            Ok(_) => {
                                served = true;
                                break;
                            }
                            Err(WireError::Busy { .. }) => {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                            Err(other) => {
                                panic!("shed must not break the connection: {other:?}")
                            }
                        }
                    }
                    assert!(served, "connection never served again after a shed");
                }
                Err(other) => panic!("expected service or Busy, got {other:?}"),
            }
        }
        if saw_shed {
            break;
        }
    }
    assert!(saw_shed, "six racing batches never crossed watermark 1");

    let stats = WireClient::connect(addr)
        .expect("connect")
        .stats()
        .expect("stats");
    assert!(stats.degraded.shed_watermark > 0, "shed uncounted");
    assert_eq!(
        stats.wire_busy_rejections,
        stats.degraded.busy_total(),
        "headline busy figure must equal the degradation ledger's total"
    );
    server.shutdown();
}

/// A server that accepts but never answers turns into a typed client
/// timeout — and with a retry policy, a typed `RetriesExhausted` whose
/// `last` error is the timeout.
#[test]
fn silent_server_times_out_typed_and_exhausts_retries() {
    // A listener that never reads or writes: connections sit in the
    // accept backlog, so connects succeed and reads hang.
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("addr");

    // Without retry: a plain typed timeout.
    let config = ClientConfig::default().with_read_timeout(Some(Duration::from_millis(50)));
    let mut client = WireClient::connect_with(addr, config).expect("connect");
    match client.stats() {
        Err(WireError::TimedOut) => {}
        other => panic!("expected TimedOut, got {other:?}"),
    }

    // With retry: every attempt times out, and the exhaustion is typed
    // with the attempt count and the final cause.
    let config = ClientConfig::default()
        .with_read_timeout(Some(Duration::from_millis(50)))
        .with_retry(RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
            budget: Duration::from_secs(30),
            jitter_seed: Some(7),
        });
    let mut client = WireClient::connect_with(addr, config).expect("connect");
    match client.query(&[0.0; INPUT_DIM]) {
        Err(WireError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 3);
            assert!(
                matches!(*last, WireError::TimedOut),
                "expected a timeout cause, got {last:?}"
            );
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    drop(listener);
}

/// `Busy` refusals are retried transparently by the policy: against a
/// budget of 1, two pipelining clients both finish with full verdicts —
/// no `Busy` ever reaches the caller.
#[test]
fn retry_policy_absorbs_busy_refusals() {
    let (net, train, probes) = fixture();
    let server = WireServer::builder(engine(&net, &train, 1))
        .config(WireConfig::default().with_max_in_flight(1))
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..2)
        .map(|i| {
            let probes = probes.clone();
            std::thread::spawn(move || {
                let config = ClientConfig::default().with_retry(RetryPolicy::seeded(100 + i));
                let mut client = WireClient::connect_with(addr, config).expect("connect");
                client.query_batch(&probes).expect("retried to completion")
            })
        })
        .collect();
    for handle in handles {
        let verdicts = handle.join().expect("client thread");
        assert_eq!(verdicts.len(), probes.len());
    }
    server.shutdown();
}
