//! End-to-end observability over loopback (requires `--features obs`).
//!
//! The acceptance contract of the tracing subsystem: one trace id minted
//! for a request reconstructs the request's complete span chain — frame
//! decode, queue wait, verdict computation, response write — across the
//! wire client → server → shard path, and the chain's *structure* (span
//! kinds and their details) is bit-exact across two identically-seeded
//! runs. The metrics scrape rides the same protocol: the `Metrics`
//! opcode returns the span set, the per-opcode counters, the request
//! histogram, and the slow-request log, all without a side channel.
//!
//! Everything lives in one `#[test]` because the runtime tracing toggle
//! and the span rings are process-global: separate tests would race on
//! `set_tracing` under the default parallel test runner.

#![cfg(feature = "obs")]

use napmon_core::{ComposedMonitor, MonitorKind, MonitorSpec};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_obs::SpanKind;
use napmon_serve::{EngineConfig, MonitorEngine};
use napmon_tensor::Prng;
use napmon_wire::{WireClient, WireConfig, WireServer};
use std::time::Duration;

const INPUT_DIM: usize = 5;

fn fixture() -> (Network, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let net = Network::seeded(
        901,
        INPUT_DIM,
        &[
            LayerSpec::dense(12, Activation::Relu),
            LayerSpec::dense(2, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(41);
    let train: Vec<Vec<f64>> = (0..96)
        .map(|_| rng.uniform_vec(INPUT_DIM, -1.0, 1.0))
        .collect();
    let probes: Vec<Vec<f64>> = (0..24)
        .map(|_| rng.uniform_vec(INPUT_DIM, -2.0, 2.0))
        .collect();
    (net, train, probes)
}

fn engine(net: &Network, train: &[Vec<f64>]) -> MonitorEngine<ComposedMonitor> {
    let spec = MonitorSpec::new(2, MonitorKind::pattern());
    let monitor = spec.build(net, train).expect("build monitor");
    MonitorEngine::new(net.clone(), monitor, EngineConfig::with_shards(1))
}

/// The structural signature of one request's span chain: kinds in causal
/// order plus the details that must be deterministic (opcode bytes, shard
/// index, item count). Durations are wall-clock and excluded.
fn span_signature(spans: &[napmon_obs::TraceEvent], trace_id: u64) -> Vec<(SpanKind, u64)> {
    let mut chain: Vec<_> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
    chain.sort_by_key(|s| (s.start_ns, s.kind.code()));
    chain.iter().map(|s| (s.kind, s.detail)).collect()
}

/// Serves one seeded run against a fresh server: a traced pipelined batch
/// under `trace_id`, then an untraced wire scrape. Returns the traced
/// request's span signature plus the scraped report.
fn traced_run(trace_id: u64) -> (Vec<(SpanKind, u64)>, napmon_obs::ObsReport) {
    let (net, train, probes) = fixture();
    // Everything is "slow" at a zero threshold, so the slow log
    // observably populates with the traced request.
    let config = WireConfig::default().with_slow_request_threshold(Duration::ZERO);
    let server = WireServer::builder(engine(&net, &train))
        .config(config)
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr();

    let mut client = WireClient::connect(addr).expect("connect");
    client.set_trace_id(Some(trace_id));
    let batch = client.query_batch(&probes).expect("traced batch");
    assert_eq!(batch.len(), probes.len());
    assert_eq!(
        client.last_trace_id(),
        Some(trace_id),
        "the response must echo the client's trace id"
    );

    // Scrape over the wire — untraced, so the chain under `trace_id`
    // stays exactly the query's. The scrape rides the same connection,
    // so the handler has recorded the respond span before it reads this.
    client.set_trace_id(None);
    let report = client.metrics().expect("metrics scrape");
    let signature = span_signature(&report.spans, trace_id);
    server.shutdown();
    (signature, report)
}

#[test]
fn trace_ids_reconstruct_span_chains_end_to_end() {
    // --- Traced: one id yields the complete, deterministic chain. ---
    napmon_obs::set_tracing(true);
    // Distinct fixed ids per run: the span rings are process-global and
    // drop-oldest, so a reused id would accumulate both runs' chains.
    let (first, report) = traced_run(0xD15E_A5ED_0B5E_47ED);

    let kinds: Vec<SpanKind> = first.iter().map(|(kind, _)| *kind).collect();
    for stage in [
        SpanKind::WireDecode,
        SpanKind::QueueWait,
        SpanKind::Verdict,
        SpanKind::WireRespond,
    ] {
        assert!(
            kinds.contains(&stage),
            "span chain is missing {stage:?}: {kinds:?}"
        );
    }
    // Causal order: decode precedes the queue wait, which precedes the
    // verdict, which precedes the response write.
    let position = |kind: SpanKind| kinds.iter().position(|k| *k == kind).unwrap();
    assert!(position(SpanKind::WireDecode) < position(SpanKind::QueueWait));
    assert!(position(SpanKind::QueueWait) < position(SpanKind::Verdict));
    assert!(position(SpanKind::Verdict) < position(SpanKind::WireRespond));

    // The scrape carries the request accounting alongside the spans.
    let counter = |name: &str| report.metrics.counters.get(name).copied().unwrap_or(0);
    assert!(
        counter("wire.requests.QueryBatch") >= 1,
        "per-opcode counter missing from scrape"
    );
    assert!(
        report
            .slow_requests
            .iter()
            .any(|r| r.trace_id == 0xD15E_A5ED_0B5E_47ED && r.opcode == "QueryBatch"),
        "slow log (zero threshold) must hold the traced request"
    );

    // Determinism: an identically-seeded second run produces the same
    // structural chain — same kinds, same details, same order.
    let (second, _) = traced_run(0x5EED_ED42_5EED_ED42);
    assert!(!first.is_empty());
    assert_eq!(first, second, "span chain structure drifted across runs");

    // --- Untraced: with tracing disarmed, requests flow untraced. ---
    napmon_obs::set_tracing(false);
    let (net, train, probes) = fixture();
    let server = WireServer::builder(engine(&net, &train))
        .bind("127.0.0.1:0")
        .expect("bind");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let _ = client.query(&probes[0]).expect("query");
    assert_eq!(client.last_trace_id(), None, "no trace id should be echoed");
    let report = client.metrics().expect("metrics scrape");
    assert!(
        report
            .metrics
            .counters
            .get("wire.requests.Query")
            .copied()
            .unwrap_or(0)
            >= 1
    );
    server.shutdown();
}
