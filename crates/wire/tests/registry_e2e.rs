//! Multi-tenant serving over the wire: registry-backed servers, tenant
//! routing, the admin control plane, and the hot-swap/shutdown contracts
//! under real sockets and seeded network faults.
//!
//! The invariants pinned here:
//!
//! - Routed verdicts served through a registry backend are
//!   **bit-identical** to direct engine submission, per tenant.
//! - Route mismatches are typed both ways: unrouted work on a registry
//!   server and routed work on a single-engine server both yield
//!   `ErrorCode::UnknownTenant` (counted in `DegradedStats`), and admin
//!   opcodes on a single-engine server yield `UnsupportedOpcode`.
//! - `promote` is verdict-transparent under a seeded fault schedule: a
//!   client riding kills and stalls sees old-build or new-build verdicts,
//!   never a torn mix, never an untyped failure.
//! - Shutting the server down **mid-swap** leaks no worker threads: the
//!   registry's background drainers and mirror workers are all joined
//!   before `shutdown_registry` returns.
//! - A v1 peer is refused with a typed error naming both versions.

use napmon_artifact::MonitorArtifact;
use napmon_core::{ComposedMonitor, MonitorKind, MonitorSpec, Verdict};
use napmon_faultline::{FaultProxy, ProxyPlan};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_registry::{MonitorRegistry, RegistryConfig};
use napmon_serve::{EngineConfig, MonitorEngine};
use napmon_tensor::Prng;
use napmon_wire::{
    ClientConfig, ErrorCode, Frame, Opcode, Response, RetryPolicy, TenantRoute, WireClient,
    WireError, WireServer, DEFAULT_MAX_PAYLOAD, LEGACY_WIRE_PROTOCOL_VERSION,
};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

const INPUT_DIM: usize = 6;

fn fixture() -> (Network, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let net = Network::seeded(
        501,
        INPUT_DIM,
        &[
            LayerSpec::dense(16, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(77);
    let train: Vec<Vec<f64>> = (0..128)
        .map(|_| rng.uniform_vec(INPUT_DIM, -1.0, 1.0))
        .collect();
    let probes: Vec<Vec<f64>> = (0..48)
        .map(|i| {
            if i % 3 == 0 {
                rng.uniform_vec(INPUT_DIM, -2.5, 2.5)
            } else {
                train[i % train.len()].clone()
            }
        })
        .collect();
    (net, train, probes)
}

fn spec() -> MonitorSpec {
    MonitorSpec::new(2, MonitorKind::pattern())
}

/// Monitor A sees the whole training set, monitor B half of it — two
/// builds whose verdicts genuinely differ on the probe traffic.
fn monitors(net: &Network, train: &[Vec<f64>]) -> (ComposedMonitor, ComposedMonitor) {
    let a = spec().build(net, train).expect("build monitor A");
    let b = spec()
        .build(net, &train[..train.len() / 2])
        .expect("build monitor B");
    (a, b)
}

fn engine(net: &Network, monitor: ComposedMonitor) -> MonitorEngine<ComposedMonitor> {
    MonitorEngine::new(net.clone(), monitor, EngineConfig::with_shards(1))
}

fn artifact_json(net: &Network, monitor: ComposedMonitor, trained_on: usize) -> String {
    MonitorArtifact::from_parts(spec(), net.clone(), monitor, trained_on)
        .expect("pack artifact")
        .to_json_string()
        .expect("encode artifact")
}

fn reference(net: &Network, monitor: ComposedMonitor, probes: &[Vec<f64>]) -> Vec<Verdict> {
    let engine = engine(net, monitor);
    let verdicts = engine.submit_batch(probes.to_vec()).expect("reference");
    engine.shutdown();
    verdicts
}

fn registry_server() -> WireServer {
    WireServer::builder(Arc::new(MonitorRegistry::new(RegistryConfig::with_engine(
        EngineConfig::with_shards(1),
    ))))
    .bind("127.0.0.1:0")
    .expect("bind registry server")
}

/// Mount, route, serve: two tenants mounted over the wire, each client's
/// verdicts bit-identical to direct engine submission; the mismatch cases
/// are typed `UnknownTenant` and land in the degradation ledger.
#[test]
fn routed_tenants_serve_bit_identical_and_mismatches_are_typed() {
    let (net, train, probes) = fixture();
    let (monitor_a, monitor_b) = monitors(&net, &train);
    let expected_a = reference(&net, monitor_a.clone(), &probes);
    let expected_b = reference(&net, monitor_b.clone(), &probes);
    assert_ne!(expected_a, expected_b, "builds must be distinguishable");

    let server = registry_server();
    let addr = server.local_addr();

    // The control plane: mount each tenant at the version the client's
    // pinned route names.
    let mut admin = WireClient::connect(addr).expect("connect admin");
    admin.set_route(Some(TenantRoute::pinned("alpha", 1)));
    admin
        .mount_artifact(false, &artifact_json(&net, monitor_a, train.len()))
        .expect("mount alpha v1");
    admin.set_route(Some(TenantRoute::pinned("beta", 1)));
    admin
        .mount_artifact(false, &artifact_json(&net, monitor_b, train.len() / 2))
        .expect("mount beta v1");

    let tenants = admin.list_tenants().expect("list tenants");
    assert_eq!(
        tenants
            .iter()
            .map(|t| (t.model_id.as_str(), t.active_version, t.shadow_version))
            .collect::<Vec<_>>(),
        vec![("alpha", 1, None), ("beta", 1, None)]
    );

    // The data plane: each tenant's client follows the active route and
    // gets its own build's verdicts, bit for bit — concurrently.
    let handles: Vec<_> = [("alpha", expected_a.clone()), ("beta", expected_b.clone())]
        .into_iter()
        .map(|(tenant, expected)| {
            let probes = probes.clone();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr)
                    .expect("connect")
                    .with_route(TenantRoute::active(tenant));
                let verdicts = client.query_batch(&probes).expect("routed batch");
                assert_eq!(verdicts, expected, "tenant {tenant} drifted");
                for (probe, want) in probes.iter().zip(&expected).take(6) {
                    let got = client.query(probe).expect("routed query");
                    assert_eq!(&got, want, "tenant {tenant} single query drifted");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("tenant client");
    }

    // A pinned route addresses the same mount directly.
    let mut pinned = WireClient::connect(addr)
        .expect("connect")
        .with_route(TenantRoute::pinned("alpha", 1));
    assert_eq!(
        pinned.query_batch(&probes).expect("pinned batch"),
        expected_a
    );

    // Mismatches: unrouted work on a registry server, and a route naming
    // nobody — both typed UnknownTenant on a connection that survives.
    let mut stray = WireClient::connect(addr).expect("connect");
    match stray.query(&probes[0]) {
        Err(WireError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::UnknownTenant);
            assert!(message.contains("unrouted"), "{message}");
        }
        other => panic!("expected typed UnknownTenant, got {other:?}"),
    }
    stray.set_route(Some(TenantRoute::active("nobody")));
    match stray.query_batch(&probes) {
        Err(WireError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::UnknownTenant);
            assert!(message.contains("nobody"), "{message}");
        }
        other => panic!("expected typed UnknownTenant, got {other:?}"),
    }
    stray.set_route(None);
    let stats = stray.stats().expect("unrouted stats still serves");
    assert_eq!(
        stats.degraded.unknown_tenant, 2,
        "route mismatches must land in the degradation ledger"
    );
    // The merged report covers both tenants' batches (plus their queries).
    assert!(stats.engine.requests >= 2 * (probes.len() as u64 + 6));

    // Unmount one tenant over the wire; its route goes dark, typed.
    admin.set_route(Some(TenantRoute::active("beta")));
    let report = admin.unmount().expect("unmount beta");
    assert_eq!(report.queue_depth, 0);
    match admin.query(&probes[0]) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownTenant),
        other => panic!("expected typed UnknownTenant after unmount, got {other:?}"),
    }

    let report = server.shutdown_registry().expect("registry report");
    assert_eq!(report.tenants.len(), 1, "only alpha was still mounted");
    for outcome in report.tenants.iter().chain(&report.retired) {
        assert!(
            !outcome.timed_out,
            "{} v{} drain timed out",
            outcome.model_id, outcome.version
        );
        assert_eq!(outcome.report.queue_depth, 0);
    }
}

/// The other direction of the route mismatch: a single-engine server
/// refuses routed work with typed `UnknownTenant` (counted), and refuses
/// the admin opcodes with `UnsupportedOpcode` — it has no registry.
#[test]
fn single_engine_servers_refuse_routes_and_admin_opcodes_typed() {
    let (net, train, probes) = fixture();
    let (monitor_a, _) = monitors(&net, &train);
    let server = WireServer::builder(engine(&net, monitor_a.clone()))
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr();

    let mut client = WireClient::connect(addr)
        .expect("connect")
        .with_route(TenantRoute::active("alpha"));
    match client.query(&probes[0]) {
        Err(WireError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::UnknownTenant);
            assert!(message.contains("single engine"), "{message}");
        }
        other => panic!("expected typed UnknownTenant, got {other:?}"),
    }
    // The route check comes first: even an admin frame, when routed, is a
    // routing miss on this backend. Unrouted admin frames expose the real
    // refusal — no registry behind this server.
    client.set_route(None);
    match client.mount_artifact(false, &artifact_json(&net, monitor_a, train.len())) {
        Err(WireError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::UnsupportedOpcode);
            assert!(message.contains("registry"), "{message}");
        }
        other => panic!("expected typed UnsupportedOpcode, got {other:?}"),
    }
    match client.list_tenants() {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnsupportedOpcode),
        other => panic!("expected typed UnsupportedOpcode, got {other:?}"),
    }

    // The connection survived every refusal, and the ledger counted the
    // routed ones.
    let verdict = client.query(&probes[0]).expect("still serving");
    let _ = verdict;
    let stats = client.stats().expect("stats");
    assert_eq!(stats.degraded.unknown_tenant, 1);
    server.shutdown();
}

/// Promotion is verdict-transparent under seeded network faults: while
/// the active mount flips between two builds behind a `FaultProxy`
/// killing and stalling the connection, every served batch is
/// bit-identical to one of the two builds — never torn, never untyped.
#[test]
fn promote_is_verdict_transparent_under_seeded_faults() {
    const FLIPS_PER_SEED: u32 = 10;
    let seeds: Vec<u64> = match std::env::var("NAPMON_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(seed) => vec![seed],
        None => vec![
            0xDA7E_2021_0000_0001,
            0xC0FF_EE00_0000_0002,
            0x5EED_0000_0000_0006,
        ],
    };

    let (net, train, probes) = fixture();
    let (monitor_a, monitor_b) = monitors(&net, &train);
    let expected_a = reference(&net, monitor_a.clone(), &probes);
    let expected_b = reference(&net, monitor_b.clone(), &probes);
    assert_ne!(expected_a, expected_b, "builds must be distinguishable");

    let server = registry_server();
    let registry = Arc::clone(server.registry().expect("registry backend"));
    registry
        .mount_engine("prod", 1, engine(&net, monitor_a.clone()))
        .expect("mount v1");

    let mut version = 1u32;
    let mut total_kills = 0u64;
    for seed in seeds {
        eprintln!("fault schedule seed: {seed:#x}");
        let proxy =
            FaultProxy::spawn(server.local_addr(), ProxyPlan::seeded(seed)).expect("spawn proxy");
        let config = ClientConfig::default()
            .with_read_timeout(Some(Duration::from_millis(500)))
            .with_retry(RetryPolicy {
                max_attempts: 12,
                initial_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(20),
                budget: Duration::from_secs(60),
                jitter_seed: Some(seed),
            });
        let mut client = WireClient::connect_with(proxy.addr(), config)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: connect through proxy: {e}"))
            .with_route(TenantRoute::active("prod"));

        for flip in 0..FLIPS_PER_SEED {
            version += 1;
            let monitor = if version.is_multiple_of(2) {
                monitor_b.clone()
            } else {
                monitor_a.clone()
            };
            registry
                .mount_shadow_engine("prod", version, engine(&net, monitor))
                .unwrap_or_else(|e| panic!("seed {seed:#x}: shadow v{version}: {e}"));
            registry
                .promote("prod")
                .unwrap_or_else(|e| panic!("seed {seed:#x}: promote v{version}: {e}"));

            let verdicts = client
                .query_batch(&probes)
                .unwrap_or_else(|e| panic!("seed {seed:#x} flip {flip}: batch under faults: {e}"));
            assert!(
                verdicts == expected_a || verdicts == expected_b,
                "seed {seed:#x} flip {flip}: verdicts match neither build — torn swap"
            );
        }
        total_kills += proxy.stats().kills;
        drop(client);
    }
    assert!(
        total_kills > 0,
        "committed seeds never killed a connection; the schedule is not exercising faults"
    );

    let report = server.shutdown_registry().expect("registry report");
    for outcome in report.tenants.iter().chain(&report.retired) {
        assert!(!outcome.timed_out, "v{} drain timed out", outcome.version);
    }
}

/// A v1 peer on a real socket is refused with a typed error naming both
/// its version and ours — the cross-version contract from
/// `frame_props.rs`, proven end-to-end against a registry server.
#[test]
fn v1_clients_get_a_typed_rejection_naming_both_versions() {
    let server = registry_server();

    let mut v1_frame = Frame::empty(Opcode::Stats, 3).encode().expect("encode");
    v1_frame[4..6].copy_from_slice(&LEGACY_WIRE_PROTOCOL_VERSION.to_le_bytes());
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(&v1_frame).expect("write v1 frame");
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("read reply");
    let (frame, _) = Frame::decode(&reply, DEFAULT_MAX_PAYLOAD).expect("typed error frame back");
    assert_eq!(frame.opcode, Opcode::Error);
    match Response::decode(&frame).expect("decodes") {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::UnsupportedVersion);
            assert!(
                message.contains("v1") && message.contains("v2"),
                "the rejection must name both versions: {message}"
            );
        }
        other => panic!("expected an error response, got {other:?}"),
    }
    server.shutdown_registry();
}
