//! The reactor's scaling contract: connections are a buffer, not a
//! thread.
//!
//! Holds over a thousand concurrent idle connections against one server
//! and proves, by enumerating `/proc/self/task`, that the wire layer
//! still runs on O(1) threads — one reactor plus a fixed worker pool —
//! while every one of those connections remains live and servable. Also
//! pins the accept-path refusal contract: a connection over the cap is
//! answered with exactly one typed `Busy` frame through the nonblocking
//! write path, counted exactly once in
//! `DegradedStats::refused_connections`.
//!
//! This test lives in its own binary on purpose: it counts threads by
//! name, which only works when no sibling test is spinning its own
//! servers in the same process.

use napmon_core::{MonitorKind, MonitorSpec};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_serve::{EngineConfig, MonitorEngine};
use napmon_tensor::Prng;
use napmon_wire::{
    Frame, Opcode, Response, WireClient, WireConfig, WireServer, DEFAULT_MAX_PAYLOAD,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const INPUT_DIM: usize = 4;
const IDLE_CONNS: usize = 1100;

fn engine(net: &Network, train: &[Vec<f64>]) -> MonitorEngine<napmon_core::ComposedMonitor> {
    let spec = MonitorSpec::new(2, MonitorKind::pattern());
    let monitor = spec.build(net, train).expect("build monitor");
    MonitorEngine::new(net.clone(), monitor, EngineConfig::with_shards(1))
}

fn fixture() -> (Network, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let net = Network::seeded(
        404,
        INPUT_DIM,
        &[
            LayerSpec::dense(12, Activation::Relu),
            LayerSpec::dense(2, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(31);
    let train: Vec<Vec<f64>> = (0..64)
        .map(|_| rng.uniform_vec(INPUT_DIM, -1.0, 1.0))
        .collect();
    let probes: Vec<Vec<f64>> = (0..8)
        .map(|_| rng.uniform_vec(INPUT_DIM, -2.0, 2.0))
        .collect();
    (net, train, probes)
}

/// Threads currently named with the given prefix. `comm` truncates
/// names to 15 bytes, so the prefix must fit (and callers match on
/// prefixes, never whole names).
#[cfg(target_os = "linux")]
fn threads_with_prefix(prefix: &str) -> Vec<String> {
    std::fs::read_dir("/proc/self/task")
        .expect("task list")
        .filter_map(|entry| {
            let comm = entry.ok()?.path().join("comm");
            let name = std::fs::read_to_string(comm).ok()?.trim().to_string();
            name.starts_with(prefix).then_some(name)
        })
        .collect()
}

/// ≥1024 concurrent idle connections, all live, on a wire thread count
/// that never moves — the reactor owns them all, and the worker pool is
/// sized by config, not by peers.
#[test]
fn holds_1024_idle_connections_on_constant_wire_threads() {
    let (net, train, probes) = fixture();
    let server = WireServer::builder(engine(&net, &train))
        .config(
            WireConfig::default()
                .with_max_connections(4096)
                // Idle eviction must not fire while the herd sits.
                .with_idle_timeout(Duration::from_secs(120)),
        )
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr();

    // Baseline thread count once the pool settles: freshly spawned
    // threads name themselves on their own schedule, so poll until two
    // consecutive samples agree on a nonzero count.
    #[cfg(target_os = "linux")]
    let wire_threads_before = {
        let mut last = 0usize;
        loop {
            let count = threads_with_prefix("napmon-wire").len();
            if count > 0 && count == last {
                break count;
            }
            last = count;
            std::thread::sleep(Duration::from_millis(20));
        }
    };

    // The herd: every connection dials, proves liveness with one served
    // request, then sits idle. Connects pace themselves against the
    // accept backlog — a refused dial retries rather than failing the
    // herd.
    let mut herd: Vec<TcpStream> = Vec::with_capacity(IDLE_CONNS);
    while herd.len() < IDLE_CONNS {
        match TcpStream::connect(addr) {
            Ok(stream) => herd.push(stream),
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Liveness sample across the herd (first, spread, and last — the
    // last connected after every other one was already held open).
    let stats_frame = stats_frame();
    for i in (0..IDLE_CONNS).step_by(97).chain([IDLE_CONNS - 1]) {
        let stream = &mut herd[i];
        stream.write_all(&stats_frame).expect("write stats");
        let response = read_frame(stream);
        assert_eq!(response.opcode, Opcode::StatsReport, "conn {i} not served");
    }

    // The scaling claim: the wire layer added no threads for a thousand
    // peers. (One reactor + the fixed worker pool, all napmon-wire-*.)
    #[cfg(target_os = "linux")]
    {
        let wire_threads = threads_with_prefix("napmon-wire");
        assert_eq!(
            wire_threads.len(),
            wire_threads_before,
            "wire thread count moved with connection count: {wire_threads:?}"
        );
        assert!(
            wire_threads.len() <= 9,
            "more than reactor + max worker pool: {wire_threads:?}"
        );
    }

    // The herd is genuinely concurrent load, not sequential: a fresh
    // client is still served while all of it stays connected.
    let mut client = WireClient::connect(addr).expect("connect beside the herd");
    client.query(&probes[0]).expect("served beside the herd");
    drop(herd);
    client.shutdown_server().expect("shutdown");
    let report = server.wait();
    assert_eq!(report.queue_depth, 0, "drain left queued work");
}

/// A minimal raw-wire `Stats` request, bypassing `WireClient` so one
/// plain `TcpStream` per herd member is enough.
fn stats_frame() -> Vec<u8> {
    Frame::empty(Opcode::Stats, 1)
        .encode()
        .expect("encode stats frame")
}

/// Reads exactly one frame off the stream (header, then payload).
fn read_frame(stream: &mut TcpStream) -> Frame {
    let mut buf = vec![0u8; napmon_wire::HEADER_LEN];
    stream.read_exact(&mut buf).expect("frame header");
    let declared = u32::from_le_bytes(buf[16..20].try_into().expect("fixed slice")) as usize;
    buf.resize(napmon_wire::HEADER_LEN + declared, 0);
    stream
        .read_exact(&mut buf[napmon_wire::HEADER_LEN..])
        .expect("frame payload");
    let (frame, consumed) = Frame::decode(&buf, DEFAULT_MAX_PAYLOAD).expect("decodes");
    assert_eq!(consumed, buf.len());
    frame
}

/// Refusals at the connection cap: one typed `Busy` frame with the cap
/// figures, request id 0 (no frame was ever read), a clean EOF after it
/// — and `refused_connections` counts each refusal exactly once.
#[test]
fn accept_refusals_speak_busy_and_count_exactly_once() {
    let (net, train, probes) = fixture();
    let server = WireServer::builder(engine(&net, &train))
        .config(WireConfig::default().with_max_connections(1))
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr();

    // The slot holder: a served client pins the one connection.
    let mut holder = WireClient::connect(addr).expect("connect");
    holder.query(&probes[0]).expect("served");

    for expected_refusals in 1..=2u64 {
        let mut refused = TcpStream::connect(addr).expect("tcp connect");
        let mut reply = Vec::new();
        refused.read_to_end(&mut reply).expect("read refusal");
        let (frame, consumed) = Frame::decode(&reply, DEFAULT_MAX_PAYLOAD).expect("framed refusal");
        assert_eq!(consumed, reply.len(), "exactly one frame, then EOF");
        assert_eq!(frame.opcode, Opcode::Busy);
        assert_eq!(frame.request_id, 0, "no request was read to correlate");
        match Response::decode(&frame).expect("decodes") {
            Response::Busy { in_flight, budget } => {
                assert_eq!(in_flight, 1, "serving connections at refusal time");
                assert_eq!(budget, 1, "the connection cap");
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        let stats = holder.stats().expect("stats");
        assert_eq!(
            stats.degraded.refused_connections, expected_refusals,
            "refusal must count exactly once"
        );
    }

    // The refusal left the holder untouched.
    holder.query(&probes[0]).expect("slot holder still served");
    server.shutdown();
}
