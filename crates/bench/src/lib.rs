//! Shared fixtures for the `napmon` benchmarks.
//!
//! The criterion benches and the `paper_tables` binary both need trained
//! perception networks and sampled datasets; this module provides seeded,
//! size-parameterized fixtures so every benchmark is reproducible.

use napmon_data::racetrack::TrackConfig;
use napmon_eval::{Experiment, RacetrackConfig};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_tensor::Prng;

/// A small trained race-track experiment for latency benchmarks
/// (seconds to prepare; the full-scale variant lives in `paper_tables`).
pub fn bench_experiment() -> Experiment {
    Experiment::prepare(RacetrackConfig {
        train_size: 512,
        test_size: 256,
        ood_size: 64,
        hidden: vec![32, 16],
        epochs: 5,
        track: TrackConfig {
            height: 12,
            width: 12,
            ..TrackConfig::default()
        },
        ..RacetrackConfig::default()
    })
}

/// An untrained (random) network of the given hidden widths over `input`
/// dimensions — enough for propagation/throughput benches where training
/// does not change the cost profile.
pub fn random_network(seed: u64, input: usize, hidden: &[usize]) -> Network {
    let mut specs: Vec<LayerSpec> = hidden
        .iter()
        .map(|&w| LayerSpec::dense(w, Activation::Relu))
        .collect();
    specs.push(LayerSpec::dense(2, Activation::Identity));
    Network::seeded(seed, input, &specs)
}

/// `n` random inputs for the given network.
pub fn random_inputs(seed: u64, net: &Network, n: usize) -> Vec<Vec<f64>> {
    let mut rng = Prng::seed(seed);
    (0..n)
        .map(|_| rng.uniform_vec(net.input_dim(), 0.0, 1.0))
        .collect()
}

/// The golden-artifact fixture: one deterministic monitor deployment,
/// committed as `tests/golden_artifact.json` at the workspace root.
///
/// The committed file is the compatibility contract for
/// [`napmon_artifact::FORMAT_VERSION`]: `validate_artifact` (run in CI)
/// rebuilds this fixture, loads the committed file, and fails if the
/// current reader can no longer parse it or its verdicts drift from the
/// freshly built monitor. Regenerate (after an intentional format bump)
/// with `NAPMON_REGEN_GOLDEN=1 cargo run -p napmon-bench --bin
/// validate_artifact`.
pub mod golden {
    use napmon_absint::Domain;
    use napmon_artifact::MonitorArtifact;
    use napmon_core::{MonitorKind, MonitorSpec};
    use napmon_nn::{Activation, LayerSpec, Network};
    use napmon_tensor::Prng;

    /// The network the golden monitor is built against.
    pub fn network() -> Network {
        Network::seeded(
            2021,
            8,
            &[
                LayerSpec::dense(12, Activation::Relu),
                LayerSpec::dense(3, Activation::Identity),
            ],
        )
    }

    /// The golden training set.
    pub fn train() -> Vec<Vec<f64>> {
        let mut rng = Prng::seed(77);
        (0..64).map(|_| rng.uniform_vec(8, -1.0, 1.0)).collect()
    }

    /// The golden spec: a robust 2-bit interval monitor (BDD-backed, so
    /// the arena serializer is part of the contract) at the last hidden
    /// boundary.
    pub fn spec() -> MonitorSpec {
        MonitorSpec::new(2, MonitorKind::interval(2)).robust(0.05, 0, Domain::Box)
    }

    /// Builds the golden artifact from scratch (deterministic).
    pub fn build() -> MonitorArtifact {
        MonitorArtifact::build(spec(), &network(), &train()).expect("golden fixture builds")
    }

    /// The probe corpus the golden verdicts are pinned on: near-training
    /// and far-OOD inputs.
    pub fn probes() -> Vec<Vec<f64>> {
        let mut rng = Prng::seed(4242);
        let mut probes: Vec<Vec<f64>> = (0..48).map(|_| rng.uniform_vec(8, -1.0, 1.0)).collect();
        probes.extend((0..16).map(|_| rng.uniform_vec(8, -6.0, 6.0)));
        probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = random_network(3, 8, &[6]);
        let b = random_network(3, 8, &[6]);
        assert_eq!(a, b);
        assert_eq!(random_inputs(1, &a, 4), random_inputs(1, &b, 4));
    }

    #[test]
    fn bench_experiment_prepares() {
        let e = bench_experiment();
        assert_eq!(e.network().input_dim(), 144);
    }
}
