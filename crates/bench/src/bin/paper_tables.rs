//! Regenerates every table and figure of the paper's evaluation, plus the
//! ablations indexed in `DESIGN.md` (§4) / `EXPERIMENTS.md`.
//!
//! ```text
//! paper_tables [e1|e2|f1|f2|a1|a2|a3|a4|a5|a6|all] [--full]
//! ```
//!
//! Without `--full`, a reduced-scale configuration runs in seconds; with
//! `--full`, the paper-scale configuration used to record `EXPERIMENTS.md`
//! runs in minutes. JSON copies of all results land in `results/`.

use napmon_absint::Domain;
use napmon_bdd::Bdd;
use napmon_core::{MonitorBuilder, MonitorKind, PatternBackend, ThresholdPolicy};
use napmon_data::ood::OodScenario;
use napmon_data::racetrack::{TrackConfig, TrackSampler};
use napmon_eval::experiment::{Experiment, RacetrackConfig};
use napmon_eval::report;
use napmon_eval::sweep;
use napmon_eval::table::{percent, seconds, Table};
use napmon_tensor::Prng;
use std::time::Instant;

/// The pattern family used throughout the experiments: mean thresholds
/// (sign thresholds degenerate on post-ReLU layers, where every value is
/// non-negative).
fn pattern_family() -> MonitorKind {
    MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 0)
}

fn usage() -> ! {
    eprintln!("usage: paper_tables [e1|e2|f1|f2|a1|a2|a3|a4|a5|a6|all] [--full]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let config = if full {
        RacetrackConfig::paper_scale()
    } else {
        RacetrackConfig {
            train_size: 600,
            test_size: 800,
            ood_size: 200,
            hidden: vec![48, 24],
            epochs: 12,
            scenarios: OodScenario::ALL.to_vec(),
            ..RacetrackConfig::default()
        }
    };

    let needs_experiment = matches!(
        which,
        "e1" | "f2" | "a1" | "a1mm" | "a2" | "a3" | "a4" | "a6" | "all"
    );
    let exp = needs_experiment.then(|| {
        println!(
            "# preparing experiment (train={}, test={}, ood={}x{}, net=256->{:?}->2, {} epochs)…",
            config.train_size,
            config.test_size,
            config.scenarios.len(),
            config.ood_size,
            config.hidden,
            config.epochs
        );
        let t = Instant::now();
        let exp = Experiment::prepare(config.clone());
        println!(
            "# trained in {}: train MSE {:.5}, test MSE {:.5}\n",
            seconds(t.elapsed().as_secs_f64()),
            exp.train_loss(),
            exp.test_loss()
        );
        exp
    });

    match which {
        "e1" => e1(exp.as_ref().unwrap()),
        "e2" => e2(full),
        "f1" => f1(),
        "f2" => f2(exp.as_ref().unwrap(), config.seed),
        "a1" => a1(exp.as_ref().unwrap()),
        "a1mm" => a1mm(exp.as_ref().unwrap()),
        "a2" => a2(exp.as_ref().unwrap()),
        "a3" => a3(exp.as_ref().unwrap()),
        "a4" => a4(exp.as_ref().unwrap()),
        "a5" => a5(),
        "a6" => a6(exp.as_ref().unwrap()),
        "all" => {
            let exp = exp.as_ref().unwrap();
            e1(exp);
            f1();
            f2(exp, config.seed);
            a1(exp);
            a2(exp);
            a3(exp);
            a4(exp);
            a5();
            a6(exp);
            e2(full);
        }
        _ => usage(),
    }
}

/// E1 — §IV narrative: standard vs robust FP and detection rates.
///
/// Each family is shown at its own operating Δ ("the optimal case" of the
/// paper): the smallest FP rate among robust points whose mean detection
/// stays within 5 points of the standard monitor (the paper's "detection
/// rate ... remains roughly the same").
fn e1(exp: &Experiment) {
    println!("## E1 — false positives & OOD detection, standard vs robust (paper §IV)\n");
    let deltas = [0.0, 2.5e-4, 5e-4, 1e-3, 2.5e-3];

    let mut headers = vec!["monitor".to_string(), "FP rate".to_string()];
    for s in exp.ood_inputs().keys() {
        headers.push(format!("det {}", s.name()));
    }
    headers.push("coverage".into());
    headers.push("build".into());
    let mut t = Table::new(headers);
    let mut rows = Vec::new();
    let mut summary = Vec::new();

    for (family, kind) in Experiment::monitor_families() {
        let points = sweep::delta_sweep(exp, kind.clone(), &deltas, 0, Domain::Box);
        let best = sweep::pick_operating_point(&points, 0.05);
        let standard = exp.run_monitor(&format!("{family} (standard)"), kind.clone(), None);
        let robust = exp.run_monitor(
            &format!("{family} (robust Δ={})", best.delta),
            kind,
            Some(napmon_core::RobustConfig {
                delta: best.delta,
                kp: 0,
                domain: Domain::Box,
            }),
        );
        for row in [&standard, &robust] {
            let mut cells = vec![row.name.clone(), percent(row.fp_rate)];
            for v in row.detection.values() {
                cells.push(percent(*v));
            }
            cells.push(row.coverage.map_or("-".into(), |c| format!("{c:.2e}")));
            cells.push(seconds(row.build_seconds));
            t.row(cells);
        }
        let reduction = if standard.fp_rate > 0.0 {
            100.0 * (1.0 - robust.fp_rate / standard.fp_rate)
        } else {
            0.0
        };
        summary.push(format!(
            "{family:<16} Δ={:<7} FP {} -> {}  ({reduction:.0}% reduction; paper reports 80%)  mean detection {} -> {}",
            best.delta,
            percent(standard.fp_rate),
            percent(robust.fp_rate),
            percent(standard.mean_detection()),
            percent(robust.mean_detection()),
        ));
        rows.push(standard);
        rows.push(robust);
    }
    println!("{t}");
    for line in summary {
        println!("{line}");
    }
    println!();
    report::save_json(&rows, "results/e1.json").expect("write results/e1.json");
}

/// E2 — per-class monitoring on the glyph classifier (the DATE 2019
/// substrate), standard vs robust.
fn e2(full: bool) {
    use napmon_eval::shapes_experiment::{ShapesExperiment, ShapesExperimentConfig};
    println!("## E2 — per-class pattern monitoring on the glyph classifier\n");
    let config = if full {
        ShapesExperimentConfig::paper_scale()
    } else {
        ShapesExperimentConfig::default()
    };
    let exp = ShapesExperiment::prepare(config);
    println!("classifier accuracy: {}\n", percent(exp.accuracy()));
    let kind = pattern_family();
    let mut rows = Vec::new();
    rows.push(exp.run_per_class("per-class pattern (standard)", kind.clone(), None));
    for delta in [5e-4, 1e-3, 2e-3] {
        rows.push(exp.run_per_class(
            &format!("per-class pattern (robust Δ={delta})"),
            kind.clone(),
            Some(napmon_core::RobustConfig {
                delta,
                kp: 0,
                domain: Domain::Box,
            }),
        ));
    }
    let mut t = Table::new(vec![
        "monitor".into(),
        "FP rate".into(),
        "OOD detection".into(),
        "build".into(),
    ]);
    for row in &rows {
        t.row(vec![
            row.name.clone(),
            percent(row.fp_rate),
            percent(row.detection),
            seconds(row.build_seconds),
        ]);
    }
    println!("{t}");
    report::save_json(&rows, "results/e2.json").expect("write results/e2.json");
}

/// F1 — Figure 1: the robust 2-bit encoding table.
fn f1() {
    println!("## F1 — Figure 1: robust interval encoding of [l, u] vs thresholds c1 < c2 < c3\n");
    let net = napmon_bench::random_network(1, 1, &[1]);
    let fx = napmon_core::FeatureExtractor::new(&net, 1).unwrap();
    let m = napmon_core::IntervalPatternMonitor::empty(fx, 2, vec![vec![0.0, 1.0, 2.0]]).unwrap();
    let cases: [(&str, f64, f64); 10] = [
        ("l > c3", 2.5, 3.0),
        ("c2 <= l <= u <= c3", 1.2, 1.8),
        ("c1 < l <= u < c2", 0.3, 0.7),
        ("u <= c1", -1.0, -0.5),
        ("l <= c1 < u < c2", -0.5, 0.5),
        ("c1 < l < c2 <= u <= c3", 0.5, 1.5),
        ("c2 <= l <= c3 < u", 1.5, 2.5),
        ("l <= c1, c2 <= u <= c3", -0.5, 1.5),
        ("c1 < l < c2, c3 < u", 0.5, 2.5),
        ("l <= c1, c3 < u", -0.5, 2.5),
    ];
    let mut t = Table::new(vec![
        "relation of [l,u] to thresholds".into(),
        "symbols b_j".into(),
    ]);
    for (desc, l, u) in cases {
        let symbols: Vec<String> = m
            .symbol_range(0, l, u)
            .map(|s| format!("{s:02b}"))
            .collect();
        t.row(vec![desc.to_string(), format!("{{{}}}", symbols.join(","))]);
    }
    println!("{t}");
}

/// F2 — Figure 2: the staged OOD scenarios (ASCII renders + detections).
fn f2(exp: &Experiment, seed: u64) {
    println!("## F2 — Figure 2: synthetic out-of-ODD scenarios\n");
    let cfg = TrackConfig::default();
    let mut sampler = TrackSampler::new(cfg, seed ^ 0xF2);
    let (nominal, _, _) = sampler.sample();
    println!("nominal (in-ODD):\n{}", nominal.to_ascii());
    for scenario in OodScenario::PAPER {
        let corrupted = scenario.apply(&nominal, sampler.rng_mut());
        println!("{scenario}:\n{}", corrupted.to_ascii());
    }
    // Detection snapshot with the robust pattern monitor.
    let row = exp.run_monitor(
        "pattern (robust Δ=0.001)",
        pattern_family(),
        Some(napmon_core::RobustConfig {
            delta: 0.001,
            kp: 0,
            domain: Domain::Box,
        }),
    );
    let mut t = Table::new(vec!["scenario".into(), "detection rate".into()]);
    for (name, rate) in &row.detection {
        t.row(vec![name.clone(), percent(*rate)]);
    }
    t.row(vec![
        "(in-ODD false positives)".into(),
        percent(row.fp_rate),
    ]);
    println!("{t}");
    report::save_json(&row, "results/f2.json").expect("write results/f2.json");
}

/// A1 — Δ sweep: FP/detection trade-off.
fn a1(exp: &Experiment) {
    println!("## A1 — Δ sweep (robust pattern monitor, box domain, kp = 0)\n");
    let deltas = [0.0, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2e-2, 4e-2];
    let mut t = Table::new(vec![
        "Δ".into(),
        "FP rate".into(),
        "mean detection".into(),
        "coverage".into(),
    ]);
    let points = sweep::delta_sweep(exp, pattern_family(), &deltas, 0, Domain::Box);
    for p in &points {
        t.row(vec![
            format!("{}", p.delta),
            percent(p.fp_rate),
            percent(p.mean_detection),
            p.coverage.map_or("-".into(), |c| format!("{c:.2e}")),
        ]);
    }
    println!("{t}");
    report::save_json(&points, "results/a1.json").expect("write results/a1.json");
}

/// A1b — Δ sweep for the min-max family (whose standard FP baseline is the
/// closest twin of the paper's reported 0.62%).
fn a1mm(exp: &Experiment) {
    println!("## A1b — Δ sweep (robust min-max monitor, box domain, kp = 0)\n");
    let deltas = [0.0, 2.5e-4, 5e-4, 7.5e-4, 1e-3, 1.5e-3, 2.5e-3];
    let points = sweep::delta_sweep(exp, MonitorKind::min_max(), &deltas, 0, Domain::Box);
    let mut t = Table::new(vec!["Δ".into(), "FP rate".into(), "mean detection".into()]);
    for p in &points {
        t.row(vec![
            format!("{}", p.delta),
            percent(p.fp_rate),
            percent(p.mean_detection),
        ]);
    }
    println!("{t}");
    report::save_json(&points, "results/a1mm.json").expect("write results/a1mm.json");
}

/// A2 — perturbation boundary kp sweep.
fn a2(exp: &Experiment) {
    println!("## A2 — perturbation boundary kp (robust pattern monitor, Δ = 0.001)\n");
    let layer = exp.monitored_boundary();
    let kps: Vec<usize> = (0..layer).collect();
    let points = sweep::kp_sweep(exp, pattern_family(), &kps, 0.001, Domain::Box);
    let mut t = Table::new(vec![
        "kp".into(),
        "FP rate".into(),
        "mean detection".into(),
        "coverage".into(),
    ]);
    for p in &points {
        t.row(vec![
            p.kp.to_string(),
            percent(p.row.fp_rate),
            percent(p.row.mean_detection()),
            p.row.coverage.map_or("-".into(), |c| format!("{c:.2e}")),
        ]);
    }
    println!("{t}");
    report::save_json(&points, "results/a2.json").expect("write results/a2.json");
}

/// A3 — bits per neuron.
fn a3(exp: &Experiment) {
    println!("## A3 — bits per neuron (interval monitors, quantile thresholds, Δ = 0.001)\n");
    let points = sweep::bits_sweep(exp, &[1, 2, 3], 0.001, Domain::Box);
    let mut t = Table::new(vec![
        "bits".into(),
        "std FP".into(),
        "std detection".into(),
        "robust FP".into(),
        "robust detection".into(),
        "robust coverage".into(),
    ]);
    for p in &points {
        t.row(vec![
            p.bits.to_string(),
            percent(p.standard.fp_rate),
            percent(p.standard.mean_detection()),
            percent(p.robust.fp_rate),
            percent(p.robust.mean_detection()),
            p.robust.coverage.map_or("-".into(), |c| format!("{c:.2e}")),
        ]);
    }
    println!("{t}");
    report::save_json(&points, "results/a3.json").expect("write results/a3.json");
}

/// A4 — abstract domain comparison.
fn a4(exp: &Experiment) {
    println!("## A4 — abstract domains of Definition 1 (Δ = 0.001)\n");
    let rows = sweep::domain_comparison(exp, 0.001, 16);
    let mut t = Table::new(vec![
        "domain".into(),
        "mean bound width".into(),
        "µs / estimate".into(),
        "robust-pattern FP".into(),
    ]);
    for r in &rows {
        t.row(vec![
            r.domain.clone(),
            format!("{:.4}", r.mean_width),
            format!("{:.1}", r.micros_per_sample),
            r.fp_rate.map_or("- (build skipped)".into(), percent),
        ]);
    }
    println!("{t}");
    report::save_json(&rows, "results/a4.json").expect("write results/a4.json");
}

/// A5 — BDD vs hash-set storage for `word2set`.
fn a5() {
    println!("## A5 — pattern storage: BDD vs explicit hash-set (word2set blow-up)\n");
    let vars = 32;
    let cubes = 64;
    let mut t = Table::new(vec![
        "don't-cares per cube".into(),
        "BDD nodes".into(),
        "BDD ms".into(),
        "hash-set words".into(),
        "hash-set ms".into(),
    ]);
    for dc in [0usize, 4, 8, 12, 16, 20] {
        let mut rng = Prng::seed(55);
        let mut bdd = Bdd::new(vars);
        let mut root = Bdd::FALSE;
        let start = Instant::now();
        let mut cube_list = Vec::new();
        for _ in 0..cubes {
            let free = rng.sample_indices(vars, dc);
            let cube: Vec<Option<bool>> = (0..vars)
                .map(|i| {
                    if free.contains(&i) {
                        None
                    } else {
                        Some(rng.chance(0.5))
                    }
                })
                .collect();
            root = bdd.insert_cube(root, &cube);
            cube_list.push(cube);
        }
        let bdd_ms = start.elapsed().as_secs_f64() * 1e3;
        let (hs_words, hs_ms) = if dc <= 16 {
            let start = Instant::now();
            let mut set = std::collections::HashSet::new();
            for cube in &cube_list {
                let free: Vec<usize> = cube
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.is_none())
                    .map(|(i, _)| i)
                    .collect();
                for mask in 0u64..(1u64 << free.len()) {
                    let mut w: Vec<bool> = cube.iter().map(|l| l.unwrap_or(false)).collect();
                    for (bit, &pos) in free.iter().enumerate() {
                        w[pos] = (mask >> bit) & 1 == 1;
                    }
                    set.insert(w);
                }
            }
            (
                set.len().to_string(),
                format!("{:.2}", start.elapsed().as_secs_f64() * 1e3),
            )
        } else {
            (format!("~2^{dc}·{cubes} (skipped)"), "-".into())
        };
        t.row(vec![
            dc.to_string(),
            bdd.reachable_nodes(root).to_string(),
            format!("{bdd_ms:.2}"),
            hs_words,
            hs_ms,
        ]);
    }
    println!("{t}");
}

/// A6 — construction scaling and query latency.
fn a6(exp: &Experiment) {
    println!("## A6 — construction & query cost\n");
    let net = exp.network();
    let layer = exp.monitored_boundary();
    let data = &exp.train_data().inputs;
    let mut t = Table::new(vec![
        "|Dtr|".into(),
        "standard build".into(),
        "robust build (serial)".into(),
        "robust build (parallel)".into(),
    ]);
    for frac in [4usize, 2, 1] {
        let n = data.len() / frac;
        let slice = &data[..n];
        let time = |robust: bool, par: bool| -> f64 {
            let start = Instant::now();
            let mut b = MonitorBuilder::new(net, layer).parallel(par);
            if robust {
                b = b.robust(0.01, 0, Domain::Box);
            }
            let _ = b.build(MonitorKind::pattern(), slice).unwrap();
            start.elapsed().as_secs_f64()
        };
        t.row(vec![
            n.to_string(),
            seconds(time(false, false)),
            seconds(time(true, false)),
            seconds(time(true, true)),
        ]);
    }
    println!("{t}");

    let row = exp.run_monitor("pattern", MonitorKind::pattern(), None);
    println!(
        "mean query latency (pattern monitor, incl. forward pass): {:.1} µs\n",
        row.query_nanos / 1e3
    );
}
