//! CI gate for the committed golden artifact.
//!
//! Loads `tests/golden_artifact.json` from the workspace root with the
//! full typed validation path (`MonitorArtifact::load_json`), rebuilds the
//! same deterministic fixture from source, and fails (non-zero exit)
//! unless
//!
//! 1. the committed file still loads under the current
//!    `FORMAT_VERSION` and validation rules, and
//! 2. the loaded monitor's verdicts on the golden probe corpus are
//!    **bit-identical** to the freshly built monitor's.
//!
//! Together these catch both accidental format breaks (a schema change
//! that silently orphans deployed artifacts) and semantic drift (a
//! construction change that would make reloaded monitors disagree with
//! newly built ones).
//!
//! After an *intentional* format bump, regenerate the file:
//!
//! ```text
//! NAPMON_REGEN_GOLDEN=1 cargo run -p napmon-bench --bin validate_artifact
//! ```

use napmon_bench::golden;
use napmon_core::Monitor;

fn golden_path() -> String {
    format!(
        "{}/../../tests/golden_artifact.json",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn main() {
    // Both compatibility surfaces, on the record in every CI log: the
    // artifact schema this build reads/writes, and the full set of wire
    // protocol versions it accepts. The set is read from the wire crate
    // rather than hardcoded — a hardcoded "v1" survived the v2 bump here
    // once already — and the rejected legacy epoch is named so a log
    // reader knows what v1 peers will be told.
    let supported = napmon_wire::SUPPORTED_WIRE_PROTOCOL_VERSIONS
        .iter()
        .map(|v| format!("v{v}"))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "compatibility: artifact format v{}, wire protocol versions [{supported}] \
         (v{} peers get a typed UnsupportedVersion rejection)",
        napmon_artifact::FORMAT_VERSION,
        napmon_wire::LEGACY_WIRE_PROTOCOL_VERSION,
    );

    let path = golden_path();
    let fresh = golden::build();

    if std::env::var_os("NAPMON_REGEN_GOLDEN").is_some() {
        fresh.save_json(&path).expect("write golden artifact");
        println!("regenerated {path}");
        println!("  {fresh}");
        return;
    }

    let loaded = napmon_artifact::MonitorArtifact::load_json(&path).unwrap_or_else(|e| {
        panic!(
            "golden artifact at {path} no longer loads: {e}\n\
             (if the format changed intentionally, bump FORMAT_VERSION and \
             regenerate with NAPMON_REGEN_GOLDEN=1)"
        )
    });

    assert_eq!(
        loaded.spec(),
        fresh.spec(),
        "golden spec drifted from the fixture"
    );
    assert_eq!(
        loaded.network(),
        fresh.network(),
        "golden network drifted from the fixture"
    );
    assert_eq!(
        loaded.stats(),
        fresh.stats(),
        "golden build stats drifted from the fixture"
    );

    let probes = golden::probes();
    let expected = fresh
        .monitor()
        .query_batch(fresh.network(), &probes)
        .expect("fresh golden monitor queries");
    let got = loaded
        .monitor()
        .query_batch(loaded.network(), &probes)
        .expect("loaded golden monitor queries");
    assert_eq!(
        got, expected,
        "golden artifact verdicts drifted from a fresh build"
    );
    let warnings = expected.iter().filter(|v| v.warning).count();
    assert!(
        warnings > 0 && warnings < probes.len(),
        "golden probe corpus must exercise both verdict branches \
         ({warnings}/{} warned)",
        probes.len()
    );

    println!(
        "golden artifact ok: {} probes bit-identical ({warnings} warnings), {}",
        probes.len(),
        loaded
    );
}
