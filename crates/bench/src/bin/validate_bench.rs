//! CI gate for the benchmark reports.
//!
//! Two modes:
//!
//! **Schema mode** (default): parses `BENCH_query.json`,
//! `BENCH_serve.json`, `BENCH_artifact.json`, `BENCH_store.json`, and
//! `BENCH_wire.json` at the workspace root and fails (non-zero exit)
//! unless all carry the expected schema with sane values. Run after the
//! benches (smoke mode suffices):
//!
//! ```text
//! NAPMON_BENCH_SMOKE=1 cargo bench -p napmon-bench --bench query_throughput
//! NAPMON_BENCH_SMOKE=1 cargo bench -p napmon-bench --bench serve_throughput
//! NAPMON_BENCH_SMOKE=1 cargo bench -p napmon-bench --bench artifact
//! NAPMON_BENCH_SMOKE=1 cargo bench -p napmon-bench --bench store_throughput
//! NAPMON_BENCH_SMOKE=1 cargo bench -p napmon-bench --bench wire_throughput
//! cargo run -p napmon-bench --bin validate_bench
//! ```
//!
//! **Compare mode** (`--compare <baseline-dir>`): additionally diffs the
//! freshly generated reports against baseline copies in `<baseline-dir>`
//! (CI copies the committed files aside before the smoke runs) and fails
//! on
//!
//! - **schema drift** — a top-level or per-row key appearing or vanishing
//!   relative to the baseline, or the row matrix changing shape; and
//! - **throughput regression** — any qps-like figure dropping more than
//!   the tolerance (default 30%; tune with `NAPMON_BENCH_TOLERANCE=0.5`
//!   for 50%) below its baseline.
//!
//! Latency figures are only compared when *both* reports come from
//! non-smoke runs — a 50 ms smoke measurement is noise, not a baseline.
//! Absolute throughput is only compared when both reports were measured
//! on the same machine shape (equal `threads`); cross-hardware, the gate
//! falls back to *within-run ratios* (packed-vs-naive speedups, the wire
//! overhead multiple), which divide two figures from the same run so the
//! hardware cancels — the gate keeps teeth on any runner, and every skip
//! is printed so the CI log records it.

use serde_json::Value;

/// Reads `name` from the given directory (workspace root by default).
fn load_from(dir: &str, name: &str) -> Value {
    let path = if dir.is_empty() {
        format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"))
    } else {
        format!("{dir}/{name}")
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run the benches first)"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"))
}

fn load(name: &str) -> Value {
    load_from("", name)
}

/// Asserts `value[key]` exists (is not null) and returns it.
fn field<'a>(name: &str, value: &'a Value, key: &str) -> &'a Value {
    let v = &value[key];
    assert!(!matches!(v, Value::Null), "{name}: missing key `{key}`");
    v
}

/// Asserts `value[key]` is a strictly positive number.
fn positive(name: &str, value: &Value, key: &str) -> f64 {
    let v = field(name, value, key);
    let Value::Number(n) = v else {
        panic!("{name}: `{key}` is not a number");
    };
    let x = n.as_f64();
    assert!(
        x.is_finite() && x > 0.0,
        "{name}: `{key}` should be positive, got {x}"
    );
    x
}

fn validate_query() {
    let name = "BENCH_query.json";
    let report = load(name);
    for key in ["train_size", "probe_count", "input_dim", "threads"] {
        positive(name, &report, key);
    }
    field(name, &report, "smoke");
    positive(name, &report, "min_speedup_vs_naive_vec_bool");
    positive(name, &report, "min_bdd_membership_speedup");
    let Value::Array(results) = field(name, &report, "results") else {
        panic!("{name}: `results` is not an array");
    };
    assert!(!results.is_empty(), "{name}: `results` is empty");
    for row in results {
        field(name, row, "neurons");
        field(name, row, "backend");
        for key in [
            "membership_qps_packed",
            "membership_qps_naive",
            "membership_speedup",
            "end_to_end_qps",
            "end_to_end_parallel_qps",
        ] {
            positive(name, row, key);
        }
    }
    // The Hamming-ball matrix: packed per-query scan vs the bit-sliced
    // batch kernel, one row per word width.
    let Value::Array(hamming) = field(name, &report, "hamming_results") else {
        panic!("{name}: `hamming_results` is not an array");
    };
    assert!(!hamming.is_empty(), "{name}: `hamming_results` is empty");
    for row in hamming {
        for key in [
            "word_bits",
            "patterns",
            "tau",
            "hamming_qps_packed",
            "hamming_qps_sliced_batch",
            "sliced_hamming_speedup",
        ] {
            positive(name, row, key);
        }
    }
    let min_sliced = positive(name, &report, "min_sliced_hamming_speedup");
    // The batch-kernel acceptance bar. Only enforced on full runs: a
    // smoke window is tens of milliseconds and its ratios are diffed (with
    // tolerance) by compare mode instead of hard-gated here.
    if !is_smoke(&report) {
        assert!(
            min_sliced >= 3.0,
            "{name}: sliced batch kernel is only {min_sliced:.2}x the packed scan \
             (full runs must clear 3x)"
        );
    }
    println!(
        "{name}: ok ({} result rows, {} hamming rows)",
        results.len(),
        hamming.len()
    );
}

fn validate_serve() {
    let name = "BENCH_serve.json";
    let report = load(name);
    for key in ["threads", "train_size", "batch_size", "micro_batch"] {
        positive(name, &report, key);
    }
    positive(name, &report, "direct_qps");
    let speedup = positive(name, &report, "speedup_4shard_vs_1shard");
    // Shard scaling is hardware-bound: a single-core container is ~1.0x by
    // construction, so the acceptance threshold is only enforceable where
    // the 4 shards can actually run in parallel.
    let threads = positive(name, &report, "threads");
    if threads >= 4.0 {
        assert!(
            speedup >= 1.5,
            "{name}: 4-shard speedup {speedup:.2}x < 1.5x on a {threads}-thread machine \
             — shard scaling has regressed"
        );
    } else {
        println!(
            "{name}: note: 4-shard speedup threshold not enforced \
             ({threads} thread(s) on this machine)"
        );
    }
    field(name, &report, "notes");
    field(name, &report, "smoke");
    // The registry-dispatch figures: the routing layer's price and the
    // shadow mirror's, both as within-run ratios against the 1-shard
    // engine row, plus the hot-swap flip latency.
    positive(name, &report, "registry_dispatch_qps");
    positive(name, &report, "registry_dispatch_overhead");
    positive(name, &report, "registry_flip_latency_us");
    let shadow_overhead = positive(name, &report, "registry_shadow_overhead");
    // The shadow contract — candidate traffic stays off the hot path, so
    // one attached shadow costs ≤ 10% — only holds where the mirror and
    // the shadow engine can run on their own core; on a single-core box
    // they time-share with the hot path by construction. Same
    // hardware-awareness as the shard-scaling threshold above.
    if threads >= 2.0 && !is_smoke(&report) {
        assert!(
            shadow_overhead <= 1.10,
            "{name}: one attached shadow costs {:.1}% on a {threads}-thread machine \
             — the mirror has leaked onto the hot path",
            (shadow_overhead - 1.0) * 100.0
        );
    } else {
        println!(
            "{name}: note: shadow-overhead threshold not enforced \
             ({threads} thread(s), smoke = {})",
            is_smoke(&report)
        );
    }
    // The obs-probe overhead row: schema always, the ≤ 1.05 ceiling only
    // where the measurement window is real (a 50 ms smoke window's ratio
    // is noise) — and only where the probes were actually compiled in,
    // since a no-op shim build prices nothing.
    let obs = field(name, &report, "obs_overhead").clone();
    positive(name, &obs, "qps_uninstrumented");
    positive(name, &obs, "qps_instrumented");
    let obs_ratio = positive(name, &obs, "ratio");
    let probes_enabled = matches!(&obs["probes_enabled"], Value::Bool(true));
    if probes_enabled && !is_smoke(&report) {
        assert!(
            obs_ratio <= 1.05,
            "{name}: armed observability probes cost {:.1}% of serving throughput \
             (ceiling 5%) — a probe has leaked into the hot path",
            (obs_ratio - 1.0) * 100.0
        );
    } else {
        println!(
            "{name}: note: obs-overhead ceiling not enforced \
             (probes_enabled = {probes_enabled}, smoke = {})",
            is_smoke(&report)
        );
    }
    let Value::Array(rows) = field(name, &report, "rows") else {
        panic!("{name}: `rows` is not an array");
    };
    let shard_counts: Vec<u64> = rows
        .iter()
        .map(|row| {
            positive(name, row, "qps");
            positive(name, row, "speedup_vs_1shard");
            positive(name, row, "mean_latency_ns");
            field(name, row, "warn_rate");
            positive(name, row, "shards") as u64
        })
        .collect();
    assert_eq!(
        shard_counts,
        vec![1, 2, 4],
        "{name}: expected 1/2/4-shard rows"
    );
    println!("{name}: ok ({} shard rows)", rows.len());
}

fn validate_artifact_report() {
    let name = "BENCH_artifact.json";
    let report = load(name);
    for key in [
        "train_size",
        "input_dim",
        "neurons",
        "save_load_reps",
        "threads",
    ] {
        positive(name, &report, key);
    }
    field(name, &report, "smoke");
    field(name, &report, "notes");
    let Value::Array(rows) = field(name, &report, "rows") else {
        panic!("{name}: `rows` is not an array");
    };
    assert!(!rows.is_empty(), "{name}: `rows` is empty");
    let mut backends = std::collections::BTreeSet::new();
    for row in rows {
        field(name, row, "kind");
        let Value::String(backend) = field(name, row, "backend") else {
            panic!("{name}: `backend` is not a string");
        };
        backends.insert(backend.clone());
        field(name, row, "robust");
        for key in ["save_ms", "load_ms", "bytes"] {
            positive(name, row, key);
        }
        // build_seconds may round to 0 for min-max; only require presence
        // and non-negativity.
        let Value::Number(n) = field(name, row, "build_seconds") else {
            panic!("{name}: `build_seconds` is not a number");
        };
        assert!(n.as_f64() >= 0.0, "{name}: negative build_seconds");
        assert_eq!(
            field(name, row, "roundtrip_identical"),
            &Value::Bool(true),
            "{name}: a save->load round trip drifted"
        );
    }
    // The matrix must cover both pattern stores (hash *and* BDD arenas).
    assert!(
        backends.contains("bdd") && backends.contains("hash"),
        "{name}: rows must cover both the BDD and hash backends, got {backends:?}"
    );
    println!("{name}: ok ({} rows)", rows.len());
}

fn validate_store_report() {
    let name = "BENCH_store.json";
    let report = load(name);
    for key in ["appends", "probes", "hamming_tau", "threads"] {
        positive(name, &report, key);
    }
    field(name, &report, "smoke");
    field(name, &report, "notes");
    let Value::Array(rows) = field(name, &report, "rows") else {
        panic!("{name}: `rows` is not an array");
    };
    assert!(!rows.is_empty(), "{name}: `rows` is empty");
    let mut kinds = std::collections::BTreeSet::new();
    for row in rows {
        let Value::String(kind) = field(name, row, "kind") else {
            panic!("{name}: `kind` is not a string");
        };
        kinds.insert(kind.clone());
        for key in [
            "word_bits",
            "words",
            "append_qps",
            "exact_ns_memory",
            "exact_ns_store",
            "hamming_ns_memory",
            "hamming_ns_store",
            "hamming_store_speedup",
            "disk_bytes",
        ] {
            positive(name, row, key);
        }
        // A store holding N words of W bits cannot occupy fewer than
        // N·W/8 bytes — catches a bench that silently stopped writing.
        let words = positive(name, row, "words");
        let bits = positive(name, row, "word_bits");
        let bytes = positive(name, row, "disk_bytes");
        assert!(
            bytes >= words * bits / 8.0,
            "{name}: {kind}: {bytes} disk bytes cannot hold {words} words of {bits} bits"
        );
    }
    // The matrix must cover the on-off and at least one interval width.
    assert!(
        kinds.contains("pattern-1bit") && kinds.iter().any(|k| k.starts_with("interval")),
        "{name}: rows must cover pattern and interval kinds, got {kinds:?}"
    );
    println!("{name}: ok ({} rows)", rows.len());
}

fn validate_wire_report() {
    let name = "BENCH_wire.json";
    let report = load(name);
    for key in ["threads", "train_size", "batch_size", "input_dim", "shards"] {
        positive(name, &report, key);
    }
    positive(name, &report, "direct_qps");
    field(name, &report, "smoke");
    field(name, &report, "notes");
    // The network boundary must cost something, but not orders of
    // magnitude: an overhead below 1.0x means the baseline broke, far
    // above ~20x means the framing path regressed catastrophically.
    let overhead = positive(name, &report, "wire_overhead_1client");
    assert!(
        (0.5..50.0).contains(&overhead),
        "{name}: wire_overhead_1client {overhead:.2}x is implausible"
    );
    // The idle-herd pass: the reactor must have held a real herd, served
    // a client beside it at a plausible price, and — where /proc exists —
    // done so on O(1) wire threads (one reactor plus a bounded pool).
    let high = field(name, &report, "high_connection");
    positive(name, high, "qps_1client");
    let idle = positive(name, high, "idle_conns");
    assert!(
        idle >= 128.0,
        "{name}: high_connection held only {idle} conns"
    );
    let Value::Number(wire_threads) = field(name, high, "wire_threads") else {
        panic!("{name}: `wire_threads` is not a number");
    };
    let wire_threads = wire_threads.as_f64();
    assert!(
        (0.0..=16.0).contains(&wire_threads),
        "{name}: {wire_threads} wire threads for {idle} idle conns — the reactor scaled with peers"
    );
    let high_overhead = positive(name, &report, "high_conn_overhead");
    assert!(
        (0.5..50.0).contains(&high_overhead),
        "{name}: high_conn_overhead {high_overhead:.2}x is implausible"
    );
    assert_eq!(
        high_overhead.to_bits(),
        positive(name, high, "overhead_vs_direct").to_bits(),
        "{name}: high_conn_overhead must mirror high_connection.overhead_vs_direct"
    );
    let Value::Array(rows) = field(name, &report, "rows") else {
        panic!("{name}: `rows` is not an array");
    };
    let client_counts: Vec<u64> = rows
        .iter()
        .map(|row| {
            positive(name, row, "qps");
            positive(name, row, "speedup_vs_1client");
            positive(name, row, "batch_rtt_us");
            positive(name, row, "requests");
            // Degradation counters are legitimately zero on a healthy
            // run, so they are required but only bounded below.
            for key in WIRE_DEGRADED_KEYS {
                let Value::Number(n) = field(name, row, key) else {
                    panic!("{name}: `{key}` is not a number");
                };
                assert!(n.as_f64() >= 0.0, "{name}: `{key}` is negative");
            }
            positive(name, row, "clients") as u64
        })
        .collect();
    assert_eq!(
        client_counts,
        vec![1, 2, 4],
        "{name}: expected 1/2/4-client rows"
    );
    println!("{name}: ok ({} client rows)", rows.len());
}

// ---- compare mode -------------------------------------------------------

/// How one report file is diffed against its baseline.
struct CompareSpec {
    name: &'static str,
    /// The row-array key (`rows` or `results`).
    row_field: &'static str,
    /// Fields identifying a row across runs (order-stable anyway, but the
    /// identity makes drift messages precise).
    row_identity: &'static [&'static str],
    /// Top-level throughput figures (higher is better).
    top_throughput: &'static [&'static str],
    /// Per-row throughput figures (higher is better).
    row_throughput: &'static [&'static str],
    /// Per-row latency figures (lower is better; smoke runs skip these).
    row_latency: &'static [&'static str],
    /// Top-level *within-run ratios*, higher is better. A ratio divides
    /// two figures measured in the same run on the same machine, so the
    /// hardware cancels to first order — these are diffed even across
    /// machine shapes, which is what keeps the gate non-vacuous when the
    /// committed baseline and the CI runner differ.
    top_ratio_floor: &'static [&'static str],
    /// Top-level within-run ratios, lower is better (overheads).
    top_ratio_ceiling: &'static [&'static str],
    /// Per-row within-run ratios, higher is better.
    row_ratio_floor: &'static [&'static str],
    /// Per-row keys that may appear in the fresh report without existing
    /// in the baseline — a one-way tolerance for *additive* schema
    /// growth, so a PR introducing new counters does not trip the drift
    /// gate against the pre-PR baseline. A key *vanishing* is still
    /// drift, and once the baseline carries the key it is compared like
    /// any other.
    row_tolerated_new: &'static [&'static str],
    /// Same one-way tolerance for *top-level* keys. If the spec's own
    /// `row_field` is listed here and absent from the baseline, the whole
    /// spec is skipped (with a printed note) instead of failing — that is
    /// how a brand-new row matrix rides past a pre-PR baseline.
    top_tolerated_new: &'static [&'static str],
}

/// The degradation counters `BENCH_wire.json` rows grew with the
/// graceful-degradation work; shared by schema validation and the
/// compare-mode tolerance.
const WIRE_DEGRADED_KEYS: [&str; 3] = ["degraded_busy", "degraded_shed", "degraded_evicted"];

/// Top-level keys `BENCH_wire.json` grew with the reactor rework (the
/// idle-herd row and its liftable overhead ratio); tolerated one-way
/// against pre-reactor baselines.
const WIRE_TOP_TOLERATED: [&str; 2] = ["high_connection", "high_conn_overhead"];

/// Top-level keys `BENCH_query.json` grew with the bit-sliced batch
/// kernel; tolerated one-way against pre-kernel baselines. Shared by both
/// query specs so their top-level drift checks agree.
const QUERY_TOP_TOLERATED: [&str; 3] = ["hamming_results", "min_sliced_hamming_speedup", "smoke"];

/// Top-level keys `BENCH_serve.json` grew with the multi-tenant registry
/// (dispatch/shadow overheads, flip latency, structured smoke flag) and
/// the observability work (probe overhead row); tolerated one-way
/// against older baselines.
const SERVE_TOP_TOLERATED: [&str; 6] = [
    "registry_dispatch_qps",
    "registry_dispatch_overhead",
    "registry_shadow_overhead",
    "registry_flip_latency_us",
    "obs_overhead",
    "smoke",
];

const COMPARE_SPECS: [CompareSpec; 6] = [
    CompareSpec {
        name: "BENCH_query.json",
        row_field: "results",
        row_identity: &["neurons", "backend"],
        top_throughput: &[],
        row_throughput: &["membership_qps_packed", "end_to_end_qps"],
        row_latency: &[],
        top_ratio_floor: &["min_speedup_vs_naive_vec_bool"],
        top_ratio_ceiling: &[],
        row_ratio_floor: &["membership_speedup"],
        row_tolerated_new: &[],
        top_tolerated_new: &QUERY_TOP_TOLERATED,
    },
    // Second view of the same file: the Hamming-ball matrix added with
    // the bit-sliced batch kernel. Its row array did not exist in older
    // baselines, so the whole spec is tolerated-new.
    CompareSpec {
        name: "BENCH_query.json",
        row_field: "hamming_results",
        row_identity: &["word_bits"],
        top_throughput: &[],
        row_throughput: &["hamming_qps_packed", "hamming_qps_sliced_batch"],
        row_latency: &[],
        // Gate on the *minimum* speedup only: per-row speedups shift with
        // the measurement regime (smoke windows run cold), but the min —
        // the narrowest-width row — is stable across both.
        top_ratio_floor: &["min_sliced_hamming_speedup"],
        top_ratio_ceiling: &[],
        row_ratio_floor: &[],
        row_tolerated_new: &[],
        top_tolerated_new: &QUERY_TOP_TOLERATED,
    },
    CompareSpec {
        name: "BENCH_serve.json",
        row_field: "rows",
        row_identity: &["shards"],
        top_throughput: &["direct_qps"],
        row_throughput: &["qps"],
        row_latency: &["mean_latency_ns"],
        // speedup_vs_1shard is parallel *capacity*, not a within-run
        // price ratio — it does not cancel hardware, so it lives in
        // validate_serve's threads-aware check instead. The registry
        // overheads *are* within-run price ratios (both sides of each
        // division come from the same run), so they gate here; flip
        // latency is absolute wall time and stays schema-only.
        top_ratio_floor: &[],
        top_ratio_ceiling: &["registry_dispatch_overhead", "registry_shadow_overhead"],
        row_ratio_floor: &[],
        row_tolerated_new: &[],
        top_tolerated_new: &SERVE_TOP_TOLERATED,
    },
    CompareSpec {
        name: "BENCH_artifact.json",
        row_field: "rows",
        row_identity: &["kind", "backend", "robust"],
        top_throughput: &[],
        row_throughput: &[],
        row_latency: &["save_ms", "load_ms"],
        top_ratio_floor: &[],
        top_ratio_ceiling: &[],
        row_ratio_floor: &[],
        row_tolerated_new: &[],
        top_tolerated_new: &[],
    },
    CompareSpec {
        name: "BENCH_store.json",
        row_field: "rows",
        row_identity: &["kind"],
        top_throughput: &[],
        row_throughput: &["append_qps"],
        // hamming_ns_store (the partition-pruned kernel) regresses are
        // caught here on full-vs-full runs; hamming_store_speedup itself
        // scales with store size (a 4k-word smoke store prunes less than
        // a 100k-word one), so it is schema-checked but not ratio-gated.
        row_latency: &["exact_ns_store", "hamming_ns_store"],
        top_ratio_floor: &[],
        top_ratio_ceiling: &[],
        row_ratio_floor: &[],
        row_tolerated_new: &["hamming_store_speedup"],
        top_tolerated_new: &[],
    },
    CompareSpec {
        name: "BENCH_wire.json",
        row_field: "rows",
        row_identity: &["clients"],
        top_throughput: &["direct_qps"],
        row_throughput: &["qps"],
        row_latency: &["batch_rtt_us"],
        top_ratio_floor: &[],
        top_ratio_ceiling: &["wire_overhead_1client", "high_conn_overhead"],
        row_ratio_floor: &[],
        row_tolerated_new: &WIRE_DEGRADED_KEYS,
        top_tolerated_new: &WIRE_TOP_TOLERATED,
    },
];

/// The regression tolerance: a figure may be at most this fraction worse
/// than its baseline (`NAPMON_BENCH_TOLERANCE`, default 0.30).
fn tolerance() -> f64 {
    match std::env::var("NAPMON_BENCH_TOLERANCE") {
        Ok(raw) => {
            let t: f64 = raw
                .parse()
                .unwrap_or_else(|_| panic!("NAPMON_BENCH_TOLERANCE `{raw}` is not a number"));
            assert!(
                t.is_finite() && t > 0.0,
                "NAPMON_BENCH_TOLERANCE must be a positive fraction, got {t}"
            );
            t
        }
        Err(_) => 0.30,
    }
}

/// Whether a report came from a smoke run: the structured `smoke` field
/// where the schema has one, the notes marker otherwise.
fn is_smoke(report: &Value) -> bool {
    match &report["smoke"] {
        Value::Bool(b) => *b,
        _ => matches!(&report["notes"], Value::String(s) if s.contains("smoke = true")),
    }
}

fn sorted_keys(value: &Value) -> Vec<String> {
    match value {
        Value::Object(map) => {
            let mut keys: Vec<String> = map.keys().cloned().collect();
            keys.sort();
            keys
        }
        _ => Vec::new(),
    }
}

/// A row's identity string, for drift messages.
fn identity(spec: &CompareSpec, row: &Value) -> String {
    spec.row_identity
        .iter()
        .map(|k| format!("{k}={:?}", row[*k]))
        .collect::<Vec<_>>()
        .join(",")
}

fn number(name: &str, value: &Value, key: &str) -> f64 {
    match &value[key] {
        Value::Number(n) => n.as_f64(),
        _ => panic!("{name}: `{key}` is not a number"),
    }
}

/// Diffs one fresh report against its baseline. Returns the number of
/// figures actually compared (so the caller can report coverage).
fn compare_report(spec: &CompareSpec, baseline_dir: &str, tol: f64) -> usize {
    let name = spec.name;
    let fresh = load(name);
    let baseline = load_from(baseline_dir, name);

    // Schema drift: key sets must agree exactly, top-level and per row.
    // Top-level keys get the same one-way additive tolerance as row keys.
    let top_tolerated_only_fresh = |key: &String| {
        spec.top_tolerated_new.contains(&key.as_str())
            && matches!(baseline[key.as_str()], Value::Null)
    };
    let fresh_top_keys: Vec<String> = sorted_keys(&fresh)
        .into_iter()
        .filter(|k| !top_tolerated_only_fresh(k))
        .collect();
    let top_skipped = sorted_keys(&fresh).len() - fresh_top_keys.len();
    if top_skipped > 0 {
        println!("{name}: tolerating {top_skipped} new top-level key(s) absent from the baseline");
    }
    assert_eq!(
        fresh_top_keys,
        sorted_keys(&baseline),
        "{name}: top-level schema drifted from the baseline"
    );
    // A tolerated-new row matrix has nothing to diff against yet.
    if matches!(baseline[spec.row_field], Value::Null)
        && spec.top_tolerated_new.contains(&spec.row_field)
    {
        println!(
            "{name}: `{}` diff skipped (matrix absent from the baseline)",
            spec.row_field
        );
        return 0;
    }
    let (Value::Array(fresh_rows), Value::Array(base_rows)) =
        (&fresh[spec.row_field], &baseline[spec.row_field])
    else {
        panic!(
            "{name}: `{}` is not an array in both reports",
            spec.row_field
        );
    };
    assert_eq!(
        fresh_rows.len(),
        base_rows.len(),
        "{name}: row count drifted from the baseline"
    );
    for (fresh_row, base_row) in fresh_rows.iter().zip(base_rows) {
        assert_eq!(
            identity(spec, fresh_row),
            identity(spec, base_row),
            "{name}: row identity drifted from the baseline"
        );
        // Additive tolerance: a key on the allowlist may exist in the
        // fresh row while the (older) baseline lacks it. Everything else
        // — including a tolerated key *vanishing* — is still drift.
        let tolerated_only_fresh = |key: &String| {
            spec.row_tolerated_new.contains(&key.as_str())
                && matches!(base_row[key.as_str()], Value::Null)
        };
        let fresh_keys: Vec<String> = sorted_keys(fresh_row)
            .into_iter()
            .filter(|k| !tolerated_only_fresh(k))
            .collect();
        let skipped = sorted_keys(fresh_row).len() - fresh_keys.len();
        if skipped > 0 {
            println!(
                "{name}: {} tolerating {skipped} new key(s) absent from the baseline",
                identity(spec, fresh_row)
            );
        }
        assert_eq!(
            fresh_keys,
            sorted_keys(base_row),
            "{name}: row schema drifted from the baseline ({})",
            identity(spec, fresh_row)
        );
    }

    let smoke = is_smoke(&fresh) || is_smoke(&baseline);
    let mut compared = 0usize;

    // Within-run ratios first: each divides two figures from the same run
    // on the same machine, so the hardware cancels to first order and
    // they are diffable across machine shapes — without them the gate
    // would be vacuous whenever the CI runner differs from the machine
    // that produced the committed baselines.
    for key in spec.top_ratio_floor {
        if matches!(baseline[*key], Value::Null) && spec.top_tolerated_new.contains(key) {
            println!("{name}: {key} diff skipped (figure absent from the baseline)");
            continue;
        }
        compared += 1;
        let fresh_v = number(name, &fresh, key);
        let base_v = number(name, &baseline, key);
        assert!(
            fresh_v >= base_v * (1.0 - tol),
            "{name}: {key}: within-run ratio regressed {:.1}% (fresh {fresh_v:.2} vs \
             baseline {base_v:.2}, tolerance {:.0}%)",
            (1.0 - fresh_v / base_v) * 100.0,
            tol * 100.0
        );
    }
    for key in spec.top_ratio_ceiling {
        // Same one-way tolerance as the floor loop above: a ceiling ratio
        // introduced by this PR has no baseline figure to diff against.
        if matches!(baseline[*key], Value::Null) && spec.top_tolerated_new.contains(key) {
            println!("{name}: {key} diff skipped (figure absent from the baseline)");
            continue;
        }
        compared += 1;
        let fresh_v = number(name, &fresh, key);
        let base_v = number(name, &baseline, key);
        assert!(
            fresh_v <= base_v * (1.0 + tol),
            "{name}: {key}: within-run overhead regressed {:.1}% (fresh {fresh_v:.2} vs \
             baseline {base_v:.2}, tolerance {:.0}%)",
            (fresh_v / base_v - 1.0) * 100.0,
            tol * 100.0
        );
    }
    for (fresh_row, base_row) in fresh_rows.iter().zip(base_rows) {
        for key in spec.row_ratio_floor {
            if matches!(base_row[*key], Value::Null) && spec.row_tolerated_new.contains(key) {
                println!(
                    "{name}: {} {key} diff skipped (figure absent from the baseline)",
                    identity(spec, fresh_row)
                );
                continue;
            }
            compared += 1;
            let fresh_v = number(name, fresh_row, key);
            let base_v = number(name, base_row, key);
            assert!(
                fresh_v >= base_v * (1.0 - tol),
                "{name}: {} {key}: within-run ratio regressed {:.1}% (fresh {fresh_v:.2} \
                 vs baseline {base_v:.2}, tolerance {:.0}%)",
                identity(spec, fresh_row),
                (1.0 - fresh_v / base_v) * 100.0,
                tol * 100.0
            );
        }
    }

    // Absolute figures only mean something on the same machine shape:
    // every report records `threads`, and a report missing it (a stale
    // baseline) has an unknown shape, which is as incomparable as a
    // different one.
    let comparable_hw = match (&fresh["threads"], &baseline["threads"]) {
        (Value::Number(a), Value::Number(b)) => a.as_f64() == b.as_f64(),
        _ => false,
    };
    if !comparable_hw {
        println!(
            "{name}: schema + ratios ok ({compared} ratio figures); absolute diff skipped \
             (baseline measured on {:?} thread(s), this machine has {:?})",
            baseline["threads"], fresh["threads"]
        );
        return compared;
    }
    let mut check_throughput = |label: String, fresh_v: f64, base_v: f64| {
        compared += 1;
        let floor = base_v * (1.0 - tol);
        assert!(
            fresh_v >= floor,
            "{name}: {label}: throughput regressed {:.1}% (fresh {fresh_v:.0} vs \
             baseline {base_v:.0}, tolerance {:.0}%)",
            (1.0 - fresh_v / base_v) * 100.0,
            tol * 100.0
        );
    };
    for key in spec.top_throughput {
        check_throughput(
            (*key).to_string(),
            number(name, &fresh, key),
            number(name, &baseline, key),
        );
    }
    for (fresh_row, base_row) in fresh_rows.iter().zip(base_rows) {
        for key in spec.row_throughput {
            check_throughput(
                format!("{} {key}", identity(spec, fresh_row)),
                number(name, fresh_row, key),
                number(name, base_row, key),
            );
        }
    }

    if smoke {
        if !spec.row_latency.is_empty() {
            println!("{name}: latency diff skipped (smoke run)");
        }
    } else {
        for (fresh_row, base_row) in fresh_rows.iter().zip(base_rows) {
            for key in spec.row_latency {
                compared += 1;
                let fresh_v = number(name, fresh_row, key);
                let base_v = number(name, base_row, key);
                let ceiling = base_v * (1.0 + tol);
                assert!(
                    fresh_v <= ceiling,
                    "{name}: {} {key}: latency regressed {:.1}% (fresh {fresh_v:.0} vs \
                     baseline {base_v:.0}, tolerance {:.0}%)",
                    identity(spec, fresh_row),
                    (fresh_v / base_v - 1.0) * 100.0,
                    tol * 100.0
                );
            }
        }
    }
    println!(
        "{name}: compare ok ({compared} figures within {:.0}%)",
        tol * 100.0
    );
    compared
}

fn compare_all(baseline_dir: &str) {
    let tol = tolerance();
    println!(
        "comparing against baselines in {baseline_dir} (tolerance {:.0}%)",
        tol * 100.0
    );
    let mut compared = 0usize;
    for spec in &COMPARE_SPECS {
        compared += compare_report(spec, baseline_dir, tol);
    }
    println!("bench regression gate passed ({compared} figures diffed)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    validate_query();
    validate_serve();
    validate_artifact_report();
    validate_store_report();
    validate_wire_report();
    println!("benchmark reports validated");
    match args.get(1).map(String::as_str) {
        Some("--compare") => {
            let dir = args
                .get(2)
                .expect("usage: validate_bench [--compare <baseline-dir>]");
            compare_all(dir);
        }
        Some(other) => panic!("unknown argument `{other}` (expected --compare <baseline-dir>)"),
        None => {}
    }
}
