//! CI gate for the benchmark reports.
//!
//! Parses `BENCH_query.json`, `BENCH_serve.json`, `BENCH_artifact.json`,
//! and `BENCH_store.json` at the workspace root and fails (non-zero exit)
//! unless all carry the expected schema with sane values. Run after the
//! benches (smoke mode suffices):
//!
//! ```text
//! NAPMON_BENCH_SMOKE=1 cargo bench -p napmon-bench --bench query_throughput
//! NAPMON_BENCH_SMOKE=1 cargo bench -p napmon-bench --bench serve_throughput
//! NAPMON_BENCH_SMOKE=1 cargo bench -p napmon-bench --bench artifact
//! NAPMON_BENCH_SMOKE=1 cargo bench -p napmon-bench --bench store_throughput
//! cargo run -p napmon-bench --bin validate_bench
//! ```

use serde_json::Value;

/// Reads `name` from the workspace root and parses it.
fn load(name: &str) -> Value {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run the benches first)"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"))
}

/// Asserts `value[key]` exists (is not null) and returns it.
fn field<'a>(name: &str, value: &'a Value, key: &str) -> &'a Value {
    let v = &value[key];
    assert!(!matches!(v, Value::Null), "{name}: missing key `{key}`");
    v
}

/// Asserts `value[key]` is a strictly positive number.
fn positive(name: &str, value: &Value, key: &str) -> f64 {
    let v = field(name, value, key);
    let Value::Number(n) = v else {
        panic!("{name}: `{key}` is not a number");
    };
    let x = n.as_f64();
    assert!(
        x.is_finite() && x > 0.0,
        "{name}: `{key}` should be positive, got {x}"
    );
    x
}

fn validate_query() {
    let name = "BENCH_query.json";
    let report = load(name);
    for key in ["train_size", "probe_count", "input_dim", "threads"] {
        positive(name, &report, key);
    }
    positive(name, &report, "min_speedup_vs_naive_vec_bool");
    positive(name, &report, "min_bdd_membership_speedup");
    let Value::Array(results) = field(name, &report, "results") else {
        panic!("{name}: `results` is not an array");
    };
    assert!(!results.is_empty(), "{name}: `results` is empty");
    for row in results {
        field(name, row, "neurons");
        field(name, row, "backend");
        for key in [
            "membership_qps_packed",
            "membership_qps_naive",
            "membership_speedup",
            "end_to_end_qps",
            "end_to_end_parallel_qps",
        ] {
            positive(name, row, key);
        }
    }
    println!("{name}: ok ({} result rows)", results.len());
}

fn validate_serve() {
    let name = "BENCH_serve.json";
    let report = load(name);
    for key in ["threads", "train_size", "batch_size", "micro_batch"] {
        positive(name, &report, key);
    }
    positive(name, &report, "direct_qps");
    let speedup = positive(name, &report, "speedup_4shard_vs_1shard");
    // Shard scaling is hardware-bound: a single-core container is ~1.0x by
    // construction, so the acceptance threshold is only enforceable where
    // the 4 shards can actually run in parallel.
    let threads = positive(name, &report, "threads");
    if threads >= 4.0 {
        assert!(
            speedup >= 1.5,
            "{name}: 4-shard speedup {speedup:.2}x < 1.5x on a {threads}-thread machine \
             — shard scaling has regressed"
        );
    } else {
        println!(
            "{name}: note: 4-shard speedup threshold not enforced \
             ({threads} thread(s) on this machine)"
        );
    }
    field(name, &report, "notes");
    let Value::Array(rows) = field(name, &report, "rows") else {
        panic!("{name}: `rows` is not an array");
    };
    let shard_counts: Vec<u64> = rows
        .iter()
        .map(|row| {
            positive(name, row, "qps");
            positive(name, row, "speedup_vs_1shard");
            positive(name, row, "mean_latency_ns");
            field(name, row, "warn_rate");
            positive(name, row, "shards") as u64
        })
        .collect();
    assert_eq!(
        shard_counts,
        vec![1, 2, 4],
        "{name}: expected 1/2/4-shard rows"
    );
    println!("{name}: ok ({} shard rows)", rows.len());
}

fn validate_artifact_report() {
    let name = "BENCH_artifact.json";
    let report = load(name);
    for key in ["train_size", "input_dim", "neurons", "save_load_reps"] {
        positive(name, &report, key);
    }
    field(name, &report, "notes");
    let Value::Array(rows) = field(name, &report, "rows") else {
        panic!("{name}: `rows` is not an array");
    };
    assert!(!rows.is_empty(), "{name}: `rows` is empty");
    let mut backends = std::collections::BTreeSet::new();
    for row in rows {
        field(name, row, "kind");
        let Value::String(backend) = field(name, row, "backend") else {
            panic!("{name}: `backend` is not a string");
        };
        backends.insert(backend.clone());
        field(name, row, "robust");
        for key in ["save_ms", "load_ms", "bytes"] {
            positive(name, row, key);
        }
        // build_seconds may round to 0 for min-max; only require presence
        // and non-negativity.
        let Value::Number(n) = field(name, row, "build_seconds") else {
            panic!("{name}: `build_seconds` is not a number");
        };
        assert!(n.as_f64() >= 0.0, "{name}: negative build_seconds");
        assert_eq!(
            field(name, row, "roundtrip_identical"),
            &Value::Bool(true),
            "{name}: a save->load round trip drifted"
        );
    }
    // The matrix must cover both pattern stores (hash *and* BDD arenas).
    assert!(
        backends.contains("bdd") && backends.contains("hash"),
        "{name}: rows must cover both the BDD and hash backends, got {backends:?}"
    );
    println!("{name}: ok ({} rows)", rows.len());
}

fn validate_store_report() {
    let name = "BENCH_store.json";
    let report = load(name);
    for key in ["appends", "probes", "hamming_tau"] {
        positive(name, &report, key);
    }
    field(name, &report, "smoke");
    field(name, &report, "notes");
    let Value::Array(rows) = field(name, &report, "rows") else {
        panic!("{name}: `rows` is not an array");
    };
    assert!(!rows.is_empty(), "{name}: `rows` is empty");
    let mut kinds = std::collections::BTreeSet::new();
    for row in rows {
        let Value::String(kind) = field(name, row, "kind") else {
            panic!("{name}: `kind` is not a string");
        };
        kinds.insert(kind.clone());
        for key in [
            "word_bits",
            "words",
            "append_qps",
            "exact_ns_memory",
            "exact_ns_store",
            "hamming_ns_memory",
            "hamming_ns_store",
            "disk_bytes",
        ] {
            positive(name, row, key);
        }
        // A store holding N words of W bits cannot occupy fewer than
        // N·W/8 bytes — catches a bench that silently stopped writing.
        let words = positive(name, row, "words");
        let bits = positive(name, row, "word_bits");
        let bytes = positive(name, row, "disk_bytes");
        assert!(
            bytes >= words * bits / 8.0,
            "{name}: {kind}: {bytes} disk bytes cannot hold {words} words of {bits} bits"
        );
    }
    // The matrix must cover the on-off and at least one interval width.
    assert!(
        kinds.contains("pattern-1bit") && kinds.iter().any(|k| k.starts_with("interval")),
        "{name}: rows must cover pattern and interval kinds, got {kinds:?}"
    );
    println!("{name}: ok ({} rows)", rows.len());
}

fn main() {
    validate_query();
    validate_serve();
    validate_artifact_report();
    validate_store_report();
    println!("benchmark reports validated");
}
