//! Abstract-domain benchmarks (experiment A4, runtime half).
//!
//! Definition 1 permits boxed abstraction, zonotopes, or star sets; the
//! paper implements boxes. These benches measure what the alternatives
//! cost per perturbation estimate, as a function of perturbation budget
//! and network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use napmon_absint::{propagate::Propagator, BoxBounds, Domain};
use napmon_bench::{random_inputs, random_network};
use std::hint::black_box;

fn domains(c: &mut Criterion) {
    let mut group = c.benchmark_group("domains");
    group.sample_size(20);

    let net = random_network(29, 32, &[24, 16]);
    let inputs = random_inputs(31, &net, 8);
    let to = net.num_layers();

    for domain in Domain::ALL {
        let prop = Propagator::new(&net, domain);
        for &delta in &[0.01f64, 0.1] {
            group.bench_with_input(
                BenchmarkId::new(domain.name(), format!("delta={delta}")),
                &delta,
                |b, &delta| {
                    let mut i = 0usize;
                    b.iter(|| {
                        let x = &inputs[i % inputs.len()];
                        i += 1;
                        let input = BoxBounds::from_center_radius(black_box(x), delta);
                        black_box(prop.bounds(0, to, &input))
                    })
                },
            );
        }
    }

    // Depth scaling for the default (box) domain.
    for &depth in &[1usize, 2, 4] {
        let hidden: Vec<usize> = std::iter::repeat_n(24, depth).collect();
        let deep = random_network(37, 32, &hidden);
        let prop = Propagator::new(&deep, Domain::Box);
        let x = random_inputs(41, &deep, 1).pop().unwrap();
        group.bench_with_input(BenchmarkId::new("box-depth", depth), &depth, |b, _| {
            b.iter(|| {
                let input = BoxBounds::from_center_radius(black_box(&x), 0.05);
                black_box(prop.bounds(0, deep.num_layers(), &input))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, domains);
criterion_main!(benches);
