//! Throughput of the networked serving layer over loopback TCP.
//!
//! Boots a `WireServer` (2 engine shards) on 127.0.0.1 and measures
//! requests/sec through 1, 2, and 4 concurrent `WireClient`s pipelining
//! batches, against a direct in-process `submit_batch` baseline measured
//! in the same run — the gap between the two is the price of the network
//! boundary (framing, syscalls, loopback). Per-row round-trip latency is
//! the client-observed mean per pipelined batch.
//!
//! Results land in `BENCH_wire.json` at the workspace root. Client
//! scaling is hardware-bound exactly like shard scaling: the JSON records
//! the measuring machine's `threads`. Set `NAPMON_BENCH_SMOKE=1` for a
//! seconds-long smoke pass writing the full schema (CI validates and
//! regression-gates it; latency fields are informational on smoke runs).
//!
//! A final pass measures the reactor's scaling claim directly: 1-client
//! throughput while a herd of idle connections stays attached, plus the
//! `napmon-wire-*` thread count observed with the herd held — the
//! evidence that connections are reactor state, not threads.

use napmon_core::{MonitorKind, MonitorSpec};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_serve::{EngineConfig, MonitorEngine};
use napmon_tensor::Prng;
use napmon_wire::{WireClient, WireConfig, WireServer};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const CLIENT_COUNTS: [usize; 3] = [1, 2, 4];
/// Idle connections held during the high-connection pass (the reactor's
/// e2e contract is ≥1024; smoke runs hold a token herd for schema
/// coverage without the dial-up time).
const IDLE_CONNS_FULL: usize = 1024;
const IDLE_CONNS_SMOKE: usize = 128;
const TRAIN_SIZE: usize = 256;
const BATCH_SIZE: usize = 512;
const INPUT_DIM: usize = 16;
const NEURONS: usize = 64;
const SHARDS: usize = 2;

fn smoke() -> bool {
    std::env::var_os("NAPMON_BENCH_SMOKE").is_some()
}

/// Wall-clock budget per measured configuration.
fn measure_secs() -> f64 {
    if smoke() {
        0.05
    } else {
        1.0
    }
}

#[derive(Serialize)]
struct ClientRow {
    clients: usize,
    /// Requests/sec across all clients through the wire.
    qps: f64,
    /// This row's qps over the 1-client row's.
    speedup_vs_1client: f64,
    /// Client-observed mean round trip for one pipelined batch
    /// (micro-seconds). Informational on smoke runs.
    batch_rtt_us: f64,
    /// Requests served during measurement.
    requests: u64,
    /// `Busy`-shaped refusals during the row (budget + watermark +
    /// connection cap). Zero on a healthy run: the bench never
    /// oversubscribes the default budget.
    degraded_busy: u64,
    /// Requests shed at the queue watermark during the row.
    degraded_shed: u64,
    /// Connections evicted (idle or stalled) during the row.
    degraded_evicted: u64,
}

#[derive(Serialize)]
struct HighConnRow {
    /// Idle connections held open for the whole measured window.
    idle_conns: usize,
    /// `napmon-wire-*` threads (reactor + worker pool) observed via
    /// `/proc/self/task` while the herd was attached; 0 where `/proc`
    /// is unavailable. The reactor contract is that this figure does
    /// not scale with `idle_conns`.
    wire_threads: usize,
    /// 1-client wire qps measured with the herd attached.
    qps_1client: f64,
    /// direct_qps over `qps_1client`: the network boundary's cost while
    /// a thousand idle peers sit on the same reactor.
    overhead_vs_direct: f64,
}

#[derive(Serialize)]
struct Report {
    threads: usize,
    train_size: usize,
    batch_size: usize,
    input_dim: usize,
    neurons: usize,
    shards: usize,
    smoke: bool,
    /// Direct in-process `submit_batch` on the same engine shape: the
    /// no-network baseline.
    direct_qps: f64,
    /// direct_qps over the 1-client wire qps: what the network boundary
    /// costs.
    wire_overhead_1client: f64,
    rows: Vec<ClientRow>,
    /// The idle-herd pass: throughput and thread count with ~1k
    /// connections held open.
    high_connection: HighConnRow,
    /// `high_connection.overhead_vs_direct`, lifted to the top level so
    /// the compare gate can ceiling it like `wire_overhead_1client`.
    high_conn_overhead: f64,
    notes: String,
}

fn build_engine(net: &Network, train: &[Vec<f64>]) -> MonitorEngine<napmon_core::ComposedMonitor> {
    let spec = MonitorSpec::new(2, MonitorKind::pattern());
    let monitor = spec.build(net, train).expect("build monitor");
    MonitorEngine::new(net.clone(), monitor, EngineConfig::with_shards(SHARDS))
}

/// Threads currently named with the given prefix (`comm` truncates to 15
/// bytes, so match on prefixes). 0 on platforms without `/proc`.
fn threads_with_prefix(prefix: &str) -> usize {
    let Ok(entries) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    entries
        .filter_map(|entry| {
            let comm = entry.ok()?.path().join("comm");
            let name = std::fs::read_to_string(comm).ok()?;
            name.trim().starts_with(prefix).then_some(())
        })
        .count()
}

/// The idle-herd pass: dial ~1k connections, leave them attached, and
/// measure 1-client throughput plus the wire thread count beside them.
fn measure_high_connection(
    net: &Network,
    train: &[Vec<f64>],
    probes: &[Vec<f64>],
    direct_qps: f64,
) -> HighConnRow {
    let idle_conns = if smoke() {
        IDLE_CONNS_SMOKE
    } else {
        IDLE_CONNS_FULL
    };
    let server = WireServer::builder(build_engine(net, train))
        .config(
            WireConfig::default()
                .with_max_connections(idle_conns + 8)
                // Idle eviction must not thin the herd mid-measurement.
                .with_idle_timeout(std::time::Duration::from_secs(300)),
        )
        .bind("127.0.0.1:0")
        .expect("bind server");
    let addr = server.local_addr();

    let mut herd: Vec<std::net::TcpStream> = Vec::with_capacity(idle_conns);
    while herd.len() < idle_conns {
        match std::net::TcpStream::connect(addr) {
            Ok(stream) => herd.push(stream),
            // A full accept backlog refuses the dial; pace and retry.
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(2)),
        }
    }
    let wire_threads = threads_with_prefix("napmon-wire");

    let mut client = WireClient::connect(addr).expect("connect beside the herd");
    client.query_batch(probes).expect("warm-up batch");
    let start = Instant::now();
    let mut served = 0u64;
    while start.elapsed().as_secs_f64() < measure_secs() {
        black_box(client.query_batch(probes).expect("wire batch"));
        served += probes.len() as u64;
    }
    let qps_1client = served as f64 / start.elapsed().as_secs_f64();
    drop(herd);
    server.shutdown();
    let overhead_vs_direct = direct_qps / qps_1client;
    println!(
        "{idle_conns} idle conns {qps_1client:>12.0} req/s  \
         ({overhead_vs_direct:.2}x vs direct, {wire_threads} wire thread(s))"
    );
    HighConnRow {
        idle_conns,
        wire_threads,
        qps_1client,
        overhead_vs_direct,
    }
}

fn main() {
    let net = Network::seeded(
        2024,
        INPUT_DIM,
        &[
            LayerSpec::dense(NEURONS, Activation::Relu),
            LayerSpec::dense(2, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(55);
    let train: Vec<Vec<f64>> = (0..TRAIN_SIZE)
        .map(|_| rng.uniform_vec(INPUT_DIM, -1.0, 1.0))
        .collect();
    let mut probes: Vec<Vec<f64>> = (0..BATCH_SIZE)
        .map(|i| train[i % TRAIN_SIZE].clone())
        .collect();
    rng.shuffle(&mut probes);

    // Direct baseline: same engine shape, no network.
    let direct = build_engine(&net, &train);
    let shared: std::sync::Arc<[Vec<f64>]> = probes.clone().into();
    direct
        .submit_batch(std::sync::Arc::clone(&shared))
        .expect("warm-up");
    let start = Instant::now();
    let mut direct_served = 0u64;
    while start.elapsed().as_secs_f64() < measure_secs() {
        black_box(
            direct
                .submit_batch(std::sync::Arc::clone(&shared))
                .expect("direct batch"),
        );
        direct_served += BATCH_SIZE as u64;
    }
    let direct_qps = direct_served as f64 / start.elapsed().as_secs_f64();
    direct.shutdown();
    println!("direct submit_batch baseline {direct_qps:>12.0} req/s");

    let mut rows: Vec<ClientRow> = Vec::new();
    for &clients in &CLIENT_COUNTS {
        let server = WireServer::builder(build_engine(&net, &train))
            .bind("127.0.0.1:0")
            .expect("bind server");
        let addr = server.local_addr();
        let secs = measure_secs();

        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let probes = probes.clone();
                std::thread::spawn(move || {
                    let mut client = WireClient::connect(addr).expect("connect");
                    // Warm-up round trip (grows scratches and buffers).
                    client.query_batch(&probes).expect("warm-up batch");
                    let start = Instant::now();
                    let mut served = 0u64;
                    let mut batches = 0u64;
                    while start.elapsed().as_secs_f64() < secs {
                        black_box(client.query_batch(&probes).expect("wire batch"));
                        served += probes.len() as u64;
                        batches += 1;
                    }
                    (served, batches, start.elapsed())
                })
            })
            .collect();
        let mut served = 0u64;
        let mut batches = 0u64;
        let mut elapsed = 0.0f64;
        for worker in workers {
            let (s, b, e) = worker.join().expect("client thread");
            served += s;
            batches += b;
            elapsed = elapsed.max(e.as_secs_f64());
        }
        // The degradation ledger for the row: a healthy saturation run
        // sheds nothing, and the committed report pins that.
        let degraded = WireClient::connect(addr)
            .expect("stats connect")
            .stats()
            .expect("stats")
            .degraded;
        server.shutdown();
        let qps = served as f64 / elapsed;
        let batch_rtt_us = if batches == 0 {
            0.0
        } else {
            elapsed * 1e6 * clients as f64 / batches as f64
        };
        let speedup = rows
            .first()
            .map_or(1.0, |first: &ClientRow| qps / first.qps);
        println!(
            "{clients} client(s) {qps:>12.0} req/s  ({speedup:>5.2}x vs 1 client)  \
             batch rtt {batch_rtt_us:>8.0}us"
        );
        rows.push(ClientRow {
            clients,
            qps,
            speedup_vs_1client: speedup,
            batch_rtt_us,
            requests: served,
            degraded_busy: degraded.busy_total(),
            degraded_shed: degraded.shed_watermark,
            degraded_evicted: degraded.evicted_total(),
        });
    }

    let high_connection = measure_high_connection(&net, &train, &probes, direct_qps);

    let threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let wire_overhead_1client = rows.first().map_or(0.0, |r| direct_qps / r.qps);
    let high_conn_overhead = high_connection.overhead_vs_direct;
    let report = Report {
        threads,
        train_size: TRAIN_SIZE,
        batch_size: BATCH_SIZE,
        input_dim: INPUT_DIM,
        neurons: NEURONS,
        shards: SHARDS,
        smoke: smoke(),
        direct_qps,
        wire_overhead_1client,
        rows,
        high_connection,
        high_conn_overhead,
        notes: "loopback TCP, pipelined batches, in-distribution workload; \
                client scaling is bounded by the measuring machine's cores \
                (see the `threads` field)"
            .to_string(),
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!(
        "\nnetwork boundary costs {wire_overhead_1client:.2}x vs direct (1 client, {threads} core(s))"
    );
    println!("wrote {path}");
}
