//! Pattern-store cost model: append throughput, exact and Hamming lookup
//! latency (in-memory reference vs the on-disk store), and on-disk bytes
//! per monitor kind.
//!
//! The store is the persistence layer every scaling PR builds on, so its
//! costs are operational costs: append throughput bounds how fast
//! operation-time absorption can run, lookup latency sits on the serving
//! hot path of store-backed monitors, and on-disk bytes bound what a
//! million-input pattern set costs to keep. Results land in
//! `BENCH_store.json` at the workspace root (schema-checked by
//! `validate_bench` in CI). Set `NAPMON_BENCH_SMOKE=1` for a seconds-long
//! smoke pass that still writes the full schema.

use napmon_bdd::BitWord;
use napmon_core::{MemoryPatternSource, PatternSource};
use napmon_store::{PatternStore, StoreConfig};
use napmon_tensor::Prng;
use serde::Serialize;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("NAPMON_BENCH_SMOKE").is_some()
}

/// Words appended per kind row. The smoke count is sized so the timed
/// append region spans ~10ms: a 4k batch measured ~1.5ms, small enough
/// for scheduler noise to swing the figure 2-3x between runs and trip
/// the CI regression gate spuriously.
fn appends() -> usize {
    if smoke() {
        20_000
    } else {
        100_000
    }
}

/// Membership probes per lookup measurement.
fn probes() -> usize {
    if smoke() {
        1_000
    } else {
        20_000
    }
}

#[derive(Serialize)]
struct Row {
    /// Monitor kind the word width models (on-off = 1 bit/neuron,
    /// interval-2bit = 2 bits/neuron, …).
    kind: String,
    /// Packed word width in bits.
    word_bits: usize,
    /// Distinct words the store ended up holding.
    words: u64,
    /// Append throughput into the store (dedup + tail log + auto-seal),
    /// words per second.
    append_qps: f64,
    /// Mean exact-membership latency, nanoseconds: in-memory hash set.
    exact_ns_memory: f64,
    /// Mean exact-membership latency, nanoseconds: store (bloom + binary
    /// search over sealed segments + tail index).
    exact_ns_store: f64,
    /// Mean Hamming-ball (tau = 2) latency, nanoseconds: in-memory
    /// linear XOR-popcount scan.
    hamming_ns_memory: f64,
    /// Mean Hamming-ball (tau = 2) latency, nanoseconds: store
    /// (prefix-partitioned index over sealed segments into the
    /// bit-sliced kernel, plus the bit-sliced tail mirror).
    hamming_ns_store: f64,
    /// Within-run ratio `hamming_ns_memory / hamming_ns_store`: how much
    /// the partition-pruned store kernel beats the linear scan it
    /// replaced. Hardware cancels, so this is diffable across machines.
    hamming_store_speedup: f64,
    /// Bytes on disk after commit + seal (manifest + segments + tail).
    disk_bytes: u64,
}

#[derive(Serialize)]
struct Report {
    appends: usize,
    probes: usize,
    hamming_tau: usize,
    threads: usize,
    smoke: bool,
    rows: Vec<Row>,
    notes: String,
}

fn random_words(seed: u64, n: usize, bits: usize) -> Vec<BitWord> {
    let mut rng = Prng::seed(seed);
    (0..n)
        .map(|_| {
            let v = rng.uniform_vec(bits, -1.0, 1.0);
            BitWord::from_fn(bits, |i| v[i] > 0.25)
        })
        .collect()
}

fn mean_lookup_ns(mut probe: impl FnMut(&BitWord) -> bool, words: &[BitWord]) -> f64 {
    let start = Instant::now();
    let mut hits = 0usize;
    for w in words {
        hits += usize::from(probe(w));
    }
    let nanos = start.elapsed().as_nanos() as f64 / words.len() as f64;
    // Keep the hit count observable so the loop cannot be optimized out.
    assert!(hits <= words.len());
    nanos
}

fn main() {
    const TAU: usize = 2;
    // Word widths modeling the monitor kinds: 48 monitored neurons at
    // 1/2/3 bits per neuron.
    let kinds: Vec<(&str, usize)> = vec![
        ("pattern-1bit", 48),
        ("interval-2bit", 96),
        ("interval-3bit", 144),
    ];
    let dir = std::env::temp_dir().join(format!("napmon_bench_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut rows = Vec::new();
    for (kind, word_bits) in kinds {
        let words = random_words(0xA11CE, appends(), word_bits);
        let lookups = random_words(0xB0B, probes(), word_bits);

        // In-memory reference.
        let mut memory = MemoryPatternSource::new(word_bits);
        for w in &words {
            memory.insert(w).unwrap();
        }

        // The store: measure the batched append path end to end.
        let store_dir = dir.join(kind);
        let mut store = PatternStore::create(&store_dir, StoreConfig::new(word_bits)).unwrap();
        let start = Instant::now();
        store.append_batch(&words).unwrap();
        let append_seconds = start.elapsed().as_secs_f64();
        store.seal().unwrap();

        let hamming_ns_memory = mean_lookup_ns(|w| memory.contains_within(w, TAU), &lookups);
        let hamming_ns_store = mean_lookup_ns(|w| store.contains_within(w, TAU).unwrap(), &lookups);
        let row = Row {
            kind: kind.to_string(),
            word_bits,
            words: store.len(),
            append_qps: words.len() as f64 / append_seconds,
            exact_ns_memory: mean_lookup_ns(|w| memory.contains(w), &lookups),
            exact_ns_store: mean_lookup_ns(|w| store.contains(w), &lookups),
            hamming_ns_memory,
            hamming_ns_store,
            hamming_store_speedup: hamming_ns_memory / hamming_ns_store,
            disk_bytes: store.disk_bytes().unwrap(),
        };
        println!(
            "{:<14} {:>3} bits {:>8} words  append {:>10.0}/s  exact mem/store {:>7.0}/{:>7.0}ns  \
             hamming mem/store {:>9.0}/{:>9.0}ns ({:>5.1}x)  {:>9} B",
            row.kind,
            row.word_bits,
            row.words,
            row.append_qps,
            row.exact_ns_memory,
            row.exact_ns_store,
            row.hamming_ns_memory,
            row.hamming_ns_store,
            row.hamming_store_speedup,
            row.disk_bytes
        );
        rows.push(row);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let report = Report {
        appends: appends(),
        probes: probes(),
        hamming_tau: TAU,
        threads: std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        smoke: smoke(),
        rows,
        notes: "append_qps = deduplicating batched appends through the tail log; \
                exact_ns = bloom + binary search (store) vs hash probe (memory); \
                hamming_ns (tau = 2) = linear XOR-popcount scan (memory) vs \
                prefix-partitioned AND/OR-mask pruning into the bit-sliced \
                kernel (store); hamming_store_speedup divides the two within \
                the run; disk_bytes = manifest + sealed segments + tail after \
                seal."
            .to_string(),
    };
    let out = format!("{}/../../BENCH_store.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).expect("write report");
    println!("wrote {out}");
}
