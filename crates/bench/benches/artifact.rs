//! Artifact pipeline cost: save/load latency and on-disk size per monitor
//! kind and backend.
//!
//! The artifact file is the deployment unit, so its costs are operational
//! costs: save latency bounds how often a build pipeline can snapshot,
//! load latency bounds cold-start time of a serving replica, and on-disk
//! size bounds artifact registry traffic. Results land in
//! `BENCH_artifact.json` at the workspace root (schema-checked by
//! `validate_bench` in CI). Set `NAPMON_BENCH_SMOKE=1` for a seconds-long
//! smoke pass that still writes the full schema.

use napmon_artifact::MonitorArtifact;
use napmon_core::{Monitor, MonitorKind, MonitorSpec, PatternBackend, ThresholdPolicy};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_tensor::Prng;
use serde::Serialize;
use std::time::Instant;

const TRAIN_SIZE: usize = 256;
const INPUT_DIM: usize = 16;
const NEURONS: usize = 48;

fn smoke() -> bool {
    std::env::var_os("NAPMON_BENCH_SMOKE").is_some()
}

/// Save/load repetitions per row (medians are overkill for a report whose
/// job is catching order-of-magnitude regressions).
fn reps() -> usize {
    if smoke() {
        2
    } else {
        8
    }
}

#[derive(Serialize)]
struct Row {
    kind: String,
    backend: String,
    robust: bool,
    /// Monitor construction (spec build) wall clock, seconds.
    build_seconds: f64,
    /// Mean serialize-and-write latency, milliseconds.
    save_ms: f64,
    /// Mean read-validate-deserialize latency, milliseconds.
    load_ms: f64,
    /// Artifact size on disk, bytes.
    bytes: u64,
    /// Whether the reloaded monitor answered the probe corpus
    /// bit-identically (must always be true).
    roundtrip_identical: bool,
}

#[derive(Serialize)]
struct Report {
    train_size: usize,
    input_dim: usize,
    neurons: usize,
    save_load_reps: usize,
    threads: usize,
    smoke: bool,
    rows: Vec<Row>,
    notes: String,
}

fn configs() -> Vec<(&'static str, &'static str, MonitorKind)> {
    vec![
        ("min-max", "none", MonitorKind::min_max()),
        (
            "pattern",
            "bdd",
            MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 0),
        ),
        (
            "pattern",
            "hash",
            MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::HashSet, 0),
        ),
        ("interval-2bit", "bdd", MonitorKind::interval(2)),
        ("interval-3bit", "bdd", MonitorKind::interval(3)),
    ]
}

fn main() {
    let net = Network::seeded(
        2024,
        INPUT_DIM,
        &[
            LayerSpec::dense(NEURONS, Activation::Relu),
            LayerSpec::dense(2, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(55);
    let train: Vec<Vec<f64>> = (0..TRAIN_SIZE)
        .map(|_| rng.uniform_vec(INPUT_DIM, -1.0, 1.0))
        .collect();
    let probes: Vec<Vec<f64>> = (0..128)
        .map(|_| rng.uniform_vec(INPUT_DIM, -2.0, 2.0))
        .collect();

    let dir = std::env::temp_dir().join("napmon_bench_artifact");
    std::fs::create_dir_all(&dir).expect("create bench dir");

    let mut rows = Vec::new();
    for (kind_name, backend, kind) in configs() {
        for robust in [false, true] {
            let mut spec = MonitorSpec::new(2, kind.clone());
            if robust {
                spec = spec.robust(0.02, 0, napmon_absint::Domain::Box);
            }
            let build_start = Instant::now();
            let artifact = MonitorArtifact::build(spec, &net, &train).expect("bench spec builds");
            let build_seconds = build_start.elapsed().as_secs_f64();
            let expected = artifact.monitor().query_batch(&net, &probes).unwrap();

            let path = dir.join(format!("{kind_name}-{backend}-{robust}.json"));
            let mut save_ns = 0u128;
            let mut load_ns = 0u128;
            let mut identical = true;
            for _ in 0..reps() {
                let t = Instant::now();
                artifact.save_json(&path).expect("save artifact");
                save_ns += t.elapsed().as_nanos();
                let t = Instant::now();
                let loaded = MonitorArtifact::load_json(&path).expect("load artifact");
                load_ns += t.elapsed().as_nanos();
                identical &= loaded
                    .monitor()
                    .query_batch(loaded.network(), &probes)
                    .unwrap()
                    == expected;
            }
            let bytes = std::fs::metadata(&path).expect("artifact written").len();
            let row = Row {
                kind: kind_name.to_string(),
                backend: backend.to_string(),
                robust,
                build_seconds,
                save_ms: save_ns as f64 / reps() as f64 / 1e6,
                load_ms: load_ns as f64 / reps() as f64 / 1e6,
                bytes,
                roundtrip_identical: identical,
            };
            println!(
                "{:<14} {:<5} robust={:<5} build {:>7.3}s save {:>8.3}ms load {:>8.3}ms {:>9} B identical={}",
                row.kind, row.backend, row.robust, row.build_seconds, row.save_ms, row.load_ms,
                row.bytes, row.roundtrip_identical
            );
            assert!(
                row.roundtrip_identical,
                "{kind_name}/{backend} robust={robust}: round trip drifted"
            );
            rows.push(row);
        }
    }
    std::fs::remove_dir_all(&dir).ok();

    let report = Report {
        train_size: TRAIN_SIZE,
        input_dim: INPUT_DIM,
        neurons: NEURONS,
        save_load_reps: reps(),
        threads: std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        smoke: smoke(),
        rows,
        notes: "save_ms = serialize+write; load_ms = read+validate+deserialize; \
                bytes = artifact JSON on disk (spec + network + monitor + stats). \
                roundtrip_identical must be true for every row."
            .to_string(),
    };
    let out = format!("{}/../../BENCH_artifact.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).expect("write report");
    println!("wrote {out}");
}
