//! Query-latency benchmarks (experiment A6, runtime half).
//!
//! A runtime monitor sits in the perception loop of a vehicle; the paper's
//! premise is that abstraction-based monitors are cheap enough to run per
//! frame. These benches measure the per-query cost — feature extraction
//! plus abstraction membership — for every monitor family, standard and
//! robust, including the Hamming-tolerance query of the DATE 2019 setup.

use criterion::{criterion_group, criterion_main, Criterion};
use napmon_absint::Domain;
use napmon_bench::{random_inputs, random_network};
use napmon_core::{Monitor, MonitorBuilder, MonitorKind, PatternBackend, ThresholdPolicy};
use std::hint::black_box;

fn query(c: &mut Criterion) {
    let net = random_network(17, 64, &[32, 16]);
    let layer = net.penultimate_boundary();
    let train = random_inputs(19, &net, 512);
    let probes = random_inputs(23, &net, 64);

    let monitors = vec![
        (
            "minmax",
            MonitorBuilder::new(&net, layer)
                .build(MonitorKind::min_max(), &train)
                .unwrap(),
        ),
        (
            "pattern-bdd",
            MonitorBuilder::new(&net, layer)
                .build(MonitorKind::pattern(), &train)
                .unwrap(),
        ),
        (
            "pattern-hashset",
            MonitorBuilder::new(&net, layer)
                .build(
                    MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::HashSet, 0),
                    &train,
                )
                .unwrap(),
        ),
        (
            "pattern-hamming1",
            MonitorBuilder::new(&net, layer)
                .build(
                    MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::Bdd, 1),
                    &train,
                )
                .unwrap(),
        ),
        (
            "interval2",
            MonitorBuilder::new(&net, layer)
                .build(MonitorKind::interval(2), &train)
                .unwrap(),
        ),
        (
            "interval4",
            MonitorBuilder::new(&net, layer)
                .build(MonitorKind::interval(4), &train)
                .unwrap(),
        ),
        (
            "robust-pattern",
            MonitorBuilder::new(&net, layer)
                .robust(0.02, 0, Domain::Box)
                .build(MonitorKind::pattern(), &train)
                .unwrap(),
        ),
    ];

    let mut group = c.benchmark_group("query");
    for (name, monitor) in &monitors {
        group.bench_function(*name, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let probe = &probes[i % probes.len()];
                i += 1;
                black_box(monitor.warns(&net, black_box(probe)).unwrap())
            })
        });
    }
    // Baseline: the bare forward pass, to separate network cost from
    // abstraction cost.
    group.bench_function("forward-only", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let probe = &probes[i % probes.len()];
            i += 1;
            black_box(net.forward(black_box(probe)))
        })
    });
    group.finish();
}

criterion_group!(benches, query);
criterion_main!(benches);
