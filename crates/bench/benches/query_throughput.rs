//! End-to-end query throughput of the packed-bitword pipeline.
//!
//! Measures queries/sec for the HashSet and BDD pattern backends at 10, 40,
//! and 100 monitored neurons, against a **naive `Vec<bool>` baseline
//! measured in the same run** — a faithful reimplementation of the seed's
//! membership path (one `Vec<bool>` allocation per query, SipHash set /
//! unpacked BDD walk). Three numbers per configuration:
//!
//! - `membership`: abstraction + set membership only (features
//!   precomputed) — the path the packed rewrite targets;
//! - `end_to_end`: forward pass + abstraction + membership through
//!   `query_batch` (single thread, reused scratch);
//! - `end_to_end_parallel`: the same through `query_batch_parallel`.
//!
//! Results are written to `BENCH_query.json` at the workspace root so later
//! PRs can track the trajectory. Set `NAPMON_BENCH_SMOKE=1` for a
//! seconds-long smoke pass that still writes the full JSON schema (CI
//! validates it).

use napmon_bdd::{Bdd, BitSliceSet, BitWord, NodeId};
use napmon_core::{
    FeatureExtractor, Monitor, MonitorBuilder, MonitorKind, PatternBackend, PatternMonitor,
    ThresholdPolicy,
};
use napmon_nn::Network;
use napmon_tensor::Prng;
use serde::Serialize;
use std::collections::HashSet;
use std::hint::black_box;
use std::time::Instant;

const NEURON_COUNTS: [usize; 3] = [10, 40, 100];
const TRAIN_SIZE: usize = 256;
const PROBE_COUNT: usize = 512;
const INPUT_DIM: usize = 16;

/// Hamming-ball matrix: word widths model the store's monitor kinds
/// (48 monitored neurons at 1/2/3 bits per neuron) — the regime where
/// tolerance queries scan large pattern sets rather than saturating the
/// pattern space.
const HAMMING_WIDTHS: [usize; 3] = [48, 96, 144];
const HAMMING_PATTERNS: usize = 8192;
const HAMMING_TAU: usize = 2;
const HAMMING_BATCH: usize = 256;

/// Naive membership baseline: the seed's exact query shape. One heap
/// `Vec<bool>` per query, std SipHash for the set backend, unpacked BDD
/// walk for the BDD backend.
enum NaiveStore {
    Hash(HashSet<Vec<bool>>),
    Bdd { bdd: Bdd, root: NodeId },
}

struct NaiveMonitor {
    thresholds: Vec<f64>,
    store: NaiveStore,
}

impl NaiveMonitor {
    fn from_packed(
        monitor: &PatternMonitor,
        backend: PatternBackend,
        train_features: &[Vec<f64>],
    ) -> Self {
        let thresholds = monitor.thresholds().to_vec();
        let abstract_word = |features: &[f64]| -> Vec<bool> {
            features
                .iter()
                .zip(&thresholds)
                .map(|(v, c)| v > c)
                .collect()
        };
        let store = match backend {
            PatternBackend::HashSet => {
                let mut set = HashSet::new();
                for f in train_features {
                    set.insert(abstract_word(f));
                }
                NaiveStore::Hash(set)
            }
            PatternBackend::Bdd => {
                let mut bdd = Bdd::new(thresholds.len());
                let mut root = Bdd::FALSE;
                for f in train_features {
                    root = bdd.insert_word(root, &abstract_word(f));
                }
                NaiveStore::Bdd { bdd, root }
            }
            // The persistent store has its own bench (store_throughput).
            PatternBackend::Store => unreachable!("query bench covers in-memory backends"),
        };
        Self { thresholds, store }
    }

    #[inline]
    fn contains(&self, features: &[f64]) -> bool {
        // The allocation the packed pipeline removed:
        let word: Vec<bool> = features
            .iter()
            .zip(&self.thresholds)
            .map(|(v, c)| v > c)
            .collect();
        match &self.store {
            NaiveStore::Hash(set) => set.contains(&word),
            NaiveStore::Bdd { bdd, root } => bdd.eval(*root, &word),
        }
    }
}

/// Wall-clock budget per measured path (shrunk under `NAPMON_BENCH_SMOKE`).
fn measure_secs(full: f64) -> f64 {
    if std::env::var_os("NAPMON_BENCH_SMOKE").is_some() {
        0.02
    } else {
        full
    }
}

/// Runs `f` repeatedly for roughly `target_secs`, returning calls/sec.
fn throughput(target_secs: f64, mut f: impl FnMut()) -> f64 {
    // Calibrate.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        if start.elapsed().as_secs_f64() > target_secs / 8.0 || iters >= 1 << 28 {
            break;
        }
        iters *= 2;
    }
    // Measure best of 3.
    let mut best = f64::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    iters as f64 / best
}

#[derive(Serialize)]
struct BackendResult {
    neurons: usize,
    backend: String,
    /// Membership path only (features precomputed), packed pipeline.
    membership_qps_packed: f64,
    /// Membership path only, naive `Vec<bool>` baseline (same run).
    membership_qps_naive: f64,
    /// Packed / naive membership throughput.
    membership_speedup: f64,
    /// Forward + abstraction + membership via `query_batch` (one thread).
    end_to_end_qps: f64,
    /// Same via `query_batch_parallel` (all cores).
    end_to_end_parallel_qps: f64,
    /// Store size: BDD nodes or hash-set words.
    store_size: usize,
}

#[derive(Serialize)]
struct HammingResult {
    /// Packed word width in bits.
    word_bits: usize,
    /// Distinct patterns in the scanned set.
    patterns: usize,
    /// Hamming-ball radius of every query.
    tau: usize,
    /// Per-query packed scan: `BitWord::hamming` over a `Vec<BitWord>`
    /// with first-hit early exit — the pre-index query shape.
    hamming_qps_packed: f64,
    /// Bit-sliced batch kernel: `BitSliceSet::contains_within_batch`
    /// over `HAMMING_BATCH`-query batches, queries/sec.
    hamming_qps_sliced_batch: f64,
    /// Within-run ratio sliced-batch / packed (hardware cancels).
    sliced_hamming_speedup: f64,
}

#[derive(Serialize)]
struct Report {
    train_size: usize,
    probe_count: usize,
    input_dim: usize,
    threads: usize,
    smoke: bool,
    results: Vec<BackendResult>,
    /// Hamming-ball tolerance queries: packed per-query scan vs the
    /// bit-sliced batch kernel, per word width.
    hamming_results: Vec<HammingResult>,
    /// Minimum `sliced_hamming_speedup` across the Hamming matrix — the
    /// batch-kernel headline. Full (non-smoke) runs must clear 3x.
    min_sliced_hamming_speedup: f64,
    /// Minimum membership speedup over the naive `Vec<bool>` baseline
    /// across the hash-set configurations — the headline number. The hash
    /// store is where membership cost itself (hashing + equality +
    /// per-query allocation) dominates, which is exactly what the packed
    /// pipeline removes.
    min_speedup_vs_naive_vec_bool: f64,
    /// Same minimum over the BDD configurations, reported separately: the
    /// BDD walk is byte-identical between baseline and packed pipeline, so
    /// only the abstraction/allocation share of each query can shrink.
    min_bdd_membership_speedup: f64,
    notes: String,
}

fn bench_config(neurons: usize, backend: PatternBackend, results: &mut Vec<BackendResult>) {
    let net = Network::seeded(
        1234 + neurons as u64,
        INPUT_DIM,
        &[
            napmon_nn::LayerSpec::dense(neurons, napmon_nn::Activation::Relu),
            napmon_nn::LayerSpec::dense(2, napmon_nn::Activation::Identity),
        ],
    );
    let layer = 2; // post-ReLU boundary of the hidden layer
    let mut rng = Prng::seed(99 + neurons as u64);
    let train: Vec<Vec<f64>> = (0..TRAIN_SIZE)
        .map(|_| rng.uniform_vec(INPUT_DIM, -1.0, 1.0))
        .collect();
    // Steady-state operation: the overwhelming majority of queries are
    // in-distribution and do NOT warn (Lemma 1 is built to guarantee it),
    // so probe with the training inputs themselves — membership hits,
    // full-depth BDD walks, no warning-evidence construction.
    let mut probes: Vec<Vec<f64>> = train.clone();
    rng.shuffle(&mut probes);
    probes.extend((0..PROBE_COUNT - TRAIN_SIZE).map(|_| rng.uniform_vec(INPUT_DIM, -1.0, 1.0)));

    let kind = MonitorKind::pattern_with(ThresholdPolicy::Mean, backend, 0);
    let built = MonitorBuilder::new(&net, layer)
        .build(kind, &train)
        .unwrap();
    let monitor = built.as_pattern().unwrap();

    let fx = FeatureExtractor::new(&net, layer).unwrap();
    let train_features: Vec<Vec<f64>> = train
        .iter()
        .map(|x| fx.features(&net, x).unwrap())
        .collect();
    let probe_features: Vec<Vec<f64>> = probes
        .iter()
        .map(|x| fx.features(&net, x).unwrap())
        .collect();

    let naive = NaiveMonitor::from_packed(monitor, backend, &train_features);

    // Membership path, packed: fill the reused scratch word, look it up.
    // Zero heap allocation per call.
    let mut word = napmon_bdd::BitWord::default();
    let mut i = 0usize;
    let membership_qps_packed = throughput(measure_secs(0.4), || {
        let f = &probe_features[i % PROBE_COUNT];
        i += 1;
        monitor.abstract_into(black_box(f), &mut word);
        black_box(monitor.contains_packed(&word));
    });

    // Membership path, naive: Vec<bool> per query (alloc + byte-per-bit
    // hashing / unpacked walk) — the seed's shape.
    let mut i = 0usize;
    let membership_qps_naive = throughput(measure_secs(0.4), || {
        let f = &probe_features[i % PROBE_COUNT];
        i += 1;
        black_box(naive.contains(black_box(f)));
    });

    // End-to-end batched query throughput.
    let batch_start = Instant::now();
    let mut batches = 0u32;
    while batch_start.elapsed().as_secs_f64() < measure_secs(0.5) {
        black_box(built.query_batch(&net, &probes).unwrap());
        batches += 1;
    }
    let end_to_end_qps =
        (batches as f64 * PROBE_COUNT as f64) / batch_start.elapsed().as_secs_f64();

    let par_start = Instant::now();
    let mut batches = 0u32;
    while par_start.elapsed().as_secs_f64() < measure_secs(0.5) {
        black_box(built.query_batch_parallel(&net, &probes).unwrap());
        batches += 1;
    }
    let end_to_end_parallel_qps =
        (batches as f64 * PROBE_COUNT as f64) / par_start.elapsed().as_secs_f64();

    let backend_name = match backend {
        PatternBackend::Bdd => "bdd",
        PatternBackend::HashSet => "hashset",
        PatternBackend::Store => unreachable!("query bench covers in-memory backends"),
    };
    let speedup = membership_qps_packed / membership_qps_naive;
    println!(
        "{neurons:>4} neurons  {backend_name:<8} membership {membership_qps_packed:>12.0}/s \
         vs naive {membership_qps_naive:>12.0}/s ({speedup:>5.2}x)  \
         end-to-end {end_to_end_qps:>10.0}/s  parallel {end_to_end_parallel_qps:>10.0}/s",
    );
    results.push(BackendResult {
        neurons,
        backend: backend_name.to_string(),
        membership_qps_packed,
        membership_qps_naive,
        membership_speedup: speedup,
        end_to_end_qps,
        end_to_end_parallel_qps,
        store_size: monitor.store_size(),
    });
}

/// One row of the Hamming-ball matrix: the same pattern set queried
/// through the packed per-query scan (the shape the store used before the
/// partition index) and through the bit-sliced batch kernel.
fn bench_hamming(word_bits: usize) -> HammingResult {
    let mut rng = Prng::seed(0xB17 + word_bits as u64);
    let mut word = |bits: usize| -> BitWord {
        let v = rng.uniform_vec(bits, -1.0, 1.0);
        BitWord::from_fn(bits, |i| v[i] > 0.0)
    };
    // Random draws at >= 48 bits collide with negligible probability, so
    // the set is distinct without an explicit dedup pass.
    let words: Vec<BitWord> = (0..HAMMING_PATTERNS).map(|_| word(word_bits)).collect();
    let mut sliced = BitSliceSet::with_bits(word_bits);
    for w in &words {
        sliced.insert(w);
    }

    // Probe mix: half near-misses (flip tau bits of a stored word, a hit
    // both engines can early-exit on) and half fresh random words, which
    // at these widths are misses — the case that forces a full scan and
    // bounds out-of-distribution detection cost.
    let probes: Vec<BitWord> = (0..HAMMING_BATCH)
        .map(|i| {
            if i % 2 == 0 {
                let base = words[(i * 37) % words.len()].to_bools();
                BitWord::from_fn(
                    word_bits,
                    |j| {
                        if j < HAMMING_TAU {
                            !base[j]
                        } else {
                            base[j]
                        }
                    },
                )
            } else {
                word(word_bits)
            }
        })
        .collect();

    let tau32 = HAMMING_TAU as u32;
    let mut i = 0usize;
    let hamming_qps_packed = throughput(measure_secs(0.4), || {
        let q = &probes[i % HAMMING_BATCH];
        i += 1;
        black_box(words.iter().any(|w| w.hamming(q) <= tau32));
    });

    let mut out = vec![false; HAMMING_BATCH];
    let batch_qps = throughput(measure_secs(0.4), || {
        sliced.contains_within_batch(black_box(&probes), HAMMING_TAU, &mut out);
        black_box(&out);
    });
    let hamming_qps_sliced_batch = batch_qps * HAMMING_BATCH as f64;

    let speedup = hamming_qps_sliced_batch / hamming_qps_packed;
    println!(
        "{word_bits:>4} bits  hamming tau={HAMMING_TAU} over {HAMMING_PATTERNS} patterns: \
         packed scan {hamming_qps_packed:>12.0}/s  sliced batch {hamming_qps_sliced_batch:>12.0}/s \
         ({speedup:>5.2}x)",
    );
    HammingResult {
        word_bits,
        patterns: HAMMING_PATTERNS,
        tau: HAMMING_TAU,
        hamming_qps_packed,
        hamming_qps_sliced_batch,
        sliced_hamming_speedup: speedup,
    }
}

fn main() {
    let mut results = Vec::new();
    for &neurons in &NEURON_COUNTS {
        for backend in [PatternBackend::HashSet, PatternBackend::Bdd] {
            bench_config(neurons, backend, &mut results);
        }
    }
    let hamming_results: Vec<HammingResult> =
        HAMMING_WIDTHS.iter().map(|&w| bench_hamming(w)).collect();
    let min_sliced_hamming_speedup = hamming_results
        .iter()
        .map(|r| r.sliced_hamming_speedup)
        .fold(f64::MAX, f64::min);
    let min_over = |backend: &str| {
        results
            .iter()
            .filter(|r| r.backend == backend)
            .map(|r| r.membership_speedup)
            .fold(f64::MAX, f64::min)
    };
    let min_speedup_vs_naive_vec_bool = min_over("hashset");
    let min_bdd_membership_speedup = min_over("bdd");
    let report = Report {
        train_size: TRAIN_SIZE,
        probe_count: PROBE_COUNT,
        input_dim: INPUT_DIM,
        threads: std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        smoke: std::env::var_os("NAPMON_BENCH_SMOKE").is_some(),
        results,
        hamming_results,
        min_sliced_hamming_speedup,
        min_speedup_vs_naive_vec_bool,
        min_bdd_membership_speedup,
        notes: "membership = abstraction + store lookup on precomputed features; \
                naive baseline reproduces the seed's Vec<bool>-per-query path in the \
                same run. BDD rows share the identical node walk with the baseline, \
                so their gain is bounded to the abstraction/allocation share. \
                hamming_results = tau-tolerance queries over one pattern set: packed \
                per-query XOR-popcount scan vs the bit-sliced batch kernel, half \
                near-miss hits / half random misses per batch."
            .to_string(),
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!(
        "\nmin membership speedup vs naive Vec<bool> baseline (hash store): \
         {min_speedup_vs_naive_vec_bool:.2}x"
    );
    println!(
        "min BDD membership speedup (walk shared with baseline): {min_bdd_membership_speedup:.2}x"
    );
    println!("min sliced-batch hamming speedup vs packed scan: {min_sliced_hamming_speedup:.2}x");
    println!("wrote {path}");
}
