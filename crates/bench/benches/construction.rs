//! Monitor-construction benchmarks (experiment A6, construction half).
//!
//! Measures the build cost of every monitor family, standard vs robust,
//! serial vs parallel, as the training-set size grows. The paper's robust
//! construction adds one abstract-interpretation pass per training sample;
//! these benches quantify that overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use napmon_absint::Domain;
use napmon_bench::{random_inputs, random_network};
use napmon_core::{MonitorBuilder, MonitorKind};
use std::hint::black_box;

fn construction(c: &mut Criterion) {
    let net = random_network(11, 64, &[32, 16]);
    let layer = net.penultimate_boundary();
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);

    for &n in &[128usize, 512] {
        let data = random_inputs(13, &net, n);
        for (name, kind) in [
            ("minmax", MonitorKind::min_max()),
            ("pattern", MonitorKind::pattern()),
            ("interval2", MonitorKind::interval(2)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("standard/{name}"), n),
                &data,
                |b, data| {
                    b.iter(|| {
                        let m = MonitorBuilder::new(&net, layer)
                            .build(kind.clone(), black_box(data))
                            .unwrap();
                        black_box(m)
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("robust-box/{name}"), n),
                &data,
                |b, data| {
                    b.iter(|| {
                        let m = MonitorBuilder::new(&net, layer)
                            .robust(0.02, 0, Domain::Box)
                            .build(kind.clone(), black_box(data))
                            .unwrap();
                        black_box(m)
                    })
                },
            );
        }
        group.bench_with_input(
            BenchmarkId::new("robust-box-parallel/pattern", n),
            &data,
            |b, data| {
                b.iter(|| {
                    let m = MonitorBuilder::new(&net, layer)
                        .robust(0.02, 0, Domain::Box)
                        .parallel(true)
                        .build(MonitorKind::pattern(), black_box(data))
                        .unwrap();
                    black_box(m)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, construction);
criterion_main!(benches);
