//! Throughput of the sharded online monitoring engine.
//!
//! Serves the same in-distribution workload through `napmon-serve` engines
//! with 1, 2, and 4 shards and records requests/sec per configuration,
//! plus a direct single-thread `query_batch` baseline (no channels, no
//! threads) so the serving overhead is visible. Results land in
//! `BENCH_serve.json` at the workspace root.
//!
//! Shard scaling is hardware-bound: on an N-core machine the expected
//! 4-shard/1-shard ratio is `min(4, N)` minus channel overhead, and on a
//! single core it is ~1.0 by construction — the JSON records the measuring
//! machine's `threads` so readers can judge the rows. Set
//! `NAPMON_BENCH_SMOKE=1` to run a seconds-long smoke pass that still
//! writes the full JSON schema (CI validates it).

use napmon_core::{
    Monitor, MonitorBuilder, MonitorKind, MonitorSpec, PatternBackend, ThresholdPolicy,
};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_registry::{MonitorRegistry, RegistryConfig};
use napmon_serve::{EngineConfig, MonitorEngine};
use napmon_tensor::Prng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const TRAIN_SIZE: usize = 256;
const BATCH_SIZE: usize = 512;
const INPUT_DIM: usize = 16;
const NEURONS: usize = 64;
const MICRO_BATCH: usize = 64;
/// Hot-swap flips measured for the registry flip-latency figure.
const FLIP_COUNT: usize = 16;

fn smoke() -> bool {
    std::env::var_os("NAPMON_BENCH_SMOKE").is_some()
}

/// Wall-clock budget per measured configuration.
fn measure_secs() -> f64 {
    if smoke() {
        0.05
    } else {
        1.0
    }
}

#[derive(Serialize)]
struct ShardRow {
    shards: usize,
    /// Requests/sec through `submit_batch` (channels + workers).
    qps: f64,
    /// This row's qps over the 1-shard row's.
    speedup_vs_1shard: f64,
    /// Mean in-shard latency per request (ns), from the engine's own
    /// online metrics.
    mean_latency_ns: f64,
    /// Warn rate over the measured stream (0.0 for this in-distribution
    /// workload).
    warn_rate: f64,
    /// Requests served during measurement.
    requests: u64,
}

#[derive(Serialize)]
struct ObsOverhead {
    /// Requests/sec through a 1-shard engine with tracing disarmed.
    qps_uninstrumented: f64,
    /// Requests/sec through the same engine with tracing armed and every
    /// batch submitted under a minted trace id (the worst-case probe
    /// path: clock reads + span records on every micro-batch).
    qps_instrumented: f64,
    /// `qps_uninstrumented / qps_instrumented` — 1.0 means free;
    /// `validate_bench` gates this at ≤ 1.05 on non-smoke runs.
    ratio: f64,
    /// Whether the binary was built with the `obs` feature (probe shims
    /// compile to no-ops otherwise, so the ratio prices nothing).
    probes_enabled: bool,
}

#[derive(Serialize)]
struct Report {
    threads: usize,
    train_size: usize,
    batch_size: usize,
    input_dim: usize,
    neurons: usize,
    micro_batch: usize,
    /// Direct `query_batch` on the caller thread: the no-engine baseline.
    direct_qps: f64,
    rows: Vec<ShardRow>,
    speedup_4shard_vs_1shard: f64,
    /// Requests/sec through `MonitorRegistry::query_batch` (tenant lookup
    /// + pointer load on top of a 1-shard engine, no shadow attached).
    registry_dispatch_qps: f64,
    /// 1-shard engine qps over `registry_dispatch_qps`: the price of the
    /// registry's routing layer as a within-run ratio (~1.0 expected).
    registry_dispatch_overhead: f64,
    /// 1-shard engine qps over the registry's qps *with one shadow
    /// candidate attached and mirroring*. The shadow contract is ≤ 1.10
    /// where the mirror can run on its own core; `validate_bench` gates
    /// it threads-aware.
    registry_shadow_overhead: f64,
    /// Mean `promote()` wall time (µs) over hot-swap flips: detach the
    /// mirror, flush it, flip the active pointer, hand the old engine to
    /// the background drainer.
    registry_flip_latency_us: f64,
    /// Cost of the observability probes on the serving hot path, measured
    /// in one binary via the runtime tracing toggle.
    obs_overhead: ObsOverhead,
    smoke: bool,
    notes: String,
}

/// Measures `registry.query_batch` throughput over the shared batch for
/// the configured window, subtracting `warmup` requests already counted.
fn measure_registry_qps(registry: &MonitorRegistry, shared: &std::sync::Arc<[Vec<f64>]>) -> f64 {
    // Warm-up batch grows shard scratch buffers, same as the engine rows.
    registry
        .query_batch("bench", std::sync::Arc::clone(shared))
        .unwrap();
    let start = Instant::now();
    let mut served = 0u64;
    while start.elapsed().as_secs_f64() < measure_secs() {
        black_box(
            registry
                .query_batch("bench", std::sync::Arc::clone(shared))
                .unwrap(),
        );
        served += BATCH_SIZE as u64;
    }
    served as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let net = Network::seeded(
        2024,
        INPUT_DIM,
        &[
            LayerSpec::dense(NEURONS, Activation::Relu),
            LayerSpec::dense(2, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(55);
    let train: Vec<Vec<f64>> = (0..TRAIN_SIZE)
        .map(|_| rng.uniform_vec(INPUT_DIM, -1.0, 1.0))
        .collect();
    let monitor = MonitorBuilder::new(&net, 2)
        .build(
            MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::HashSet, 0),
            &train,
        )
        .unwrap();

    // Steady-state operation: in-distribution probes, membership hits, no
    // warning evidence to build. Shared as one `Arc` so the measured loops
    // pay a refcount bump per batch, not a per-request clone — the same
    // zero-copy resubmission a replaying client would use.
    let mut probes: Vec<Vec<f64>> = (0..BATCH_SIZE)
        .map(|i| train[i % TRAIN_SIZE].clone())
        .collect();
    rng.shuffle(&mut probes);
    let shared: std::sync::Arc<[Vec<f64>]> = probes.clone().into();

    // Direct single-thread baseline: no channels, no worker threads.
    let direct_start = Instant::now();
    let mut direct_served = 0u64;
    while direct_start.elapsed().as_secs_f64() < measure_secs() {
        black_box(monitor.query_batch(&net, &probes).unwrap());
        direct_served += BATCH_SIZE as u64;
    }
    let direct_qps = direct_served as f64 / direct_start.elapsed().as_secs_f64();
    println!("direct query_batch baseline {direct_qps:>12.0} req/s");

    let mut rows: Vec<ShardRow> = Vec::new();
    for &shards in &SHARD_COUNTS {
        let engine = MonitorEngine::new(
            net.clone(),
            monitor.clone(),
            EngineConfig {
                shards,
                micro_batch: MICRO_BATCH,
            },
        );
        // Warm-up: grow every shard's scratch buffers. (Its 512 requests
        // also sit in the final report's latency/warn-rate stream — a
        // <0.1% share of the measured traffic — while `requests` below is
        // measurement-only.)
        engine.submit_batch(std::sync::Arc::clone(&shared)).unwrap();
        let baseline = engine.report();

        let start = Instant::now();
        while start.elapsed().as_secs_f64() < measure_secs() {
            black_box(engine.submit_batch(std::sync::Arc::clone(&shared)).unwrap());
        }
        let elapsed = start.elapsed().as_secs_f64();
        let report = engine.shutdown();
        let served = report.requests - baseline.requests;
        let qps = served as f64 / elapsed;
        let speedup = rows.first().map_or(1.0, |first: &ShardRow| qps / first.qps);
        println!(
            "{shards} shard(s) {qps:>12.0} req/s  ({speedup:>5.2}x vs 1 shard)  \
             mean in-shard latency {:>7.0}ns",
            report.latency_ns.mean(),
        );
        rows.push(ShardRow {
            shards,
            qps,
            speedup_vs_1shard: speedup,
            mean_latency_ns: report.latency_ns.mean(),
            warn_rate: report.warn_rate,
            requests: served,
        });
    }

    let speedup_4shard_vs_1shard = rows
        .iter()
        .find(|r| r.shards == 4)
        .map_or(0.0, |r| r.speedup_vs_1shard);

    // Registry dispatch: the same workload behind a `MonitorRegistry`,
    // so the delta prices the routing layer (tenant lookup +
    // active-pointer load) and then the shadow mirror. The registry
    // serves `ComposedMonitor` engines, so the overhead baseline is a
    // fresh 1-shard engine over the composed build of the same spec —
    // like-for-like, measured in the same run; both overheads are
    // within-run ratios and survive hardware changes in compare mode.
    let shard_config = EngineConfig {
        shards: 1,
        micro_batch: MICRO_BATCH,
    };
    let composed = MonitorSpec::new(
        2,
        MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::HashSet, 0),
    )
    .build(&net, &train)
    .unwrap();
    let fresh_engine = || MonitorEngine::new(net.clone(), composed.clone(), shard_config);
    let baseline_engine = fresh_engine();
    baseline_engine
        .submit_batch(std::sync::Arc::clone(&shared))
        .unwrap();
    let start = Instant::now();
    let mut served = 0u64;
    while start.elapsed().as_secs_f64() < measure_secs() {
        black_box(
            baseline_engine
                .submit_batch(std::sync::Arc::clone(&shared))
                .unwrap(),
        );
        served += BATCH_SIZE as u64;
    }
    let engine_1shard_qps = served as f64 / start.elapsed().as_secs_f64();
    baseline_engine.shutdown();
    let registry = MonitorRegistry::new(RegistryConfig::with_engine(shard_config));
    registry.mount_engine("bench", 1, fresh_engine()).unwrap();
    let registry_dispatch_qps = measure_registry_qps(&registry, &shared);
    let registry_dispatch_overhead = engine_1shard_qps / registry_dispatch_qps;
    println!(
        "registry dispatch     {registry_dispatch_qps:>12.0} req/s  \
         ({registry_dispatch_overhead:>5.2}x the 1-shard engine)"
    );

    registry
        .mount_shadow_engine("bench", 2, fresh_engine())
        .unwrap();
    let shadow_qps = measure_registry_qps(&registry, &shared);
    let registry_shadow_overhead = engine_1shard_qps / shadow_qps;
    println!(
        "registry + 1 shadow   {shadow_qps:>12.0} req/s  \
         ({registry_shadow_overhead:>5.2}x the 1-shard engine)"
    );

    // Flip latency: promote the standing shadow, then keep re-shadowing
    // and promoting. Each `promote` detaches + flushes the mirror, flips
    // the active pointer, and hands the retiree to the background
    // drainer; retirees are reaped as we go so the flip mill does not
    // stack idle engines.
    let mut flip_ns = 0u128;
    for flip in 0..FLIP_COUNT {
        if flip > 0 {
            registry
                .mount_shadow_engine("bench", flip as u32 + 2, fresh_engine())
                .unwrap();
        }
        let start = Instant::now();
        black_box(registry.promote("bench").unwrap());
        flip_ns += start.elapsed().as_nanos();
        registry.reap_retired();
    }
    let registry_flip_latency_us = flip_ns as f64 / FLIP_COUNT as f64 / 1_000.0;
    println!(
        "hot-swap flip latency {registry_flip_latency_us:>12.1} us mean over {FLIP_COUNT} promotes"
    );
    registry.shutdown();

    // Obs-probe overhead: one engine, one workload, toggled at runtime.
    // The uninstrumented leg runs with tracing disarmed (probes read the
    // flag and fold away); the instrumented leg arms tracing and submits
    // every batch under a minted trace id, so each micro-batch pays the
    // queue-wait and verdict span records — the worst-case probe cost.
    let obs_engine = fresh_engine();
    obs_engine
        .submit_batch(std::sync::Arc::clone(&shared))
        .unwrap();
    napmon_obs::set_tracing(false);
    let start = Instant::now();
    let mut served = 0u64;
    while start.elapsed().as_secs_f64() < measure_secs() {
        black_box(
            obs_engine
                .submit_batch(std::sync::Arc::clone(&shared))
                .unwrap(),
        );
        served += BATCH_SIZE as u64;
    }
    let qps_uninstrumented = served as f64 / start.elapsed().as_secs_f64();
    napmon_obs::set_tracing(true);
    let start = Instant::now();
    let mut served = 0u64;
    while start.elapsed().as_secs_f64() < measure_secs() {
        let trace_id = napmon_obs::mint_trace_id();
        black_box(
            obs_engine
                .submit_batch_traced(std::sync::Arc::clone(&shared), trace_id)
                .unwrap(),
        );
        served += BATCH_SIZE as u64;
    }
    let qps_instrumented = served as f64 / start.elapsed().as_secs_f64();
    napmon_obs::set_tracing(false);
    obs_engine.shutdown();
    let obs_overhead = ObsOverhead {
        qps_uninstrumented,
        qps_instrumented,
        ratio: qps_uninstrumented / qps_instrumented,
        probes_enabled: cfg!(feature = "obs"),
    };
    println!(
        "obs probes            {qps_instrumented:>12.0} req/s traced  \
         ({:>5.3}x the untraced {qps_uninstrumented:>12.0} req/s, probes {})",
        obs_overhead.ratio,
        if obs_overhead.probes_enabled {
            "on"
        } else {
            "off"
        },
    );

    let threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let report = Report {
        threads,
        train_size: TRAIN_SIZE,
        batch_size: BATCH_SIZE,
        input_dim: INPUT_DIM,
        neurons: NEURONS,
        micro_batch: MICRO_BATCH,
        direct_qps,
        rows,
        speedup_4shard_vs_1shard,
        registry_dispatch_qps,
        registry_dispatch_overhead,
        registry_shadow_overhead,
        registry_flip_latency_us,
        obs_overhead,
        smoke: smoke(),
        // The machine shape lives in the structured `threads` field only —
        // prose copies of it went stale whenever the file was regenerated
        // on different hardware.
        notes: format!(
            "in-distribution workload (all probes hit the pattern set); \
             shard scaling and shadow-mirror overhead are bounded by the \
             measuring machine's cores (see the `threads` field); smoke = {}",
            smoke()
        ),
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!("\n4-shard vs 1-shard speedup: {speedup_4shard_vs_1shard:.2}x (on {threads} core(s))");
    println!("wrote {path}");
}
