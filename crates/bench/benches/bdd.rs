//! Pattern-storage benchmarks (experiment A5).
//!
//! The paper's footnote 2 claims `word2set` (don't-care expansion) causes
//! no blow-up *when patterns live in a BDD*. These benches compare the BDD
//! against the explicit hash-set on exactly that workload: inserting cubes
//! with growing numbers of don't-cares, and membership queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use napmon_bdd::Bdd;
use napmon_tensor::Prng;
use std::collections::HashSet;
use std::hint::black_box;

fn random_cube(rng: &mut Prng, vars: usize, dont_cares: usize) -> Vec<Option<bool>> {
    let free = rng.sample_indices(vars, dont_cares);
    (0..vars)
        .map(|i| {
            if free.contains(&i) {
                None
            } else {
                Some(rng.chance(0.5))
            }
        })
        .collect()
}

fn expand(cube: &[Option<bool>]) -> Vec<Vec<bool>> {
    let free: Vec<usize> = cube
        .iter()
        .enumerate()
        .filter(|(_, l)| l.is_none())
        .map(|(i, _)| i)
        .collect();
    (0u64..(1u64 << free.len()))
        .map(|mask| {
            let mut w: Vec<bool> = cube.iter().map(|l| l.unwrap_or(false)).collect();
            for (bit, &pos) in free.iter().enumerate() {
                w[pos] = (mask >> bit) & 1 == 1;
            }
            w
        })
        .collect()
}

fn insertion(c: &mut Criterion) {
    let vars = 32;
    let mut group = c.benchmark_group("word2set-insertion");
    group.sample_size(20);
    for &dc in &[0usize, 4, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::new("bdd", dc), &dc, |b, &dc| {
            b.iter(|| {
                let mut rng = Prng::seed(97);
                let mut bdd = Bdd::new(vars);
                let mut root = Bdd::FALSE;
                for _ in 0..16 {
                    let cube = random_cube(&mut rng, vars, dc);
                    root = bdd.insert_cube(root, &cube);
                }
                black_box(bdd.satcount(root))
            })
        });
        // The hash-set must materialize 2^dc words per insertion — the
        // blow-up the paper avoids. Capped at 12 don't-cares to keep the
        // bench finite; the asymmetry IS the result.
        if dc <= 12 {
            group.bench_with_input(BenchmarkId::new("hashset", dc), &dc, |b, &dc| {
                b.iter(|| {
                    let mut rng = Prng::seed(97);
                    let mut set: HashSet<Vec<bool>> = HashSet::new();
                    for _ in 0..16 {
                        let cube = random_cube(&mut rng, vars, dc);
                        set.extend(expand(&cube));
                    }
                    black_box(set.len())
                })
            });
        }
    }
    group.finish();

    // Attribution: the construction speedup of the FxHash tables shows up
    // as unique-table / op-cache hit rates over a realistic insertion
    // workload. One deterministic construction per don't-care level,
    // counters reset in between, so before/after comparisons of the hasher
    // can point at cache behavior rather than guessing.
    println!("\nword2set cache behavior (16 cubes, {vars} vars):");
    println!(
        "{:>4} {:>12} {:>12} {:>14} {:>14} {:>14}",
        "dc", "arena-nodes", "reachable", "unique-hit%", "op-hit%", "patterns"
    );
    for &dc in &[0usize, 4, 8, 12, 16] {
        let mut rng = Prng::seed(97);
        let mut bdd = Bdd::new(vars);
        bdd.reset_cache_stats();
        let mut root = Bdd::FALSE;
        for _ in 0..16 {
            let cube = random_cube(&mut rng, vars, dc);
            root = bdd.insert_cube(root, &cube);
        }
        let stats = bdd.cache_stats();
        println!(
            "{:>4} {:>12} {:>12} {:>13.1}% {:>13.1}% {:>14.0}",
            dc,
            bdd.num_nodes(),
            bdd.reachable_nodes(root),
            100.0 * stats.unique_hit_rate(),
            100.0 * stats.op_hit_rate(),
            bdd.satcount(root),
        );
    }
}

fn membership(c: &mut Criterion) {
    let vars = 64;
    let mut rng = Prng::seed(101);
    let mut bdd = Bdd::new(vars);
    let mut root = Bdd::FALSE;
    let mut set: HashSet<Vec<bool>> = HashSet::new();
    for _ in 0..256 {
        let cube = random_cube(&mut rng, vars, 6);
        root = bdd.insert_cube(root, &cube);
        set.extend(expand(&cube));
    }
    let probes: Vec<Vec<bool>> = (0..64)
        .map(|_| (0..vars).map(|_| rng.chance(0.5)).collect())
        .collect();

    let mut group = c.benchmark_group("membership");
    group.bench_function("bdd", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let p = &probes[i % probes.len()];
            i += 1;
            black_box(bdd.eval(root, black_box(p)))
        })
    });
    group.bench_function("hashset", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let p = &probes[i % probes.len()];
            i += 1;
            black_box(set.contains(black_box(p)))
        })
    });
    group.bench_function("bdd-hamming2", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let p = &probes[i % probes.len()];
            i += 1;
            black_box(bdd.contains_within_hamming(root, black_box(p), 2))
        })
    });
    group.finish();
}

criterion_group!(benches, insertion, membership);
criterion_main!(benches);
