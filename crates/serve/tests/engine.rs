//! Functional tests of the sharded engine: verdict parity with the batch
//! APIs, metrics, error surfacing, concurrent clients, and drain-on-
//! shutdown semantics.

use napmon_core::{
    Monitor, MonitorBuilder, MonitorError, MonitorKind, PatternBackend, ThresholdPolicy,
};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_serve::{EngineConfig, MonitorEngine, ServeError};
use napmon_tensor::Prng;
use std::sync::Arc;

fn fixture(kind: MonitorKind) -> (Network, napmon_core::AnyMonitor, Vec<Vec<f64>>) {
    let net = Network::seeded(
        42,
        6,
        &[
            LayerSpec::dense(16, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(7);
    let train: Vec<Vec<f64>> = (0..96).map(|_| rng.uniform_vec(6, -1.0, 1.0)).collect();
    let monitor = MonitorBuilder::new(&net, 2).build(kind, &train).unwrap();
    (net, monitor, train)
}

fn probes(n: usize) -> Vec<Vec<f64>> {
    let mut rng = Prng::seed(1234);
    (0..n).map(|_| rng.uniform_vec(6, -1.5, 1.5)).collect()
}

#[test]
fn batch_verdicts_match_sequential_for_all_shard_counts() {
    let (net, monitor, _) = fixture(MonitorKind::pattern_with(
        ThresholdPolicy::Mean,
        PatternBackend::Bdd,
        0,
    ));
    let inputs = probes(97); // odd size: uneven chunks
    let expected = monitor.query_batch(&net, &inputs).unwrap();
    for shards in [1usize, 2, 4] {
        let engine = MonitorEngine::new(
            net.clone(),
            monitor.clone(),
            EngineConfig {
                shards,
                micro_batch: 13,
            },
        );
        let got = engine.submit_batch(inputs.clone()).unwrap();
        assert_eq!(got, expected, "{shards} shards");
        let report = engine.shutdown();
        assert_eq!(report.requests, inputs.len() as u64);
    }
}

#[test]
fn single_submits_match_direct_verdicts() {
    let (net, monitor, _) = fixture(MonitorKind::min_max());
    let engine = MonitorEngine::new(net.clone(), monitor.clone(), EngineConfig::with_shards(2));
    for input in probes(20) {
        let direct = monitor.verdict(&net, &input).unwrap();
        let served = engine.submit(input).unwrap();
        assert_eq!(served, direct);
    }
    let report = engine.shutdown();
    assert_eq!(report.requests, 20);
}

#[test]
fn report_observes_the_stream_without_stopping_it() {
    let (net, monitor, train) = fixture(MonitorKind::pattern());
    let engine = MonitorEngine::new(net, monitor, EngineConfig::with_shards(2));
    assert_eq!(engine.report().requests, 0);
    engine.submit_batch(train.clone()).unwrap();
    let mid = engine.report();
    assert_eq!(mid.requests, train.len() as u64);
    // Training data never warns on its own monitor.
    assert_eq!(mid.warnings, 0);
    assert_eq!(mid.warn_rate, 0.0);
    assert!(mid.latency_ns.mean() > 0.0);
    // The engine still serves after a snapshot.
    engine.submit_batch(train.clone()).unwrap();
    let report = engine.shutdown();
    assert_eq!(report.requests, 2 * train.len() as u64);
    // Every shard saw work and the per-shard rows sum to the total.
    assert_eq!(report.shards.len(), 2);
    let sum: u64 = report.shards.iter().map(|s| s.requests()).sum();
    assert_eq!(sum, report.requests);
    for shard in &report.shards {
        assert!(shard.requests() > 0, "shard {} idle", shard.shard);
    }
}

#[test]
fn warn_rate_counts_out_of_distribution_traffic() {
    let (net, monitor, train) = fixture(MonitorKind::min_max());
    let engine = MonitorEngine::new(net, monitor, EngineConfig::with_shards(2));
    let far: Vec<Vec<f64>> = (0..10).map(|i| vec![50.0 + i as f64; 6]).collect();
    let verdicts = engine.submit_batch(far).unwrap();
    assert!(verdicts.iter().all(|v| v.warning));
    engine.submit_batch(train).unwrap();
    let report = engine.shutdown();
    assert_eq!(report.warnings, 10);
    assert!((report.warn_rate - 10.0 / report.requests as f64).abs() < 1e-12);
}

#[test]
fn malformed_inputs_surface_as_monitor_errors() {
    let (net, monitor, _) = fixture(MonitorKind::min_max());
    let engine = MonitorEngine::new(net, monitor, EngineConfig::with_shards(2));
    match engine.submit(vec![1.0, 2.0]) {
        Err(ServeError::Monitor(MonitorError::DimensionMismatch { .. })) => {}
        other => panic!("expected dimension mismatch, got {other:?}"),
    }
    let mut batch = probes(8);
    batch[5] = vec![0.0; 2];
    assert!(matches!(
        engine.submit_batch(batch),
        Err(ServeError::Monitor(MonitorError::DimensionMismatch { .. }))
    ));
    // Rejected requests are not counted as served. The batch splits into
    // chunks [0..4] and [4..8]; the second chunk stops at the malformed
    // index 5, so exactly 4 + 1 requests were actually served.
    let report = engine.shutdown();
    assert_eq!(report.requests, 5);
}

#[test]
fn concurrent_clients_share_one_engine() {
    let (net, monitor, _) = fixture(MonitorKind::pattern());
    let inputs = probes(64);
    let expected = monitor.query_batch(&net, &inputs).unwrap();
    let engine = MonitorEngine::new(net, monitor, EngineConfig::with_shards(4));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let engine = &engine;
                let inputs = inputs.clone();
                scope.spawn(move || engine.submit_batch(inputs).unwrap())
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), expected);
        }
    });
    let report = engine.shutdown();
    assert_eq!(report.requests, 3 * 64);
}

#[test]
fn shutdown_drains_pending_async_batches() {
    let (net, monitor, _) = fixture(MonitorKind::pattern());
    let inputs = probes(200);
    let expected = monitor.query_batch(&net, &inputs).unwrap();
    let engine = MonitorEngine::new(net, monitor, EngineConfig::with_shards(2));
    // Enqueue without collecting, then shut down immediately: the jobs are
    // in flight (queued or being served) when the channels close.
    let pending = engine.submit_batch_async(inputs);
    assert_eq!(pending.len(), 200);
    let report = engine.shutdown();
    // Shutdown drained everything...
    assert_eq!(report.requests, 200);
    // ...and the replies are still collectable after the engine is gone.
    assert_eq!(pending.wait().unwrap(), expected);
}

#[test]
fn empty_batch_is_served_without_work() {
    let (net, monitor, _) = fixture(MonitorKind::min_max());
    let engine = MonitorEngine::new(net, monitor, EngineConfig::default());
    assert!(engine.submit_batch(Vec::new()).unwrap().is_empty());
    let pending = engine.submit_batch_async(Vec::new());
    assert!(pending.is_empty());
    assert!(pending.wait().unwrap().is_empty());
    assert_eq!(engine.shutdown().requests, 0);
}

#[test]
fn degenerate_configs_are_normalized() {
    let (net, monitor, _) = fixture(MonitorKind::min_max());
    let engine = MonitorEngine::new(
        net,
        monitor,
        EngineConfig {
            shards: 0,
            micro_batch: 0,
        },
    );
    assert_eq!(engine.shards(), 1);
    assert_eq!(engine.config().micro_batch, 1);
    let verdicts = engine.submit_batch(probes(5)).unwrap();
    assert_eq!(verdicts.len(), 5);
    engine.shutdown();
}

/// A monitor whose query path panics: the only way a shard dies.
struct PanickingMonitor(napmon_core::FeatureExtractor);

impl Monitor for PanickingMonitor {
    fn extractor(&self) -> &napmon_core::FeatureExtractor {
        &self.0
    }

    fn verdict_features(&self, _features: &[f64]) -> napmon_core::Verdict {
        panic!("synthetic shard failure");
    }
}

#[test]
fn dead_engine_reports_shard_down_instead_of_hanging() {
    let (net, _, _) = fixture(MonitorKind::min_max());
    let fx = napmon_core::FeatureExtractor::new(&net, 2).unwrap();
    let engine = MonitorEngine::new(net, PanickingMonitor(fx), EngineConfig::with_shards(2));
    // Each well-formed submission kills the shard that serves it.
    for _ in 0..2 {
        assert!(matches!(
            engine.submit(vec![0.0; 6]),
            Err(ServeError::ShardDown)
        ));
    }
    // With every shard dead, submissions must fail fast — not busy-loop.
    assert!(matches!(
        engine.submit(vec![0.0; 6]),
        Err(ServeError::ShardDown)
    ));
    assert!(matches!(
        engine.submit_batch(probes(32)),
        Err(ServeError::ShardDown)
    ));
    let report = engine.shutdown();
    assert_eq!(report.requests, 0);
}

#[test]
fn shared_arcs_are_accepted_and_exposed() {
    let (net, monitor, _) = fixture(MonitorKind::interval(2));
    let net = Arc::new(net);
    let monitor = Arc::new(monitor);
    let engine: MonitorEngine = MonitorEngine::new(
        Arc::clone(&net),
        Arc::clone(&monitor),
        EngineConfig::with_shards(1),
    );
    assert_eq!(engine.network().input_dim(), net.input_dim());
    assert!(engine.monitor().as_interval().is_some());
    let v = engine.submit(vec![0.0; 6]).unwrap();
    assert_eq!(v, monitor.verdict(&net, &[0.0; 6]).unwrap());
    engine.shutdown();
}

#[test]
fn engine_boots_from_artifact_file_with_identical_verdicts() {
    use napmon_artifact::{ArtifactError, MonitorArtifact};
    use napmon_core::MonitorSpec;

    let (net, _, train) = fixture(MonitorKind::min_max());
    let spec = MonitorSpec::new(2, MonitorKind::interval(2));
    let artifact = MonitorArtifact::build(spec, &net, &train).unwrap();
    let expected = artifact
        .monitor()
        .query_batch(artifact.network(), &probes(40))
        .unwrap();

    let dir = std::env::temp_dir().join("napmon_serve_artifact_test");
    let path = dir.join("monitor.artifact.json");
    artifact.save_json(&path).unwrap();

    // Fresh mount: only the file crosses the boundary.
    let engine = MonitorEngine::from_artifact_file(&path, EngineConfig::with_shards(2)).unwrap();
    let got = engine.submit_batch(probes(40)).unwrap();
    assert_eq!(got, expected);
    let report = engine.shutdown();
    assert_eq!(report.requests, 40);

    // A missing file is a typed error, not a panic.
    assert!(matches!(
        MonitorEngine::from_artifact_file(dir.join("nope.json"), EngineConfig::with_shards(1)),
        Err(ArtifactError::Io(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

/// The full persistence loop on the engine: build store-backed, serve,
/// absorb operation-time traffic, shut down, warm-start a second engine
/// from the segments on disk, and observe identical (enlarged) verdicts —
/// no rebuild anywhere.
#[test]
fn store_backed_engine_absorbs_and_warm_starts() {
    use napmon_core::MonitorSpec;
    use napmon_store::StoreProvider;

    let dir = std::env::temp_dir().join(format!("napmon_serve_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let net = Network::seeded(
        42,
        6,
        &[
            LayerSpec::dense(16, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(7);
    let train: Vec<Vec<f64>> = (0..96).map(|_| rng.uniform_vec(6, -1.0, 1.0)).collect();
    let spec = MonitorSpec::new(
        2,
        MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::Store, 0),
    );
    let monitor = spec
        .build_with_sources(&net, &train, &mut StoreProvider::new(&dir))
        .unwrap();

    let engine = MonitorEngine::new(net.clone(), monitor, EngineConfig::with_shards(2));
    // Training traffic is clean; find some warning traffic.
    let ood: Vec<Vec<f64>> = {
        let mut rng = Prng::seed(99);
        (0..32).map(|_| rng.uniform_vec(6, -3.0, 3.0)).collect()
    };
    let before = engine.submit_batch(ood.clone()).unwrap();
    assert!(before.iter().any(|v| v.warning), "need some novel traffic");

    // Absorb the novel traffic: every shard sees the enlargement at once.
    let fresh = engine.absorb_batch(&ood).unwrap();
    assert!(fresh > 0);
    let after = engine.submit_batch(ood.clone()).unwrap();
    assert!(
        after.iter().all(|v| !v.warning),
        "absorbed traffic is clean"
    );
    let expected: Vec<bool> = engine
        .submit_batch(probes(64))
        .unwrap()
        .iter()
        .map(|v| v.warning)
        .collect();
    engine.shutdown();

    // A fresh process: warm start from the segments, zero training data.
    let warm = MonitorEngine::from_store(&spec, net, &dir, EngineConfig::with_shards(2)).unwrap();
    let served: Vec<bool> = warm
        .submit_batch(probes(64))
        .unwrap()
        .iter()
        .map(|v| v.warning)
        .collect();
    assert_eq!(served, expected, "warm start drifted from the live engine");
    let absorbed = warm.submit_batch(ood).unwrap();
    assert!(absorbed.iter().all(|v| !v.warning), "absorptions persisted");
    warm.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Queue depth: visible while jobs wait, zero after a draining shutdown.
#[test]
fn queue_depth_reports_and_drains_to_zero() {
    let (net, monitor, _) = fixture(MonitorKind::pattern_with(
        ThresholdPolicy::Mean,
        PatternBackend::Bdd,
        0,
    ));
    let engine = MonitorEngine::new(net, monitor, EngineConfig::with_shards(2));
    let pending = engine.submit_batch_async(probes(200));
    let report = engine.shutdown();
    assert_eq!(report.queue_depth, 0, "shutdown must drain the queues");
    assert!(report.shards.iter().all(|s| s.queue_depth == 0));
    assert_eq!(pending.wait().unwrap().len(), 200);
}
