//! Proof that the steady-state submit path performs **zero heap
//! allocation per request**.
//!
//! A counting global allocator wraps `System`; after a warm-up batch has
//! grown every shard's scratch buffers, a large batch is served with the
//! counter armed. The per-batch machinery (one `Arc` spine, one reply
//! channel, O(chunks) channel nodes and chunk vectors) is allowed; what
//! must NOT appear is anything proportional to the number of requests —
//! the per-request path is forward pass into reused ping-pong buffers,
//! abstraction into a reused packed word, membership, and a metrics
//! update, none of which allocate once warm.
//!
//! This file is its own integration test binary so the allocator swap
//! cannot perturb any other test.

use napmon_core::{MonitorBuilder, MonitorKind, PatternBackend, ThresholdPolicy};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_serve::{EngineConfig, MonitorEngine};
use napmon_tensor::Prng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_batches_allocate_per_chunk_not_per_request() {
    const REQUESTS: usize = 2048;
    const SHARDS: usize = 2;
    const MICRO_BATCH: usize = 256;

    let net = Network::seeded(
        9,
        12,
        &[
            LayerSpec::dense(32, Activation::Relu),
            LayerSpec::dense(2, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(31);
    let train: Vec<Vec<f64>> = (0..256).map(|_| rng.uniform_vec(12, -1.0, 1.0)).collect();
    // Hash-backed pattern monitor: the fastest membership path, so any
    // stray allocation would dominate its per-request cost.
    let monitor = MonitorBuilder::new(&net, 2)
        .build(
            MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::HashSet, 0),
            &train,
        )
        .unwrap();
    let engine = MonitorEngine::new(
        net,
        monitor,
        EngineConfig {
            shards: SHARDS,
            micro_batch: MICRO_BATCH,
        },
    );

    // In-distribution probes: the steady state the paper's monitors live
    // in is "almost everything passes" (a warning allocates its evidence,
    // legitimately).
    let probes: Vec<Vec<f64>> = (0..REQUESTS)
        .map(|i| train[i % train.len()].clone())
        .collect();

    // Warm-up: grows every shard's forward/feature/word scratch buffers.
    engine.submit_batch(probes.clone()).unwrap();
    let warm_probes = probes.clone();

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let verdicts = engine.submit_batch(warm_probes).unwrap();
    COUNTING.store(false, Ordering::SeqCst);
    let counted = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(verdicts.len(), REQUESTS);
    assert!(verdicts.iter().all(|v| !v.warning));

    // O(chunks) budget: 2048 requests split into 256-request chunks is 8
    // jobs; each job costs a handful of allocations (channel node, chunk
    // verdict vector, reply node). 8 requests' worth of slack on top. If
    // any per-request path allocated even once, the count would be >= 2048.
    let chunks = REQUESTS.div_ceil(MICRO_BATCH);
    let budget = 16 * chunks + 64;
    assert!(
        counted <= budget,
        "steady-state batch of {REQUESTS} requests performed {counted} allocations \
         (budget {budget}); the per-request path is allocating"
    );
    engine.shutdown();
}
