//! The sharded online monitoring engine.

use crate::report::{ServeReport, ShardReport};
use napmon_artifact::{ArtifactError, MonitorArtifact};
use napmon_core::{
    AnyMonitor, ComposedMonitor, Monitor, MonitorError, MonitorSpec, QueryScratch, Verdict,
};
use napmon_nn::Network;
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// Serving error: either the monitor rejected an input, or the target
/// shard is gone (its thread panicked — queries themselves never panic on
/// well-formed inputs).
#[derive(Debug)]
pub enum ServeError {
    /// The monitor rejected the input (dimension mismatch).
    Monitor(MonitorError),
    /// The shard's worker thread is no longer running.
    ShardDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Monitor(e) => write!(f, "monitor error: {e}"),
            ServeError::ShardDown => write!(f, "shard worker is no longer running"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Monitor(e) => Some(e),
            ServeError::ShardDown => None,
        }
    }
}

impl From<MonitorError> for ServeError {
    fn from(e: MonitorError) -> Self {
        ServeError::Monitor(e)
    }
}

/// Engine sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of worker shards (threads). Zero is treated as one.
    pub shards: usize,
    /// Largest per-shard chunk a [`MonitorEngine::submit_batch`] call is
    /// split into. Zero is treated as one.
    pub micro_batch: usize,
}

impl Default for EngineConfig {
    /// One shard per available core, 64-request micro-batches.
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
            micro_batch: 64,
        }
    }
}

impl EngineConfig {
    /// The default micro-batch size with an explicit shard count.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    fn normalized(self) -> Self {
        Self {
            shards: self.shards.max(1),
            micro_batch: self.micro_batch.max(1),
        }
    }
}

/// Trace context riding a job: the request's trace id (0: untraced) and
/// its enqueue timestamp, so the worker can emit a queue-wait span on
/// pickup. Two plain `u64`s — free to carry when tracing is off.
#[derive(Clone, Copy)]
struct TraceCtx {
    id: u64,
    enqueued_ns: u64,
}

impl TraceCtx {
    /// A context for `trace_id`, stamped with the enqueue time when the
    /// request is actually traced (the clock is only read then).
    #[inline]
    fn for_id(trace_id: u64) -> Self {
        TraceCtx {
            id: trace_id,
            enqueued_ns: if trace_id != 0 && napmon_obs::tracing_enabled() {
                napmon_obs::now_ns()
            } else {
                0
            },
        }
    }

    #[inline]
    fn active(self) -> bool {
        self.id != 0 && napmon_obs::tracing_enabled()
    }
}

/// One unit of shard work.
///
/// Submissions carry their reply channel, so the worker loop is a plain
/// request/response server; `Stats` rides the same queue, which means a
/// snapshot observes a consistent point in the shard's stream.
enum Job {
    /// A contiguous chunk of a shared batch.
    Batch {
        inputs: Arc<[Vec<f64>]>,
        range: Range<usize>,
        reply: mpsc::Sender<BatchReply>,
        trace: TraceCtx,
    },
    /// One owned input.
    Single {
        input: Vec<f64>,
        reply: mpsc::Sender<Result<Verdict, MonitorError>>,
        trace: TraceCtx,
    },
    /// Metrics snapshot request.
    Stats { reply: mpsc::Sender<ShardReport> },
}

struct BatchReply {
    start: usize,
    result: Result<Vec<Verdict>, MonitorError>,
}

struct Shard {
    tx: mpsc::Sender<Job>,
    handle: JoinHandle<ShardReport>,
    /// Work jobs (batch chunks / singles, not metrics snapshots) enqueued
    /// but not yet picked up by the worker. Incremented before send,
    /// decremented by the worker on receive, so it never underflows.
    depth: Arc<AtomicUsize>,
}

/// A long-lived, sharded monitoring engine.
///
/// Construction spawns the worker shards; they stay hot until
/// [`MonitorEngine::shutdown`] (or drop, which also stops them after
/// draining). The engine is `Sync`: any number of client threads may
/// submit concurrently, and jobs are distributed round-robin.
///
/// Generic over the monitor so purpose-built monitors serve through the
/// same engine; [`AnyMonitor`] (the builder's product) is the default.
pub struct MonitorEngine<M: Monitor + Send + Sync + 'static = AnyMonitor> {
    net: Arc<Network>,
    monitor: Arc<M>,
    config: EngineConfig,
    shards: Vec<Shard>,
    round_robin: AtomicUsize,
}

impl<M: Monitor + Send + Sync + 'static> MonitorEngine<M> {
    /// Spawns `config.shards` worker threads serving `monitor` over `net`.
    ///
    /// `net` and `monitor` are accepted owned or already shared
    /// (`Arc<...>`) — each shard holds one clone of each `Arc`.
    pub fn new(
        net: impl Into<Arc<Network>>,
        monitor: impl Into<Arc<M>>,
        config: EngineConfig,
    ) -> Self {
        let net = net.into();
        let monitor = monitor.into();
        let config = config.normalized();
        let shards = (0..config.shards)
            .map(|id| {
                let (tx, rx) = mpsc::channel();
                let net = Arc::clone(&net);
                let monitor = Arc::clone(&monitor);
                let depth = Arc::new(AtomicUsize::new(0));
                let worker_depth = Arc::clone(&depth);
                let handle = std::thread::Builder::new()
                    .name(format!("napmon-shard-{id}"))
                    .spawn(move || {
                        run_shard(id, net.as_ref(), monitor.as_ref(), &rx, &worker_depth)
                    })
                    .expect("spawn shard worker");
                Shard { tx, handle, depth }
            })
            .collect();
        Self {
            net,
            monitor,
            config,
            shards,
            round_robin: AtomicUsize::new(0),
        }
    }

    /// The served network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The served monitor.
    pub fn monitor(&self) -> &M {
        &self.monitor
    }

    /// The (normalized) configuration the engine runs with.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Number of live worker shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn next_shard(&self) -> usize {
        self.round_robin.fetch_add(1, Ordering::Relaxed) % self.shards.len()
    }

    /// Per-shard chunk length for a batch of `n` requests: even across
    /// shards, capped by the configured micro-batch.
    fn chunk_len(&self, n: usize) -> usize {
        n.div_ceil(self.shards.len())
            .clamp(1, self.config.micro_batch)
    }

    /// Serves one input synchronously on the next shard (round-robin).
    ///
    /// # Errors
    ///
    /// [`ServeError::Monitor`] if the input does not match the network,
    /// [`ServeError::ShardDown`] if the target worker died.
    pub fn submit(&self, input: Vec<f64>) -> Result<Verdict, ServeError> {
        self.submit_traced(input, 0)
    }

    /// [`MonitorEngine::submit`] carrying a request trace id: when
    /// tracing is armed (the `obs` feature plus
    /// `napmon_obs::set_tracing`), the shard emits queue-wait and verdict
    /// spans under `trace_id`. A zero id means untraced.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MonitorEngine::submit`].
    pub fn submit_traced(&self, input: Vec<f64>, trace_id: u64) -> Result<Verdict, ServeError> {
        let (reply, rx) = mpsc::channel();
        let shard = &self.shards[self.next_shard()];
        let trace = TraceCtx::for_id(trace_id);
        shard.depth.fetch_add(1, Ordering::Relaxed);
        shard
            .tx
            .send(Job::Single {
                input,
                reply,
                trace,
            })
            .map_err(|_| {
                shard.depth.fetch_sub(1, Ordering::Relaxed);
                ServeError::ShardDown
            })?;
        rx.recv()
            .map_err(|_| ServeError::ShardDown)?
            .map_err(Into::into)
    }

    /// Serves a whole batch synchronously: micro-batches it across the
    /// shards and blocks until every verdict is back, in input order.
    ///
    /// Accepts an owned `Vec<Vec<f64>>` or an already-shared
    /// `Arc<[Vec<f64>]>` — repeated submissions of the same batch (load
    /// replay, benchmarking) should share one `Arc` so no input data is
    /// copied per call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MonitorEngine::submit`]; on a malformed input
    /// the whole containing chunk is rejected.
    pub fn submit_batch(
        &self,
        inputs: impl Into<Arc<[Vec<f64>]>>,
    ) -> Result<Vec<Verdict>, ServeError> {
        self.submit_batch_async(inputs).wait()
    }

    /// [`MonitorEngine::submit_batch`] carrying a request trace id (see
    /// [`MonitorEngine::submit_traced`]); every chunk of the batch emits
    /// spans under the same id.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MonitorEngine::submit_batch`].
    pub fn submit_batch_traced(
        &self,
        inputs: impl Into<Arc<[Vec<f64>]>>,
        trace_id: u64,
    ) -> Result<Vec<Verdict>, ServeError> {
        self.submit_batch_async_traced(inputs, trace_id).wait()
    }

    /// Enqueues a whole batch and returns immediately; the verdicts are
    /// collected with [`PendingBatch::wait`]. Jobs enqueued here are
    /// guaranteed to be served even if the engine is shut down before
    /// `wait` is called — shutdown drains, it does not cancel.
    pub fn submit_batch_async(&self, inputs: impl Into<Arc<[Vec<f64>]>>) -> PendingBatch {
        self.submit_batch_async_traced(inputs, 0)
    }

    /// [`MonitorEngine::submit_batch_async`] carrying a request trace id
    /// (see [`MonitorEngine::submit_traced`]).
    pub fn submit_batch_async_traced(
        &self,
        inputs: impl Into<Arc<[Vec<f64>]>>,
        trace_id: u64,
    ) -> PendingBatch {
        let inputs: Arc<[Vec<f64>]> = inputs.into();
        let n = inputs.len();
        let (reply, rx) = mpsc::channel();
        if n == 0 {
            return PendingBatch {
                total: 0,
                jobs: 0,
                rx,
            };
        }
        let trace = TraceCtx::for_id(trace_id);
        let chunk = self.chunk_len(n);
        let mut jobs = 0usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + chunk).min(n);
            let mut job = Job::Batch {
                inputs: Arc::clone(&inputs),
                range: start..end,
                reply: reply.clone(),
                trace,
            };
            // A dead shard bounces the send; offer the chunk to every
            // shard once, probing from a single round-robin snapshot so
            // concurrent submitters cannot make the probe revisit the
            // same dead shard. A chunk nobody accepts is dropped here and
            // surfaces as a shortfall in `wait` (ShardDown) — never
            // busy-loop on a fully-dead engine.
            let base = self.next_shard();
            let mut dispatched = false;
            for offset in 0..self.shards.len() {
                let shard = &self.shards[(base + offset) % self.shards.len()];
                shard.depth.fetch_add(1, Ordering::Relaxed);
                match shard.tx.send(job) {
                    Ok(()) => {
                        dispatched = true;
                        break;
                    }
                    Err(mpsc::SendError(bounced)) => {
                        shard.depth.fetch_sub(1, Ordering::Relaxed);
                        job = bounced;
                    }
                }
            }
            if dispatched {
                jobs += 1;
            }
            start = end;
        }
        PendingBatch { total: n, jobs, rx }
    }

    /// Jobs enqueued but not yet picked up, summed across all shards —
    /// the backlog gauge, read straight from the shard counters without
    /// riding the job queues. Serving layers use it for cheap
    /// backpressure decisions on every request; for a queue-consistent
    /// snapshot use [`MonitorEngine::report`].
    pub fn queue_depth(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.depth.load(Ordering::Relaxed))
            .sum()
    }

    /// A consistent snapshot of every shard's metrics, aggregated. Rides
    /// the job queues, so it reflects all work enqueued before it.
    pub fn report(&self) -> ServeReport {
        let (reply, rx) = mpsc::channel();
        let mut expected = 0usize;
        for shard in &self.shards {
            if shard
                .tx
                .send(Job::Stats {
                    reply: reply.clone(),
                })
                .is_ok()
            {
                expected += 1;
            }
        }
        drop(reply);
        ServeReport::aggregate(rx.iter().take(expected).collect())
    }

    /// Graceful shutdown: closes every job channel, lets each shard drain
    /// its queue, joins the workers, and returns the final aggregated
    /// report. In-flight [`PendingBatch`]es remain collectable afterwards.
    pub fn shutdown(self) -> ServeReport {
        let (txs, handles): (Vec<_>, Vec<_>) =
            self.shards.into_iter().map(|s| (s.tx, s.handle)).unzip();
        drop(txs);
        ServeReport::aggregate(handles.into_iter().filter_map(|h| h.join().ok()).collect())
    }

    /// [`MonitorEngine::shutdown`] through a shared handle: succeeds once
    /// the caller holds the last clone of the `Arc` (every serving thread
    /// has been joined), and hands the still-shared engine back otherwise
    /// — shutting down under a live submitter would strand its requests.
    ///
    /// This is the shutdown path for serving layers (like `napmon-wire`)
    /// that clone one engine handle per connection thread.
    ///
    /// # Errors
    ///
    /// Returns `Err(engine)` if other clones of the handle are still
    /// alive.
    pub fn shutdown_shared(engine: Arc<Self>) -> Result<ServeReport, Arc<Self>> {
        Arc::try_unwrap(engine).map(Self::shutdown)
    }
}

impl MonitorEngine<ComposedMonitor> {
    /// Boots an engine straight from a deployment artifact: the embedded
    /// network and monitor are mounted as-is, so the served verdicts are
    /// bit-identical to what the artifact's builder measured.
    ///
    /// The artifact should come from [`MonitorArtifact::load_json`] (which
    /// validates it) or [`MonitorArtifact::build`]; this constructor does
    /// not re-validate.
    pub fn from_artifact(artifact: MonitorArtifact, config: EngineConfig) -> Self {
        let (net, monitor) = artifact.into_parts();
        Self::new(net, monitor, config)
    }

    /// Loads, validates, and mounts an artifact file in one step — the
    /// whole "boot a monitor next to its network in a fresh process" path.
    /// Store-backed artifacts reattach to their segments on disk during
    /// the load, so this is also a warm start for them.
    ///
    /// # Errors
    ///
    /// Any [`MonitorArtifact::load_json`] error: unreadable file, foreign
    /// format version, an artifact whose parts disagree, or a missing /
    /// mismatched pattern store.
    pub fn from_artifact_file(
        path: impl AsRef<Path>,
        config: EngineConfig,
    ) -> Result<Self, ArtifactError> {
        Ok(Self::from_artifact(
            MonitorArtifact::load_json(path)?,
            config,
        ))
    }

    /// Warm-starts an engine straight from pattern-store segments on disk:
    /// the spec is mounted over the member stores under `store_root`
    /// (the `member-NNNN/` layout `napmon-store`'s `StoreProvider`
    /// writes), with **no training data and no rebuild** — every pattern
    /// the monitor admits is read back from the log-structured store.
    ///
    /// The spec must use data-free thresholds (see
    /// [`MonitorSpec::mount_with_sources`]); pattern kinds declare
    /// `PatternBackend::Store`.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidConfig`] for specs that cannot
    /// mount and [`MonitorError::ExternalSource`] for missing or
    /// mismatched member stores.
    pub fn from_store(
        spec: &MonitorSpec,
        net: impl Into<Arc<Network>>,
        store_root: impl AsRef<Path>,
        config: EngineConfig,
    ) -> Result<Self, MonitorError> {
        let net = net.into();
        let root = store_root.as_ref().to_path_buf();
        let monitor = spec.mount_with_sources(&net, &mut |member: usize, word_bits: usize| {
            napmon_store::open_member_source(&root, member, word_bits)
        })?;
        Ok(Self::new(net, monitor, config))
    }

    /// Absorbs one operational input into the monitor's store-backed
    /// members (see `ComposedMonitor::absorb_operation`): the pattern
    /// becomes a member of the abstraction immediately, visible to every
    /// shard's subsequent queries, with no rebuild — the operation-time
    /// monitor enlargement the original activation-pattern work proposes.
    ///
    /// Runs on the calling thread (absorption is a store write, not shard
    /// work); call [`MonitorEngine::sync_store`] to make a batch of
    /// absorptions durable.
    ///
    /// Returns the number of members that stored a new pattern.
    ///
    /// # Errors
    ///
    /// [`ServeError::Monitor`] if the input is malformed, the monitor is
    /// not store-backed, or the store fails.
    pub fn absorb(&self, input: &[f64]) -> Result<usize, ServeError> {
        self.monitor
            .absorb_operation(&self.net, input)
            .map_err(Into::into)
    }

    /// Absorbs a batch of operational inputs ([`MonitorEngine::absorb`])
    /// and syncs the stores once at the end. Returns the number of new
    /// patterns stored.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MonitorEngine::absorb`].
    pub fn absorb_batch(&self, inputs: &[Vec<f64>]) -> Result<usize, ServeError> {
        let mut fresh = 0;
        for input in inputs {
            fresh += self.absorb(input)?;
        }
        self.sync_store()?;
        Ok(fresh)
    }

    /// Flushes every store-backed member's buffered writes — the
    /// durability point after operation-time absorption.
    ///
    /// # Errors
    ///
    /// [`ServeError::Monitor`] if a store fails.
    pub fn sync_store(&self) -> Result<(), ServeError> {
        self.monitor.commit_external_sources().map_err(Into::into)
    }
}

/// An in-flight batch: a handle on the verdicts still being computed.
pub struct PendingBatch {
    total: usize,
    jobs: usize,
    rx: mpsc::Receiver<BatchReply>,
}

impl PendingBatch {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Blocks until every chunk is served and returns the verdicts in
    /// input order.
    ///
    /// # Errors
    ///
    /// The first (by input order) [`ServeError::Monitor`] if any chunk was
    /// rejected, [`ServeError::ShardDown`] if a worker died mid-batch.
    pub fn wait(self) -> Result<Vec<Verdict>, ServeError> {
        let mut replies: Vec<BatchReply> = Vec::with_capacity(self.jobs);
        for _ in 0..self.jobs {
            replies.push(self.rx.recv().map_err(|_| ServeError::ShardDown)?);
        }
        replies.sort_by_key(|r| r.start);
        let mut out = Vec::with_capacity(self.total);
        for reply in replies {
            out.extend(reply.result?);
        }
        if out.len() != self.total {
            // A dead shard dropped a chunk at submit time.
            return Err(ServeError::ShardDown);
        }
        Ok(out)
    }
}

/// The shard worker loop: one scratch, one metrics accumulator, jobs until
/// the engine closes the channel — then the final report is returned to
/// `shutdown` through the join handle.
fn run_shard<M: Monitor>(
    id: usize,
    net: &Network,
    monitor: &M,
    rx: &mpsc::Receiver<Job>,
    depth: &AtomicUsize,
) -> ShardReport {
    let mut scratch = QueryScratch::new();
    let mut report = ShardReport::empty(id);
    while let Ok(job) = rx.recv() {
        match job {
            Job::Batch {
                inputs,
                range,
                reply,
                trace,
            } => {
                depth.fetch_sub(1, Ordering::Relaxed);
                let started = queue_wait_span(trace, id);
                let start = range.start;
                let len = range.len() as u64;
                let result = serve_chunk(net, monitor, &inputs[range], &mut scratch, &mut report);
                verdict_span(trace, started, len);
                let _ = reply.send(BatchReply { start, result });
            }
            Job::Single {
                input,
                reply,
                trace,
            } => {
                depth.fetch_sub(1, Ordering::Relaxed);
                let started = queue_wait_span(trace, id);
                let result = serve_one(net, monitor, &input, &mut scratch, &mut report);
                verdict_span(trace, started, 1);
                let _ = reply.send(result);
            }
            Job::Stats { reply } => {
                // Work enqueued behind this snapshot request is, by queue
                // order, work enqueued before the snapshot was taken.
                report.queue_depth = depth.load(Ordering::Relaxed) as u64;
                let _ = reply.send(report.clone());
            }
        }
    }
    // The channel is closed and drained: the queue is empty by
    // construction, and the final report must say so.
    report.queue_depth = depth.load(Ordering::Relaxed) as u64;
    report
}

/// Emits the queue-wait span for a just-dequeued job (detail = shard id)
/// and returns the pickup timestamp for the matching verdict span. Folds
/// to nothing when the `obs` feature is off.
#[inline]
fn queue_wait_span(trace: TraceCtx, shard: usize) -> u64 {
    if !trace.active() {
        return 0;
    }
    let now = napmon_obs::now_ns();
    napmon_obs::record_span(
        trace.id,
        napmon_obs::SpanKind::QueueWait,
        trace.enqueued_ns,
        now.saturating_sub(trace.enqueued_ns),
        shard as u64,
    );
    now
}

/// Emits the verdict span covering a serve call that started at
/// `started_ns` (detail = number of inputs served).
#[inline]
fn verdict_span(trace: TraceCtx, started_ns: u64, items: u64) {
    if !trace.active() {
        return;
    }
    napmon_obs::record_span(
        trace.id,
        napmon_obs::SpanKind::Verdict,
        started_ns,
        napmon_obs::now_ns().saturating_sub(started_ns),
        items,
    );
}

fn serve_one<M: Monitor>(
    net: &Network,
    monitor: &M,
    input: &[f64],
    scratch: &mut QueryScratch,
    report: &mut ShardReport,
) -> Result<Verdict, MonitorError> {
    let started = Instant::now();
    let verdict = monitor.verdict_scratch(net, input, scratch)?;
    report.record(started.elapsed().as_nanos() as f64, verdict.warning);
    report.record_batch(1);
    Ok(verdict)
}

fn serve_chunk<M: Monitor>(
    net: &Network,
    monitor: &M,
    inputs: &[Vec<f64>],
    scratch: &mut QueryScratch,
    report: &mut ShardReport,
) -> Result<Vec<Verdict>, MonitorError> {
    if inputs.is_empty() {
        return Ok(Vec::new());
    }
    // Whole-chunk batch path: hash-backed pattern monitors answer all
    // memberships through the bit-sliced kernel with the pattern blocks
    // loaded once per chunk instead of once per input. Individual timings
    // do not exist on this path, so each verdict records its amortized
    // share (`batch time / batch size`), and the chunk size itself goes
    // into the batch-size histogram so the amortization is visible next
    // to the latency it produced.
    let started = Instant::now();
    let mut verdicts = Vec::with_capacity(inputs.len());
    if monitor
        .verdict_batch_scratch(net, inputs, scratch, &mut verdicts)
        .is_err()
    {
        // A malformed input poisons the whole batched call before any
        // verdict lands. Re-serve sequentially so every input ahead of
        // the bad one is still answered and counted, exactly as the
        // pre-batch path behaved; the error then surfaces with its
        // original index semantics.
        verdicts.clear();
        for input in inputs {
            verdicts.push(serve_one(net, monitor, input, scratch, report)?);
        }
        return Ok(verdicts);
    }
    let per_verdict_ns = started.elapsed().as_nanos() as f64 / inputs.len() as f64;
    for verdict in &verdicts {
        report.record(per_verdict_ns, verdict.warning);
    }
    report.record_batch(inputs.len());
    Ok(verdicts)
}

/// The engine is shared across client threads; submissions only need `&self`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MonitorEngine>();
};
