//! Online serving metrics: per-shard accumulators and the engine-wide
//! aggregate.
//!
//! Latency is tracked as a log2-bucketed [`HistogramSnapshot`] (exact
//! count/sum/min/max plus p50/p90/p99/p999 brackets), not just moments:
//! the paper's operation-time monitoring story needs tail visibility, and
//! a min/mean/max triple hides exactly the percentiles that regress
//! first. Batched submissions additionally record their micro-batch sizes
//! in a second histogram, so per-item latency percentiles can be read
//! against the batching that produced them.

use napmon_eval::OnlineRate;
use napmon_obs::HistogramSnapshot;
use serde::{Deserialize, Serialize};

/// Metrics one worker shard accumulates over its lifetime.
///
/// Owned by the shard thread (no locks on the hot path); snapshots travel
/// to the caller over the shard's job channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index (`0..shards`).
    pub shard: usize,
    /// Warning rate over every request this shard served.
    pub warnings: OnlineRate,
    /// Per-request latency histogram in nanoseconds (forward pass +
    /// abstraction + membership, measured inside the shard). Batched
    /// requests record `batch time / batch size` per item.
    pub latency_ns: HistogramSnapshot,
    /// Sizes of the micro-batches this shard served (singles count as
    /// size 1) — the denominator behind the per-item latency samples.
    pub batch_sizes: HistogramSnapshot,
    /// Jobs sitting in the shard's queue at snapshot time (work enqueued
    /// but not yet picked up). Zero in the final report of a graceful
    /// shutdown — the drain guarantee, asserted in the e2e tests.
    pub queue_depth: u64,
}

impl ShardReport {
    /// A fresh report for shard `shard`.
    pub fn empty(shard: usize) -> Self {
        Self {
            shard,
            warnings: OnlineRate::new(),
            latency_ns: HistogramSnapshot::new(),
            batch_sizes: HistogramSnapshot::new(),
            queue_depth: 0,
        }
    }

    /// Absorbs one served request.
    pub fn record(&mut self, latency_ns: f64, warned: bool) {
        self.warnings.record(warned);
        self.latency_ns.record_ns(latency_ns);
    }

    /// Absorbs one served micro-batch of `size` items.
    pub fn record_batch(&mut self, size: usize) {
        self.batch_sizes.record(size as u64);
    }

    /// Number of requests this shard served.
    pub fn requests(&self) -> u64 {
        self.warnings.trials()
    }
}

/// Engine-wide aggregate of every shard's [`ShardReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Per-shard rows, ordered by shard index.
    pub shards: Vec<ShardReport>,
    /// Total requests served.
    pub requests: u64,
    /// Total requests that raised a warning.
    pub warnings: u64,
    /// Fraction of requests that warned (`0.0` while idle).
    pub warn_rate: f64,
    /// Cross-shard per-item latency histogram (bucket-wise merge of the
    /// shard histograms — associative, order-independent).
    pub latency_ns: HistogramSnapshot,
    /// Cross-shard micro-batch size histogram.
    pub batch_sizes: HistogramSnapshot,
    /// Jobs queued across all shards at snapshot time (backlog gauge for
    /// ops; zero after a graceful shutdown).
    pub queue_depth: u64,
}

impl ServeReport {
    /// Merges whole engine reports into one fleet-wide view — the
    /// registry-level aggregate across every mounted engine. Shard rows
    /// are renumbered sequentially so the merged report keeps one row per
    /// underlying worker.
    pub fn merge(reports: impl IntoIterator<Item = ServeReport>) -> Self {
        let shards = reports
            .into_iter()
            .flat_map(|report| report.shards)
            .enumerate()
            .map(|(i, mut shard)| {
                shard.shard = i;
                shard
            })
            .collect();
        Self::aggregate(shards)
    }

    /// Merges per-shard reports into the engine-wide view.
    pub fn aggregate(mut shards: Vec<ShardReport>) -> Self {
        shards.sort_by_key(|r| r.shard);
        let mut warnings = OnlineRate::new();
        let mut latency = HistogramSnapshot::new();
        let mut batch_sizes = HistogramSnapshot::new();
        let mut queue_depth = 0u64;
        for shard in &shards {
            warnings.merge(&shard.warnings);
            latency.merge(&shard.latency_ns);
            batch_sizes.merge(&shard.batch_sizes);
            queue_depth += shard.queue_depth;
        }
        Self {
            shards,
            requests: warnings.trials(),
            warnings: warnings.hits(),
            warn_rate: warnings.rate(),
            latency_ns: latency,
            batch_sizes,
            queue_depth,
        }
    }
}

impl std::fmt::Display for ServeReport {
    /// A compact operations card: totals first, one line per shard.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve report: {} requests, warn rate {:.4}, latency mean {:.0}ns \
             (min {:.0}, p50 {:.0}, p99 {:.0}, max {:.0}), {} queued",
            self.requests,
            self.warn_rate,
            self.latency_ns.mean(),
            self.latency_ns.min(),
            self.latency_ns.p50(),
            self.latency_ns.p99(),
            self.latency_ns.max(),
            self.queue_depth,
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "  shard {}: {} requests, warn rate {:.4}, latency mean {:.0}ns \
                 (p99 {:.0}), {} queued",
                s.shard,
                s.requests(),
                s.warnings.rate(),
                s.latency_ns.mean(),
                s.latency_ns.p99(),
                s.queue_depth,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_merges_and_orders_shards() {
        let mut a = ShardReport::empty(1);
        a.record(100.0, false);
        a.record(300.0, true);
        let mut b = ShardReport::empty(0);
        b.record(200.0, false);
        let report = ServeReport::aggregate(vec![a, b]);
        assert_eq!(report.requests, 3);
        assert_eq!(report.warnings, 1);
        assert!((report.warn_rate - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.latency_ns.min(), 100.0);
        assert_eq!(report.latency_ns.max(), 300.0);
        assert!((report.latency_ns.mean() - 200.0).abs() < 1e-9);
        assert_eq!(report.shards[0].shard, 0);
        assert_eq!(report.shards[1].shard, 1);
    }

    #[test]
    fn empty_aggregate_is_idle() {
        let report = ServeReport::aggregate(vec![ShardReport::empty(0)]);
        assert_eq!(report.requests, 0);
        assert_eq!(report.warn_rate, 0.0);
        let none = ServeReport::aggregate(Vec::new());
        assert_eq!(none.requests, 0);
    }

    #[test]
    fn display_lists_totals_and_shards() {
        let mut s = ShardReport::empty(0);
        s.record(50.0, true);
        let text = ServeReport::aggregate(vec![s, ShardReport::empty(1)]).to_string();
        assert!(text.contains("1 requests"), "{text}");
        assert!(text.contains("shard 0"), "{text}");
        assert!(text.contains("shard 1"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }

    /// Ops scrape reports as JSON: the whole report (shards, rates,
    /// latency histograms, queue depths) must survive a serde round trip
    /// bit-identically.
    #[test]
    fn report_serializes_to_json() {
        let mut s = ShardReport::empty(0);
        s.record(10.0, false);
        s.record(25.0, true);
        s.record_batch(2);
        s.queue_depth = 3;
        let report = ServeReport::aggregate(vec![s, ShardReport::empty(1)]);
        let json = serde_json::to_string(&report).unwrap();
        for key in [
            "\"warn_rate\"",
            "\"queue_depth\"",
            "\"latency_ns\"",
            "\"batch_sizes\"",
            "\"shards\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let back: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.queue_depth, 3);
        assert_eq!(back.shards[0].queue_depth, 3);
        assert_eq!(back.batch_sizes.count(), 1);
    }

    #[test]
    fn merge_renumbers_shards_and_sums_totals() {
        let mut a = ShardReport::empty(0);
        a.record(100.0, true);
        a.queue_depth = 1;
        let mut b = ShardReport::empty(0);
        b.record(300.0, false);
        b.queue_depth = 2;
        let merged = ServeReport::merge(vec![
            ServeReport::aggregate(vec![a]),
            ServeReport::aggregate(vec![b]),
        ]);
        assert_eq!(merged.requests, 2);
        assert_eq!(merged.warnings, 1);
        assert_eq!(merged.queue_depth, 3);
        assert_eq!(
            merged.shards.iter().map(|s| s.shard).collect::<Vec<_>>(),
            vec![0, 1],
            "shard rows are renumbered, not collapsed"
        );
        assert_eq!(merged.latency_ns.min(), 100.0);
        assert_eq!(merged.latency_ns.max(), 300.0);
        assert_eq!(ServeReport::merge(Vec::new()).requests, 0);
    }

    #[test]
    fn aggregate_sums_queue_depths() {
        let mut a = ShardReport::empty(0);
        a.queue_depth = 2;
        let mut b = ShardReport::empty(1);
        b.queue_depth = 5;
        let report = ServeReport::aggregate(vec![a, b]);
        assert_eq!(report.queue_depth, 7);
        assert!(report.to_string().contains("7 queued"), "{report}");
    }

    /// The latency histogram is a real distribution, not moments: after
    /// skewed traffic the p99 bracket must sit far above the median.
    #[test]
    fn latency_percentiles_see_the_tail() {
        let mut s = ShardReport::empty(0);
        for _ in 0..99 {
            s.record(100.0, false);
        }
        s.record(1_000_000.0, false);
        let report = ServeReport::aggregate(vec![s]);
        let (p50_lo, p50_hi) = report.latency_ns.quantile_bounds(0.5).unwrap();
        assert!(p50_lo <= 100 && 100 <= p50_hi);
        let (p999_lo, p999_hi) = report.latency_ns.quantile_bounds(0.999).unwrap();
        assert!(
            p999_lo <= 1_000_000 && 1_000_000 <= p999_hi,
            "tail sample missing from p99.9 bracket [{p999_lo}, {p999_hi}]"
        );
    }
}
