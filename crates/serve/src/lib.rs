//! Long-lived, sharded serving of activation-pattern monitors.
//!
//! The paper's monitors run *in operation time* next to a deployed DNN:
//! every inference is checked against the frozen abstraction, indefinitely.
//! The batch APIs in `napmon-core` answer "what are the verdicts for this
//! input set?"; this crate answers the serving question — "keep a monitor
//! hot and answer submissions as they arrive, at production rates".
//!
//! [`MonitorEngine`] owns a [`Network`](napmon_nn::Network) and a monitor
//! behind `Arc` and fans submissions out to a fixed set of worker *shards*
//! over `std::sync::mpsc` channels. Each shard is one OS thread holding one
//! [`QueryScratch`](napmon_core::QueryScratch) for its whole lifetime, so
//! the steady-state query path — forward pass, abstraction, membership —
//! touches the heap exactly never per request (verified by the allocation-
//! counting test in `tests/alloc.rs`). Batches are micro-batched: a
//! [`MonitorEngine::submit_batch`] call is split into per-shard chunks so
//! channel traffic is O(shards), not O(requests).
//!
//! Each shard keeps online metrics (request count, warning rate, per-item
//! latency and micro-batch size histograms via
//! [`napmon_obs::HistogramSnapshot`]); [`MonitorEngine::report`]
//! aggregates them into a [`ServeReport`] without pausing the stream, and
//! [`MonitorEngine::shutdown`] closes the channels, drains every queued
//! job, and returns the final report. With the `obs` feature enabled the
//! `*_traced` submission entry points additionally emit queue-wait and
//! verdict spans into `napmon-obs`'s per-thread trace rings under the
//! caller's request trace id.
//!
//! # Example
//!
//! ```
//! use napmon_core::{MonitorBuilder, MonitorKind};
//! use napmon_nn::{Activation, LayerSpec, Network};
//! use napmon_serve::{EngineConfig, MonitorEngine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = Network::seeded(7, 4, &[
//!     LayerSpec::dense(8, Activation::Relu),
//!     LayerSpec::dense(2, Activation::Identity),
//! ]);
//! let train: Vec<Vec<f64>> = (0..32)
//!     .map(|i| (0..4).map(|j| ((i + j) % 8) as f64 / 8.0).collect())
//!     .collect();
//! let monitor = MonitorBuilder::new(&net, 2).build(MonitorKind::pattern(), &train)?;
//!
//! let engine = MonitorEngine::new(net, monitor, EngineConfig::with_shards(2));
//! let verdicts = engine.submit_batch(train.clone())?;
//! assert!(verdicts.iter().all(|v| !v.warning));
//! let report = engine.shutdown();
//! assert_eq!(report.requests, 32);
//! # Ok(())
//! # }
//! ```

pub mod engine;
pub mod report;

pub use engine::{EngineConfig, MonitorEngine, PendingBatch, ServeError};
pub use report::{ServeReport, ShardReport};
