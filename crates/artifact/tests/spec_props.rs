//! Property tests: arbitrary (often malformed) specs deserialized from
//! untrusted data must always answer with `Ok`/`Err` — never panic —
//! through validation, build, and artifact load.

use napmon_absint::Domain;
use napmon_artifact::MonitorArtifact;
use napmon_core::{Monitor, MonitorKind, MonitorSpec, ThresholdPolicy};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_tensor::Prng;
use proptest::prelude::*;

fn net() -> Network {
    Network::seeded(
        3,
        3,
        &[
            LayerSpec::dense(6, Activation::Relu),
            LayerSpec::dense(2, Activation::Identity),
        ],
    )
}

fn train_data(n: usize) -> Vec<Vec<f64>> {
    let mut rng = Prng::seed(11);
    (0..n).map(|_| rng.uniform_vec(3, -0.5, 0.5)).collect()
}

/// Decodes the fuzzed integers into a (frequently invalid) spec.
#[allow(clippy::too_many_arguments)]
fn assemble_spec(
    version: u32,
    layer: usize,
    family: u8,
    bits: usize,
    delta_milli: i64,
    kp: usize,
    robust_on: bool,
    classes: usize,
) -> MonitorSpec {
    let kind = match family % 4 {
        0 => MonitorKind::min_max(),
        1 => MonitorKind::pattern(),
        2 => MonitorKind::interval(bits),
        _ => MonitorKind::interval_with(bits, ThresholdPolicy::Sign),
    };
    let mut spec = MonitorSpec::new(layer, kind);
    spec.version = version;
    if robust_on {
        spec = spec.robust(delta_milli as f64 / 1000.0, kp, Domain::Box);
    }
    if classes > 0 {
        spec = spec.per_class(classes);
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arbitrary_specs_never_panic_through_validate_and_build(
        version in 0u32..3,
        layer in 0usize..6,
        family in 0u8..4,
        bits in 0usize..10,
        delta_milli in -100i64..100,
        kp in 0usize..4,
        robust_on in 0u32..2,
        classes in 0usize..4,
    ) {
        let net = net();
        let data = train_data(12);
        let spec = assemble_spec(
            version, layer, family, bits, delta_milli, kp, robust_on == 1, classes,
        );
        // None of these may panic; a Result either way is the contract.
        let _ = spec.validate();
        let _ = spec.validate_for(&net);
        if let Ok(monitor) = spec.build(&net, &data) {
            // Anything that *does* build must be queryable and must
            // survive an artifact round trip bit-identically.
            let artifact =
                MonitorArtifact::from_parts(spec, net.clone(), monitor, data.len()).unwrap();
            let json = artifact.to_json_string().unwrap();
            let loaded = MonitorArtifact::from_json_str(&json).unwrap();
            let mut rng = Prng::seed(29);
            for _ in 0..8 {
                let probe = rng.uniform_vec(3, -2.0, 2.0);
                prop_assert_eq!(
                    artifact.monitor().verdict(artifact.network(), &probe).unwrap(),
                    loaded.monitor().verdict(loaded.network(), &probe).unwrap()
                );
            }
        }
    }

    #[test]
    fn spec_json_round_trip_is_exact(
        layer in 1usize..3,
        family in 0u8..3,
        bits in 1usize..4,
        robust_on in 0u32..2,
    ) {
        let spec = assemble_spec(1, layer * 2, family, bits, 20, 0, robust_on == 1, 0);
        let json = serde_json::to_string(&spec).unwrap();
        let back: MonitorSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(spec, back);
    }
}
