//! Differential round-trip suite: every monitor kind × backend ×
//! standard/robust × composition must give **bit-identical** `query_batch`
//! verdicts after save → load, and malformed files must fail with typed
//! errors (never panic).

use napmon_absint::Domain;
use napmon_artifact::{ArtifactError, MonitorArtifact, FORMAT_VERSION};
use napmon_core::{
    Monitor, MonitorKind, MonitorSpec, PatternBackend, RobustConfig, ThresholdPolicy, Vote,
    WatchedLayer,
};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_tensor::Prng;

fn net() -> Network {
    Network::seeded(
        42,
        6,
        &[
            LayerSpec::dense(16, Activation::Relu),
            LayerSpec::dense(8, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    )
}

fn train_data(n: usize) -> Vec<Vec<f64>> {
    let mut rng = Prng::seed(7);
    (0..n).map(|_| rng.uniform_vec(6, -1.0, 1.0)).collect()
}

/// The differential probe corpus: in-distribution, boundary, and far-OOD
/// inputs, so both verdict branches (and the Hamming-tolerant paths) are
/// exercised.
fn probe_corpus() -> Vec<Vec<f64>> {
    let mut rng = Prng::seed(1234);
    let mut probes: Vec<Vec<f64>> = (0..60).map(|_| rng.uniform_vec(6, -1.0, 1.0)).collect();
    probes.extend((0..30).map(|_| rng.uniform_vec(6, -3.0, 3.0)));
    probes.extend((0..10).map(|_| rng.uniform_vec(6, -50.0, 50.0)));
    probes
}

/// Every monitor family/backend configuration in the matrix.
fn all_kinds() -> Vec<(&'static str, MonitorKind)> {
    vec![
        ("min-max", MonitorKind::min_max()),
        ("min-max+gamma", MonitorKind::min_max_enlarged(0.25)),
        (
            "pattern/bdd",
            MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 0),
        ),
        (
            "pattern/hash",
            MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::HashSet, 0),
        ),
        (
            "pattern/bdd+hamming",
            MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 1),
        ),
        (
            "pattern/hash+hamming",
            MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::HashSet, 1),
        ),
        ("interval-2bit", MonitorKind::interval(2)),
        ("interval-3bit", MonitorKind::interval(3)),
    ]
}

fn robust_variants() -> Vec<(&'static str, Option<RobustConfig>)> {
    vec![
        ("standard", None),
        (
            "robust",
            Some(RobustConfig {
                delta: 0.02,
                kp: 0,
                domain: Domain::Box,
            }),
        ),
    ]
}

/// Saves, reloads, and checks verdict identity on the corpus — on the
/// plain batch path *and* the parallel path of the reloaded monitor.
fn assert_roundtrip_identical(label: &str, artifact: &MonitorArtifact) {
    let probes = probe_corpus();
    let expected = artifact
        .monitor()
        .query_batch(artifact.network(), &probes)
        .unwrap_or_else(|e| panic!("{label}: query failed: {e}"));
    let json = artifact.to_json_string().unwrap();
    let loaded = MonitorArtifact::from_json_str(&json)
        .unwrap_or_else(|e| panic!("{label}: reload failed: {e}"));
    let got = loaded
        .monitor()
        .query_batch(loaded.network(), &probes)
        .unwrap();
    assert_eq!(got, expected, "{label}: verdicts drifted across round trip");
    let parallel = loaded
        .monitor()
        .query_batch_parallel_with(loaded.network(), &probes, 2)
        .unwrap();
    assert_eq!(parallel, expected, "{label}: parallel reload drifted");
    // The corpus must exercise both branches somewhere; warn-only or
    // ok-only corpora would make the identity check vacuous.
    assert!(expected.iter().any(|v| v.warning), "{label}: no warnings");
    assert!(expected.iter().any(|v| !v.warning), "{label}: all warnings");
}

#[test]
fn single_monitors_roundtrip_bit_identical_all_kinds_and_backends() {
    let net = net();
    let data = train_data(64);
    for (kind_name, kind) in all_kinds() {
        for (mode, robust) in robust_variants() {
            let mut spec = MonitorSpec::new(4, kind.clone());
            if let Some(r) = robust {
                spec = spec.robust_config(r);
            }
            let artifact = MonitorArtifact::build(spec, &net, &data).unwrap();
            assert_roundtrip_identical(&format!("{kind_name}/{mode}/single"), &artifact);
        }
    }
}

#[test]
fn multi_layer_monitors_roundtrip_bit_identical() {
    let net = net();
    let data = train_data(48);
    for vote in [Vote::Any, Vote::All, Vote::AtLeast(1)] {
        for (mode, robust) in robust_variants() {
            let mut spec = MonitorSpec::multi_layer(
                vec![WatchedLayer::whole(2), WatchedLayer::whole(4)],
                MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 0),
                vote,
            );
            if let Some(r) = robust {
                spec = spec.robust_config(r);
            }
            let artifact = MonitorArtifact::build(spec, &net, &data).unwrap();
            assert_roundtrip_identical(&format!("multi/{vote:?}/{mode}"), &artifact);
        }
    }
}

#[test]
fn per_class_monitors_roundtrip_bit_identical() {
    let net = net();
    let data = train_data(96);
    for (mode, robust) in robust_variants() {
        let mut spec = MonitorSpec::new(4, MonitorKind::interval(2)).per_class(3);
        if let Some(r) = robust {
            spec = spec.robust_config(r);
        }
        let artifact = MonitorArtifact::build(spec, &net, &data).unwrap();
        assert_roundtrip_identical(&format!("per-class/{mode}"), &artifact);
    }
}

#[test]
fn neuron_subset_monitors_roundtrip_bit_identical() {
    let net = net();
    let data = train_data(48);
    // A 3-bit interval monitor keeps 3 watched neurons discriminative
    // enough that the corpus hits both verdict branches.
    let spec = MonitorSpec::new(4, MonitorKind::interval(3)).with_neurons(vec![0, 3, 5]);
    let artifact = MonitorArtifact::build(spec, &net, &data).unwrap();
    assert_roundtrip_identical("subset", &artifact);
}

#[test]
fn bumped_format_version_is_rejected_for_every_composition() {
    let net = net();
    let data = train_data(32);
    let specs = vec![
        MonitorSpec::new(
            4,
            MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 0),
        ),
        MonitorSpec::multi_layer(
            vec![WatchedLayer::whole(2), WatchedLayer::whole(4)],
            MonitorKind::min_max(),
            Vote::Any,
        ),
        MonitorSpec::new(4, MonitorKind::min_max()).per_class(3),
    ];
    for spec in specs {
        let artifact = MonitorArtifact::build(spec, &net, &data).unwrap();
        let json = artifact.to_json_string().unwrap();
        let bumped = json.replacen(
            &format!("\"format_version\":{FORMAT_VERSION}"),
            &format!("\"format_version\":{}", FORMAT_VERSION + 1),
            1,
        );
        assert_ne!(json, bumped);
        assert!(matches!(
            MonitorArtifact::from_json_str(&bumped),
            Err(ArtifactError::UnsupportedVersion { .. })
        ));
    }
}

#[test]
fn mismatched_network_dimensions_are_rejected_typed() {
    let net = net();
    let data = train_data(32);
    let artifact =
        MonitorArtifact::build(MonitorSpec::new(4, MonitorKind::interval(2)), &net, &data).unwrap();

    // A network with different widths at the monitored boundary.
    let narrow = Network::seeded(
        9,
        6,
        &[
            LayerSpec::dense(10, Activation::Relu),
            LayerSpec::dense(5, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    );
    let mut tampered = artifact.clone();
    tampered.network = narrow;
    let err = MonitorArtifact::from_json_str(&tampered.to_json_string().unwrap()).unwrap_err();
    assert!(matches!(err, ArtifactError::Mismatch(_)), "{err:?}");

    // A shallower network missing the monitored boundary entirely.
    let shallow = Network::seeded(9, 6, &[LayerSpec::dense(4, Activation::Identity)]);
    let mut tampered = artifact.clone();
    tampered.network = shallow;
    let err = MonitorArtifact::from_json_str(&tampered.to_json_string().unwrap()).unwrap_err();
    assert!(matches!(err, ArtifactError::Monitor(_)), "{err:?}");
}

#[test]
fn corrupted_spec_fields_fail_typed_never_panic() {
    let net = net();
    let data = train_data(24);
    let artifact =
        MonitorArtifact::build(MonitorSpec::new(4, MonitorKind::interval(2)), &net, &data).unwrap();
    let json = artifact.to_json_string().unwrap();

    // Corrupt the robust delta into NaN territory via a direct field edit.
    let mut tampered = artifact.clone();
    tampered.spec.robust = Some(RobustConfig {
        delta: f64::NAN,
        kp: 0,
        domain: Domain::Box,
    });
    assert!(MonitorArtifact::from_json_str(&tampered.to_json_string().unwrap()).is_err());

    // Corrupt the stats: wrong layer widths.
    let mut tampered = artifact.clone();
    tampered.stats.layer_widths = vec![1, 2, 3];
    assert!(matches!(
        MonitorArtifact::from_json_str(&tampered.to_json_string().unwrap()),
        Err(ArtifactError::Mismatch(_))
    ));

    // Corrupt the stats: fabricated provenance values (validation
    // recomputes stats from the embedded parts, so any drift fails).
    let mut tampered = artifact.clone();
    tampered.stats.member_samples = vec![999_999];
    assert!(matches!(
        MonitorArtifact::from_json_str(&tampered.to_json_string().unwrap()),
        Err(ArtifactError::Mismatch(_))
    ));
    let mut tampered = artifact.clone();
    tampered.stats.pattern_counts = vec![Some(1.0)];
    assert!(matches!(
        MonitorArtifact::from_json_str(&tampered.to_json_string().unwrap()),
        Err(ArtifactError::Mismatch(_))
    ));

    // Truncated file.
    assert!(MonitorArtifact::from_json_str(&json[..json.len() / 2]).is_err());
}
