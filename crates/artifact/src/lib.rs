//! Versioned monitor artifacts: build once, save, load, serve anywhere.
//!
//! The paper's monitors exist to run *in operation time* next to a
//! deployed network — but an abstraction that lives only in the process
//! that built it cannot be deployed. A [`MonitorArtifact`] is the missing
//! unit of deployment: one versioned, self-contained file carrying
//!
//! 1. the [`MonitorSpec`] that describes the build (reviewable, diffable),
//! 2. the exact [`Network`] the monitor was built against,
//! 3. the built [`ComposedMonitor`] itself (BDD arenas and all), and
//! 4. [`BuildStats`] — training-set size, layer widths, pattern counts —
//!    so an operator can sanity-check what they are about to mount.
//!
//! The flow is build → [`MonitorArtifact::save_json`] → ship → load in a
//! fresh process ([`MonitorArtifact::load_json`]) → mount on the serving
//! engine (`MonitorEngine::from_artifact` in `napmon-serve`). Loading
//! re-validates everything — format version, spec invariants, and the
//! dimensional agreement between spec, network, and monitor — and fails
//! with a typed [`ArtifactError`] rather than panicking on a malformed or
//! foreign file. Verdicts after a round trip are bit-identical to the
//! in-memory original (pinned by this crate's differential tests).
//!
//! # Format guarantees
//!
//! - [`FORMAT_VERSION`] is bumped on any incompatible schema change; a
//!   reader rejects files from other versions with
//!   [`ArtifactError::UnsupportedVersion`] instead of misreading them.
//! - Within a version, `save_json` → `load_json` is lossless: the loaded
//!   monitor answers every `query_batch` bit-identically to the saved one.
//!
//! # Example
//!
//! ```
//! use napmon_artifact::MonitorArtifact;
//! use napmon_core::{Monitor, MonitorKind, MonitorSpec};
//! use napmon_nn::{Activation, LayerSpec, Network};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = Network::seeded(7, 4, &[
//!     LayerSpec::dense(8, Activation::Relu),
//!     LayerSpec::dense(2, Activation::Identity),
//! ]);
//! let train: Vec<Vec<f64>> = (0..32)
//!     .map(|i| (0..4).map(|j| ((i + j) % 8) as f64 / 8.0).collect())
//!     .collect();
//!
//! let spec = MonitorSpec::new(2, MonitorKind::pattern());
//! let artifact = MonitorArtifact::build(spec, &net, &train)?;
//! let json = artifact.to_json_string()?;
//!
//! // ... ship the file; in a fresh process:
//! let loaded = MonitorArtifact::from_json_str(&json)?;
//! assert!(!loaded.monitor().warns(loaded.network(), &train[0])?);
//! # Ok(())
//! # }
//! ```

pub mod error;

pub use error::ArtifactError;

use napmon_core::{ComposedMonitor, Composition, Monitor, MonitorKind, MonitorSpec};
use napmon_nn::Network;
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// The artifact schema version this crate reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Provenance figures recorded at build time: what the monitor was built
/// from, and how big the result is. Checked against the embedded network
/// on load, and displayed to operators before mounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildStats {
    /// Number of training samples the construction loop absorbed.
    pub train_size: usize,
    /// Width of every network boundary (`dims()[k]` = width at boundary
    /// `k`); must match the embedded network on load.
    pub layer_widths: Vec<usize>,
    /// Monitored feature dimension of each member monitor.
    pub monitored_dims: Vec<usize>,
    /// Samples absorbed by each member monitor.
    pub member_samples: Vec<usize>,
    /// Distinct patterns admitted by each member monitor. `None` for the
    /// min-max family (no pattern count) and for store-backed members:
    /// their live count moves with operation-time absorption, so a figure
    /// frozen at build time would go stale — scrape the store itself
    /// instead.
    pub pattern_counts: Vec<Option<f64>>,
}

impl BuildStats {
    /// Computes the stats of a built monitor.
    fn collect(net: &Network, monitor: &ComposedMonitor, train_size: usize) -> Self {
        let members = monitor.members();
        Self {
            train_size,
            layer_widths: net.dims(),
            monitored_dims: members.iter().map(|m| m.extractor().dim()).collect(),
            member_samples: members.iter().map(|m| m.samples()).collect(),
            pattern_counts: members
                .iter()
                .map(|m| {
                    if m.external_descriptor().is_some() {
                        None
                    } else {
                        m.pattern_count()
                    }
                })
                .collect(),
        }
    }
}

/// A versioned, self-contained monitor deployment: spec + network +
/// built monitor + build stats. See the [module docs](self).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorArtifact {
    /// Artifact schema version ([`FORMAT_VERSION`]).
    pub format_version: u32,
    /// The declarative build description.
    pub spec: MonitorSpec,
    /// The network the monitor was built against (and must run next to).
    pub network: Network,
    /// The built monitor.
    pub monitor: ComposedMonitor,
    /// Build provenance.
    pub stats: BuildStats,
}

impl MonitorArtifact {
    /// Builds the spec against `net` and `train` and packages the result.
    ///
    /// Per-class specs are trained against the network's predicted labels
    /// (see [`MonitorSpec::build`]); use
    /// [`MonitorArtifact::build_with_labels`] for ground-truth labels.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Monitor`] for any spec or training-data
    /// problem.
    pub fn build(
        spec: MonitorSpec,
        net: &Network,
        train: &[Vec<f64>],
    ) -> Result<Self, ArtifactError> {
        let monitor = spec.build(net, train)?;
        Ok(Self::assemble(spec, net.clone(), monitor, train.len()))
    }

    /// Like [`MonitorArtifact::build`] with explicit per-sample class
    /// labels for per-class composition.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MonitorArtifact::build`].
    pub fn build_with_labels(
        spec: MonitorSpec,
        net: &Network,
        train: &[Vec<f64>],
        labels: &[usize],
    ) -> Result<Self, ArtifactError> {
        let monitor = spec.build_with_labels(net, train, labels)?;
        Ok(Self::assemble(spec, net.clone(), monitor, train.len()))
    }

    /// Builds a *store-backed* artifact: the pattern sets are absorbed
    /// into external sources from `provider` (see
    /// [`MonitorSpec::build_with_sources`]), and the artifact records only
    /// the source descriptors — the file stays small no matter how many
    /// patterns the store holds, and loading it reattaches to the same
    /// store (with dimension cross-checks).
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Monitor`] for any spec, training-data, or
    /// source problem.
    pub fn build_with_sources(
        spec: MonitorSpec,
        net: &Network,
        train: &[Vec<f64>],
        provider: &mut dyn napmon_core::SourceProvider,
    ) -> Result<Self, ArtifactError> {
        let monitor = spec.build_with_sources(net, train, provider)?;
        Ok(Self::assemble(spec, net.clone(), monitor, train.len()))
    }

    /// Packages an already-built monitor with its spec and network,
    /// validating that the parts agree.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Monitor`] or [`ArtifactError::Mismatch`]
    /// if the parts are inconsistent.
    pub fn from_parts(
        spec: MonitorSpec,
        network: Network,
        monitor: ComposedMonitor,
        train_size: usize,
    ) -> Result<Self, ArtifactError> {
        let artifact = Self::assemble(spec, network, monitor, train_size);
        artifact.validate()?;
        Ok(artifact)
    }

    fn assemble(
        spec: MonitorSpec,
        network: Network,
        monitor: ComposedMonitor,
        train_size: usize,
    ) -> Self {
        let stats = BuildStats::collect(&network, &monitor, train_size);
        Self {
            format_version: FORMAT_VERSION,
            spec,
            network,
            monitor,
            stats,
        }
    }

    /// The declarative build description.
    pub fn spec(&self) -> &MonitorSpec {
        &self.spec
    }

    /// The embedded network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The built monitor.
    pub fn monitor(&self) -> &ComposedMonitor {
        &self.monitor
    }

    /// Build provenance.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Decomposes the artifact into the network and monitor — the two
    /// parts a serving engine mounts.
    pub fn into_parts(self) -> (Network, ComposedMonitor) {
        (self.network, self.monitor)
    }

    /// Full consistency check: spec invariants against the embedded
    /// network, plus dimensional agreement between spec, network, monitor,
    /// and stats. Called automatically on every load.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::UnsupportedVersion`] for a foreign format
    /// version, [`ArtifactError::Monitor`] for spec violations, and
    /// [`ArtifactError::Mismatch`] when the parts disagree.
    pub fn validate(&self) -> Result<(), ArtifactError> {
        if self.format_version != FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: self.format_version,
                supported: FORMAT_VERSION,
            });
        }
        self.spec.validate_for(&self.network)?;
        self.validate_composition()?;
        self.validate_members()?;
        // Stats are pure provenance derived from network + monitor, so the
        // strongest check is simply recomputing them: any tampered width,
        // sample count, or pattern count fails equality.
        let expected = BuildStats::collect(&self.network, &self.monitor, self.stats.train_size);
        if self.stats != expected {
            return Err(ArtifactError::Mismatch(format!(
                "stats disagree with the embedded network and monitor: \
                 recorded {:?}, recomputed {expected:?}",
                self.stats
            )));
        }
        Ok(())
    }

    /// The monitor's composition must be the one the spec declares.
    fn validate_composition(&self) -> Result<(), ArtifactError> {
        match (&self.spec.composition, &self.monitor) {
            (Composition::Single, ComposedMonitor::Single(_)) => Ok(()),
            (Composition::MultiLayer { .. }, ComposedMonitor::MultiLayer(m)) => {
                if m.num_members() != self.spec.layers.len() {
                    return Err(ArtifactError::Mismatch(format!(
                        "spec watches {} boundaries but the monitor has {} members",
                        self.spec.layers.len(),
                        m.num_members()
                    )));
                }
                Ok(())
            }
            (Composition::PerClass { num_classes }, ComposedMonitor::PerClass(m)) => {
                if m.num_classes() != *num_classes {
                    return Err(ArtifactError::Mismatch(format!(
                        "spec declares {num_classes} classes but the monitor has {}",
                        m.num_classes()
                    )));
                }
                Ok(())
            }
            (composition, monitor) => Err(ArtifactError::Mismatch(format!(
                "spec composition {composition:?} does not match the built monitor ({monitor})"
            ))),
        }
    }

    /// Every member monitor must watch a boundary the embedded network
    /// actually has, at the width the network actually produces, with the
    /// family the spec declares.
    fn validate_members(&self) -> Result<(), ArtifactError> {
        let members = self.monitor.members();
        for (i, member) in members.iter().enumerate() {
            // Single/per-class members all watch layers[0]; multi-layer
            // member i watches layers[i].
            let watched = match self.spec.composition {
                Composition::MultiLayer { .. } => &self.spec.layers[i],
                _ => &self.spec.layers[0],
            };
            let fx = member.extractor();
            if fx.layer() != watched.layer {
                return Err(ArtifactError::Mismatch(format!(
                    "member {i} watches boundary {} but the spec says {}",
                    fx.layer(),
                    watched.layer
                )));
            }
            let width = self.network.dim_at(watched.layer);
            if fx.layer_dim() != width {
                return Err(ArtifactError::Mismatch(format!(
                    "member {i} was built for boundary width {} but the network's \
                     boundary {} is {width} wide",
                    fx.layer_dim(),
                    watched.layer
                )));
            }
            let family_matches = matches!(
                (&self.spec.kind, member),
                (
                    MonitorKind::MinMax { .. },
                    napmon_core::AnyMonitor::MinMax(_)
                ) | (
                    MonitorKind::Pattern { .. },
                    napmon_core::AnyMonitor::Pattern(_)
                ) | (
                    MonitorKind::IntervalPattern { .. },
                    napmon_core::AnyMonitor::Interval(_)
                )
            );
            if !family_matches {
                return Err(ArtifactError::Mismatch(format!(
                    "member {i} family does not match the spec kind {:?}",
                    self.spec.kind
                )));
            }
            if let (
                MonitorKind::IntervalPattern { bits, .. },
                napmon_core::AnyMonitor::Interval(m),
            ) = (&self.spec.kind, member)
            {
                if m.bits() != *bits {
                    return Err(ArtifactError::Mismatch(format!(
                        "member {i} uses {} bits per neuron but the spec says {bits}",
                        m.bits()
                    )));
                }
            }
            if let (MonitorKind::Pattern { backend, .. }, napmon_core::AnyMonitor::Pattern(m)) =
                (&self.spec.kind, member)
            {
                if m.backend() != *backend {
                    return Err(ArtifactError::Mismatch(format!(
                        "member {i} stores patterns in {:?} but the spec says {backend:?}",
                        m.backend()
                    )));
                }
            }
            // External sources must be dimensioned for exactly this
            // member's packed word width — a store swapped in from a
            // different monitor fails here instead of answering nonsense.
            if let Some(descriptor) = member.external_descriptor() {
                let word_bits = match member {
                    napmon_core::AnyMonitor::Interval(m) => m.extractor().dim() * m.bits(),
                    _ => member.extractor().dim(),
                };
                if descriptor.word_bits != word_bits {
                    return Err(ArtifactError::Mismatch(format!(
                        "member {i} needs {word_bits}-bit pattern words but its external \
                         source `{}` holds {}-bit words",
                        descriptor.path, descriptor.word_bits
                    )));
                }
            }
        }
        Ok(())
    }

    /// Reopens and reattaches the external pattern store behind every
    /// store-backed member, cross-checking word widths. Called
    /// automatically by [`MonitorArtifact::from_json_str`] /
    /// [`MonitorArtifact::load_json`]; useful directly only for monitors
    /// deserialized by hand. Returns the number of members reattached.
    ///
    /// Store paths are reopened exactly as recorded (relative paths
    /// resolve against the current working directory).
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Store`] if a store cannot be reopened,
    /// and [`ArtifactError::Monitor`] for non-persistent source kinds or
    /// width mismatches.
    pub fn reattach_stores(&mut self) -> Result<usize, ArtifactError> {
        if !self.monitor.needs_sources() {
            return Ok(0);
        }
        // Open every referenced store first, so store failures surface as
        // the typed [`ArtifactError::Store`] rather than being flattened
        // through the attach callback's monitor-level error type.
        let mut sources = Vec::new();
        for (member, descriptor) in self.monitor.external_descriptors().iter().enumerate() {
            let Some(descriptor) = descriptor else {
                sources.push(None);
                continue;
            };
            if descriptor.kind != "napmon-store" {
                return Err(ArtifactError::Mismatch(format!(
                    "member {member} references source kind `{}`, which is not \
                     persistent and cannot be reopened",
                    descriptor.kind
                )));
            }
            let store = napmon_store::PatternStore::open(&descriptor.path)?;
            sources.push(Some(store.into_shared()));
        }
        let attached = self
            .monitor
            .attach_external_sources(&mut |member, descriptor| {
                sources[member].take().ok_or_else(|| {
                    napmon_core::MonitorError::ExternalSource(format!(
                        "no store opened for member {member} (`{}`)",
                        descriptor.path
                    ))
                })
            })?;
        Ok(attached)
    }

    /// Serializes the artifact to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Serde`] if serialization fails.
    pub fn to_json_string(&self) -> Result<String, ArtifactError> {
        Ok(serde_json::to_string(self)?)
    }

    /// Deserializes and fully validates an artifact from a JSON string.
    ///
    /// The `format_version` field is peeked *before* the full decode, so a
    /// file written by a newer format fails with the typed
    /// [`ArtifactError::UnsupportedVersion`] — not with whatever parse
    /// error its changed schema would otherwise produce.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Serde`] for malformed JSON,
    /// [`ArtifactError::UnsupportedVersion`] for foreign versions, and any
    /// [`MonitorArtifact::validate`] error for inconsistent contents.
    pub fn from_json_str(json: &str) -> Result<Self, ArtifactError> {
        let value: Value = serde_json::from_str(json)?;
        let found = match &value["format_version"] {
            Value::Number(n) => {
                n.as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| {
                        ArtifactError::Mismatch("format_version is not a small integer".into())
                    })?
            }
            Value::Null => {
                return Err(ArtifactError::Mismatch(
                    "missing format_version field".into(),
                ))
            }
            _ => {
                return Err(ArtifactError::Mismatch(
                    "format_version is not a number".into(),
                ))
            }
        };
        if found != FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found,
                supported: FORMAT_VERSION,
            });
        }
        // Decode from the already-parsed tree: artifacts carry whole BDD
        // arenas, and a second text parse would double the replica
        // cold-start cost that `load_json` exists to bound.
        let mut artifact: Self = serde::from_value(value)
            .map_err(|e| ArtifactError::Serde(serde::de::Error::custom(e)))?;
        // Store-backed members decode detached; reopen their stores from
        // the recorded paths before validating, so validation exercises
        // the live word sets too.
        artifact.reattach_stores()?;
        artifact.validate()?;
        Ok(artifact)
    }

    /// Saves the artifact as JSON at `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on filesystem failure or
    /// [`ArtifactError::Serde`] if serialization fails.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        // A store-backed artifact is only as durable as its store: flush
        // buffered appends so the file never references words that a
        // crash could still lose.
        self.monitor.commit_external_sources()?;
        std::fs::write(path, self.to_json_string()?)?;
        Ok(())
    }

    /// Loads and fully validates an artifact previously written by
    /// [`MonitorArtifact::save_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] if the file cannot be read, plus any
    /// [`MonitorArtifact::from_json_str`] error.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json_str(&json)
    }
}

impl std::fmt::Display for MonitorArtifact {
    /// A deployment card: format version, monitor card, and provenance.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "artifact v{}: {} (trained on {} samples, network {} -> {})",
            self.format_version,
            self.monitor,
            self.stats.train_size,
            self.network.input_dim(),
            self.network.output_dim(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_core::{Monitor, MonitorKind};
    use napmon_nn::{Activation, LayerSpec};
    use napmon_tensor::Prng;

    fn net() -> Network {
        Network::seeded(
            23,
            3,
            &[
                LayerSpec::dense(8, Activation::Relu),
                LayerSpec::dense(4, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        )
    }

    fn train_data(n: usize) -> Vec<Vec<f64>> {
        let mut rng = Prng::seed(99);
        (0..n).map(|_| rng.uniform_vec(3, -0.5, 0.5)).collect()
    }

    #[test]
    fn build_records_stats() {
        let net = net();
        let data = train_data(32);
        let artifact =
            MonitorArtifact::build(MonitorSpec::new(4, MonitorKind::pattern()), &net, &data)
                .unwrap();
        assert_eq!(artifact.format_version, FORMAT_VERSION);
        assert_eq!(artifact.stats.train_size, 32);
        assert_eq!(artifact.stats.layer_widths, net.dims());
        assert_eq!(artifact.stats.monitored_dims, vec![4]);
        assert_eq!(artifact.stats.member_samples, vec![32]);
        assert!(artifact.stats.pattern_counts[0].unwrap() >= 1.0);
        assert!(artifact.validate().is_ok());
        assert!(artifact.to_string().contains("artifact v1"));
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let net = net();
        let data = train_data(32);
        let artifact =
            MonitorArtifact::build(MonitorSpec::new(4, MonitorKind::interval(2)), &net, &data)
                .unwrap();
        let json = artifact.to_json_string().unwrap();
        let loaded = MonitorArtifact::from_json_str(&json).unwrap();
        assert_eq!(artifact.spec, loaded.spec);
        assert_eq!(artifact.network, loaded.network);
        assert_eq!(artifact.stats, loaded.stats);
        let mut rng = Prng::seed(3);
        for _ in 0..64 {
            let probe = rng.uniform_vec(3, -2.0, 2.0);
            assert_eq!(
                artifact.monitor.verdict(&artifact.network, &probe).unwrap(),
                loaded.monitor.verdict(&loaded.network, &probe).unwrap()
            );
        }
    }

    #[test]
    fn bumped_format_version_is_rejected_typed() {
        let net = net();
        let artifact = MonitorArtifact::build(
            MonitorSpec::new(4, MonitorKind::min_max()),
            &net,
            &train_data(8),
        )
        .unwrap();
        let json = artifact.to_json_string().unwrap();
        let bumped = json.replacen("\"format_version\":1", "\"format_version\":2", 1);
        assert_ne!(json, bumped, "version field not found in serialized form");
        match MonitorArtifact::from_json_str(&bumped) {
            Err(ArtifactError::UnsupportedVersion {
                found: 2,
                supported,
            }) => {
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn missing_version_field_is_rejected() {
        assert!(matches!(
            MonitorArtifact::from_json_str("{}"),
            Err(ArtifactError::Mismatch(_))
        ));
        assert!(matches!(
            MonitorArtifact::from_json_str("not json"),
            Err(ArtifactError::Serde(_))
        ));
    }

    #[test]
    fn mismatched_network_is_rejected_typed() {
        let net = net();
        let data = train_data(16);
        let mut artifact =
            MonitorArtifact::build(MonitorSpec::new(4, MonitorKind::pattern()), &net, &data)
                .unwrap();
        // Swap in a network whose monitored boundary has a different width.
        artifact.network = Network::seeded(
            5,
            3,
            &[
                LayerSpec::dense(6, Activation::Relu),
                LayerSpec::dense(5, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        );
        let json = artifact.to_json_string().unwrap();
        let err = MonitorArtifact::from_json_str(&json).unwrap_err();
        assert!(
            matches!(err, ArtifactError::Mismatch(_)),
            "expected Mismatch, got {err:?}"
        );
    }

    #[test]
    fn tampered_spec_is_rejected_typed() {
        let net = net();
        let data = train_data(16);
        let mut artifact =
            MonitorArtifact::build(MonitorSpec::new(4, MonitorKind::interval(2)), &net, &data)
                .unwrap();
        // Declare a different bit width than the monitor was built with.
        artifact.spec.kind = MonitorKind::interval(3);
        let json = artifact.to_json_string().unwrap();
        let err = MonitorArtifact::from_json_str(&json).unwrap_err();
        assert!(matches!(err, ArtifactError::Mismatch(_)), "{err:?}");
    }

    #[test]
    fn store_backed_artifact_round_trips_through_the_store() {
        use napmon_core::{PatternBackend, ThresholdPolicy};
        let dir =
            std::env::temp_dir().join(format!("napmon_artifact_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let net = net();
        let data = train_data(40);
        let spec = MonitorSpec::new(
            4,
            MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::Store, 0),
        );
        let mut provider = napmon_store::StoreProvider::new(dir.join("stores"));
        let artifact =
            MonitorArtifact::build_with_sources(spec, &net, &data, &mut provider).unwrap();
        // Store-backed members record no frozen pattern count.
        assert_eq!(artifact.stats.pattern_counts, vec![None]);
        let path = dir.join("artifact.json");
        artifact.save_json(&path).unwrap();
        // The artifact itself is small: it references the store, it does
        // not embed the word set.
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("napmon-store"), "{json}");

        let mut rng = Prng::seed(9);
        let probes: Vec<Vec<f64>> = (0..64).map(|_| rng.uniform_vec(3, -2.0, 2.0)).collect();
        let expected: Vec<_> = probes
            .iter()
            .map(|p| artifact.monitor.verdict(&artifact.network, p).unwrap())
            .collect();
        // Store opens are exclusive: a second handle on a live store is a
        // typed error, not silent aliasing.
        match MonitorArtifact::load_json(&path) {
            Err(ArtifactError::Store(napmon_store::StoreError::Locked(_))) => {}
            other => panic!("expected Locked while the builder holds the store, got {other:?}"),
        }
        // Drop the builder's handle ("process exit") and reload: the
        // artifact reattaches the segments and answers bit-identically.
        drop(artifact);
        let loaded = MonitorArtifact::load_json(&path).unwrap();
        assert!(!loaded.monitor().needs_sources(), "load reattaches");
        for (p, want) in probes.iter().zip(&expected) {
            assert_eq!(loaded.monitor.verdict(&loaded.network, p).unwrap(), *want);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_store_fails_load_typed() {
        use napmon_core::{PatternBackend, ThresholdPolicy};
        let dir = std::env::temp_dir().join(format!(
            "napmon_artifact_missing_store_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let net = net();
        let spec = MonitorSpec::new(
            4,
            MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::Store, 0),
        );
        let mut provider = napmon_store::StoreProvider::new(dir.join("stores"));
        let artifact =
            MonitorArtifact::build_with_sources(spec, &net, &train_data(8), &mut provider).unwrap();
        let json = artifact.to_json_string().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let err = MonitorArtifact::from_json_str(&json).unwrap_err();
        assert!(matches!(err, ArtifactError::Store(_)), "{err:?}");
    }

    #[test]
    fn from_parts_validates() {
        let net = net();
        let data = train_data(16);
        let spec = MonitorSpec::new(4, MonitorKind::pattern());
        let monitor = spec.build(&net, &data).unwrap();
        assert!(MonitorArtifact::from_parts(spec.clone(), net.clone(), monitor, 16).is_ok());
        // Wrong composition: claim per-class over a single monitor.
        let single = spec.build(&net, &data).unwrap();
        let bad_spec = spec.per_class(2);
        assert!(matches!(
            MonitorArtifact::from_parts(bad_spec, net, single, 16),
            Err(ArtifactError::Mismatch(_))
        ));
    }
}
