//! The unified error surface of the artifact pipeline.

use napmon_core::MonitorError;
use napmon_nn::NnError;
use std::fmt;

/// Errors raised while building, saving, loading, or validating a
/// [`MonitorArtifact`](crate::MonitorArtifact).
///
/// Marked `#[non_exhaustive]`: future format versions may add variants
/// without breaking downstream matches.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// Reading or writing an artifact file failed.
    Io(std::io::Error),
    /// The file is not valid JSON, or does not decode to an artifact.
    Serde(serde_json::Error),
    /// The file was written by a different (incompatible) format version.
    UnsupportedVersion {
        /// The `format_version` found in the file.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The embedded spec or monitor violates a monitor-level invariant.
    Monitor(MonitorError),
    /// The embedded network is malformed.
    Nn(NnError),
    /// The artifact's parts disagree with each other (e.g. the monitor
    /// watches a boundary width the embedded network does not have).
    Mismatch(String),
    /// The artifact references an external pattern store that cannot be
    /// reopened (missing directory, corrupt segment, wrong word width).
    Store(napmon_store::StoreError),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact i/o failed: {e}"),
            ArtifactError::Serde(e) => write!(f, "artifact (de)serialization failed: {e}"),
            ArtifactError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported artifact format version {found} (this build reads version {supported})"
            ),
            ArtifactError::Monitor(e) => write!(f, "artifact monitor invalid: {e}"),
            ArtifactError::Nn(e) => write!(f, "artifact network invalid: {e}"),
            ArtifactError::Mismatch(msg) => write!(f, "artifact inconsistent: {msg}"),
            ArtifactError::Store(e) => write!(f, "artifact pattern store unusable: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            ArtifactError::Serde(e) => Some(e),
            ArtifactError::Monitor(e) => Some(e),
            ArtifactError::Nn(e) => Some(e),
            ArtifactError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<serde_json::Error> for ArtifactError {
    fn from(e: serde_json::Error) -> Self {
        ArtifactError::Serde(e)
    }
}

impl From<MonitorError> for ArtifactError {
    fn from(e: MonitorError) -> Self {
        ArtifactError::Monitor(e)
    }
}

impl From<napmon_store::StoreError> for ArtifactError {
    fn from(e: napmon_store::StoreError) -> Self {
        ArtifactError::Store(e)
    }
}

impl From<NnError> for ArtifactError {
    fn from(e: NnError) -> Self {
        ArtifactError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ArtifactError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        assert!(e.to_string().contains("version 1"));
        let e = ArtifactError::from(MonitorError::EmptyTrainingSet);
        assert!(e.to_string().contains("monitor"));
        let e = ArtifactError::Mismatch("widths disagree".into());
        assert!(e.to_string().contains("widths disagree"));
    }

    #[test]
    fn sources_are_chained() {
        use std::error::Error as _;
        let e = ArtifactError::from(MonitorError::EmptyTrainingSet);
        assert!(e.source().is_some());
        let e = ArtifactError::Mismatch("x".into());
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArtifactError>();
    }
}
