//! The registry proper: tenant map, atomic hot-swap, drain-safe retirement.

use crate::shadow::{MirrorJob, ShadowReport, ShadowState};
use crate::{valid_tenant_id, RegistryConfig, RegistryError};
use napmon_artifact::MonitorArtifact;
use napmon_core::{ComposedMonitor, MonitorSpec, Verdict};
use napmon_nn::Network;
use napmon_serve::{MonitorEngine, ServeReport};
use napmon_store::StoreProvider;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// One engine mounted under a tenant: the unit the hot-swap pointer flip
/// exchanges. Dispatchers hold an `Arc<Mounted>` for exactly the duration
/// of one submission, so `Arc::strong_count == 1` on a retired mount means
/// no request can still reach its engine.
pub struct Mounted {
    model_id: String,
    version: u32,
    engine: MonitorEngine<ComposedMonitor>,
}

impl Mounted {
    /// The owning tenant's id.
    pub fn model_id(&self) -> &str {
        &self.model_id
    }

    /// The mounted monitor version (`>= 1`; `0` is the wire-level "active"
    /// route sentinel and never mounts).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The engine serving this mount.
    pub fn engine(&self) -> &MonitorEngine<ComposedMonitor> {
        &self.engine
    }
}

/// One tenant: the active mount behind the swap lock, plus an optional
/// shadow candidate.
struct TenantState {
    model_id: String,
    /// The hot-swap point. Writers hold this only for the pointer flip;
    /// readers only long enough to clone the `Arc`.
    active: RwLock<Arc<Mounted>>,
    shadow: Mutex<Option<ShadowState>>,
}

impl TenantState {
    fn active(&self) -> Arc<Mounted> {
        Arc::clone(&self.active.read().unwrap_or_else(PoisonError::into_inner))
    }
}

/// The final account of one retired engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainOutcome {
    /// The tenant the engine served.
    pub model_id: String,
    /// The retired version.
    pub version: u32,
    /// The engine's final report; `queue_depth == 0` unless `timed_out`.
    pub report: ServeReport,
    /// Whether the drain deadline expired before the engine quiesced. A
    /// timed-out drain leaves the engine's worker threads to the process
    /// (they are parked on empty queues, not spinning) rather than tearing
    /// them down under in-flight requests.
    pub timed_out: bool,
}

/// Everything [`MonitorRegistry::shutdown`] tore down.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistryReport {
    /// Active and shadow engines unmounted by the shutdown itself.
    pub tenants: Vec<DrainOutcome>,
    /// Engines retired earlier (hot-swaps, promotes) whose background
    /// drains the shutdown joined.
    pub retired: Vec<DrainOutcome>,
}

impl RegistryReport {
    /// Total requests served across every engine the registry ever ran.
    pub fn total_requests(&self) -> u64 {
        self.tenants
            .iter()
            .chain(&self.retired)
            .map(|o| o.report.requests)
            .sum()
    }
}

/// One row of [`MonitorRegistry::list`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantInfo {
    /// The tenant id.
    pub model_id: String,
    /// Version serving live traffic.
    pub active_version: u32,
    /// Shadow candidate version, if one is attached.
    pub shadow_version: Option<u32>,
    /// The active engine's backlog gauge.
    pub queue_depth: u64,
}

/// A multi-tenant monitor registry: `(model_id, version)` → mounted
/// engine, with atomic hot-swap, drain-safe retirement, and shadow
/// deployment. See the [crate docs](crate) for the lifecycle.
pub struct MonitorRegistry {
    config: RegistryConfig,
    tenants: RwLock<BTreeMap<String, Arc<TenantState>>>,
    retired: Mutex<Vec<JoinHandle<DrainOutcome>>>,
    closed: AtomicBool,
}

impl MonitorRegistry {
    /// An empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        Self {
            config,
            tenants: RwLock::new(BTreeMap::new()),
            retired: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
        }
    }

    /// The configuration the registry runs with.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    fn guard_open(&self) -> Result<(), RegistryError> {
        if self.closed.load(Ordering::Acquire) {
            Err(RegistryError::Closed)
        } else {
            Ok(())
        }
    }

    fn tenant(&self, model_id: &str) -> Result<Arc<TenantState>, RegistryError> {
        self.guard_open()?;
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(model_id)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownTenant(model_id.to_string()))
    }

    fn check_mount(&self, model_id: &str, version: u32) -> Result<(), RegistryError> {
        self.guard_open()?;
        if !valid_tenant_id(model_id) {
            return Err(RegistryError::InvalidTenantId(model_id.to_string()));
        }
        if version == 0 {
            return Err(RegistryError::ReservedVersion);
        }
        Ok(())
    }

    /// Mounts `artifact` as tenant `model_id` at `version`. A fresh tenant
    /// starts serving immediately; an existing tenant is **hot-swapped**:
    /// the pointer flips atomically, in-flight requests finish on the old
    /// engine, and the old engine drains to `queue_depth == 0` in the
    /// background before its workers are torn down.
    ///
    /// # Errors
    ///
    /// [`RegistryError::InvalidTenantId`], [`RegistryError::ReservedVersion`]
    /// (version 0), [`RegistryError::VersionInUse`] if the tenant already
    /// serves or shadows `version`, [`RegistryError::Closed`] after
    /// shutdown.
    pub fn mount(
        &self,
        model_id: &str,
        version: u32,
        artifact: MonitorArtifact,
    ) -> Result<(), RegistryError> {
        self.check_mount(model_id, version)?;
        self.mount_engine(
            model_id,
            version,
            MonitorEngine::from_artifact(artifact, self.config.engine),
        )
    }

    /// [`MonitorRegistry::mount`] over an engine the caller already built
    /// (custom warm-start paths, tests).
    pub fn mount_engine(
        &self,
        model_id: &str,
        version: u32,
        engine: MonitorEngine<ComposedMonitor>,
    ) -> Result<(), RegistryError> {
        self.check_mount(model_id, version)?;
        let mounted = Arc::new(Mounted {
            model_id: model_id.to_string(),
            version,
            engine,
        });
        // Fast path: existing tenant, hot-swap under its own lock.
        if let Some(tenant) = self
            .tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(model_id)
            .cloned()
        {
            return self.swap_active(&tenant, mounted);
        }
        let mut tenants = self.tenants.write().unwrap_or_else(PoisonError::into_inner);
        match tenants.get(model_id).cloned() {
            // Lost the race to another mount: swap instead.
            Some(tenant) => {
                drop(tenants);
                self.swap_active(&tenant, mounted)
            }
            None => {
                tenants.insert(
                    model_id.to_string(),
                    Arc::new(TenantState {
                        model_id: model_id.to_string(),
                        active: RwLock::new(mounted),
                        shadow: Mutex::new(None),
                    }),
                );
                Ok(())
            }
        }
    }

    /// Warm-starts tenant `model_id` at `version` straight from its
    /// namespaced pattern-store directory (see
    /// [`MonitorRegistry::tenant_store_dir`]) and mounts it — the
    /// registry-level [`MonitorEngine::from_store`].
    ///
    /// # Errors
    ///
    /// Mount errors as [`MonitorRegistry::mount`], plus
    /// [`RegistryError::NoStoreRoot`] when the registry was configured
    /// without one and [`RegistryError::Monitor`] when the spec cannot
    /// mount over the stores on disk.
    pub fn mount_from_store(
        &self,
        model_id: &str,
        version: u32,
        spec: &MonitorSpec,
        net: impl Into<Arc<Network>>,
    ) -> Result<(), RegistryError> {
        self.check_mount(model_id, version)?;
        let root = self.tenant_store_dir(model_id, version)?;
        let engine = MonitorEngine::from_store(spec, net, root, self.config.engine)?;
        self.mount_engine(model_id, version, engine)
    }

    /// The namespaced store directory for `(model_id, version)`:
    /// `<store_root>/tenant-<id>/v<NNNN>/`, holding the usual
    /// `member-NNNN/` layout underneath. Each mounted version gets its own
    /// namespace so a candidate's stores never alias the active version's
    /// advisory locks during a hot-swap.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NoStoreRoot`] without a configured root,
    /// [`RegistryError::InvalidTenantId`] for ids that cannot name a
    /// directory.
    pub fn tenant_store_dir(&self, model_id: &str, version: u32) -> Result<PathBuf, RegistryError> {
        if !valid_tenant_id(model_id) {
            return Err(RegistryError::InvalidTenantId(model_id.to_string()));
        }
        let root = self
            .config
            .store_root
            .as_deref()
            .ok_or(RegistryError::NoStoreRoot)?;
        Ok(StoreProvider::tenant_dir(root, model_id, version))
    }

    fn swap_active(
        &self,
        tenant: &TenantState,
        mounted: Arc<Mounted>,
    ) -> Result<(), RegistryError> {
        let shadow_version = tenant
            .shadow
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(ShadowState::version);
        {
            let mut active = tenant
                .active
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            if active.version == mounted.version || shadow_version == Some(mounted.version) {
                return Err(RegistryError::VersionInUse {
                    model_id: tenant.model_id.clone(),
                    version: mounted.version,
                });
            }
            #[cfg(feature = "obs")]
            let (started, started_ns, version) = (
                std::time::Instant::now(),
                napmon_obs::now_ns(),
                mounted.version,
            );
            let old = std::mem::replace(&mut *active, mounted);
            drop(active);
            #[cfg(feature = "obs")]
            crate::obs::record_flip(started, started_ns, version);
            self.retire(old);
        }
        Ok(())
    }

    /// Mounts `artifact` as a **shadow** candidate beside the tenant's
    /// active engine. Mirrored traffic starts flowing immediately; the
    /// candidate serves no live verdicts until [`MonitorRegistry::promote`].
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`], [`RegistryError::ShadowInUse`] if
    /// a candidate is already attached, [`RegistryError::VersionInUse`] if
    /// `version` is the active version, plus the mount errors of
    /// [`MonitorRegistry::mount`].
    pub fn mount_shadow(
        &self,
        model_id: &str,
        version: u32,
        artifact: MonitorArtifact,
    ) -> Result<(), RegistryError> {
        self.check_mount(model_id, version)?;
        self.mount_shadow_engine(
            model_id,
            version,
            MonitorEngine::from_artifact(artifact, self.config.engine),
        )
    }

    /// [`MonitorRegistry::mount_shadow`] over a prebuilt engine.
    pub fn mount_shadow_engine(
        &self,
        model_id: &str,
        version: u32,
        engine: MonitorEngine<ComposedMonitor>,
    ) -> Result<(), RegistryError> {
        self.check_mount(model_id, version)?;
        let tenant = self.tenant(model_id)?;
        let mut shadow = tenant.shadow.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(existing) = shadow.as_ref() {
            return Err(RegistryError::ShadowInUse {
                model_id: model_id.to_string(),
                shadow_version: existing.version(),
            });
        }
        if tenant.active().version == version {
            return Err(RegistryError::VersionInUse {
                model_id: model_id.to_string(),
                version,
            });
        }
        let mounted = Arc::new(Mounted {
            model_id: model_id.to_string(),
            version,
            engine,
        });
        *shadow = Some(ShadowState::spawn(mounted, self.config.mirror_capacity));
        Ok(())
    }

    /// Resolves `(model_id, version)` to its mount; version `0` means "the
    /// active version". A pinned version resolves the active or the shadow
    /// mount — this is how a candidate is queried directly (differential
    /// tests, canary probes) without waiting for promotion.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`] / [`RegistryError::UnknownVersion`].
    pub fn resolve(&self, model_id: &str, version: u32) -> Result<Arc<Mounted>, RegistryError> {
        let tenant = self.tenant(model_id)?;
        let active = tenant.active();
        if version == 0 || active.version == version {
            return Ok(active);
        }
        let shadow = tenant.shadow.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(state) = shadow.as_ref() {
            if state.version() == version {
                return Ok(Arc::clone(state.mounted()));
            }
        }
        Err(RegistryError::UnknownVersion {
            model_id: model_id.to_string(),
            version,
        })
    }

    /// The active mount plus a mirror handle when a shadow is attached.
    fn route(
        &self,
        model_id: &str,
    ) -> Result<(Arc<Mounted>, Option<crate::shadow::MirrorHandle>), RegistryError> {
        let tenant = self.tenant(model_id)?;
        let active = tenant.active();
        let mirror = tenant
            .shadow
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(ShadowState::handle);
        Ok((active, mirror))
    }

    /// Serves one input on the tenant's active engine, mirroring it to the
    /// shadow candidate (off the hot path) when one is attached.
    ///
    /// # Errors
    ///
    /// Routing errors plus [`RegistryError::Serve`] from the engine.
    pub fn query(&self, model_id: &str, input: Vec<f64>) -> Result<Verdict, RegistryError> {
        let (active, mirror) = self.route(model_id)?;
        let Some(mirror) = mirror else {
            return active.engine.submit(input).map_err(Into::into);
        };
        let inputs: Arc<[Vec<f64>]> = Arc::from(vec![input]);
        let started = Instant::now();
        let mut verdicts = active.engine.submit_batch(Arc::clone(&inputs))?;
        let active_ns = started.elapsed().as_nanos() as f64;
        let verdict = verdicts
            .pop()
            .ok_or(RegistryError::Serve(napmon_serve::ServeError::ShardDown))?;
        mirror.offer(MirrorJob::Query {
            inputs,
            active: vec![verdict.clone()],
            active_ns,
        });
        Ok(verdict)
    }

    /// Serves a batch on the tenant's active engine, mirroring it to the
    /// shadow candidate when one is attached. Share an
    /// `Arc<[Vec<f64>]>` across repeated submissions to avoid copies.
    ///
    /// # Errors
    ///
    /// Routing errors plus [`RegistryError::Serve`] from the engine.
    pub fn query_batch(
        &self,
        model_id: &str,
        inputs: impl Into<Arc<[Vec<f64>]>>,
    ) -> Result<Vec<Verdict>, RegistryError> {
        let (active, mirror) = self.route(model_id)?;
        let inputs: Arc<[Vec<f64>]> = inputs.into();
        let started = Instant::now();
        let verdicts = active.engine.submit_batch(Arc::clone(&inputs))?;
        if let Some(mirror) = mirror {
            let active_ns = if inputs.is_empty() {
                0.0
            } else {
                started.elapsed().as_nanos() as f64 / inputs.len() as f64
            };
            mirror.offer(MirrorJob::Query {
                inputs,
                active: verdicts.clone(),
                active_ns,
            });
        }
        Ok(verdicts)
    }

    /// Serves a batch on one **pinned** version — active or shadow — with
    /// no mirroring. This is the direct-candidate path differential tests
    /// compare mirrored verdicts against.
    ///
    /// # Errors
    ///
    /// Routing errors plus [`RegistryError::Serve`] from the engine.
    pub fn query_batch_version(
        &self,
        model_id: &str,
        version: u32,
        inputs: impl Into<Arc<[Vec<f64>]>>,
    ) -> Result<Vec<Verdict>, RegistryError> {
        let mounted = self.resolve(model_id, version)?;
        mounted.engine.submit_batch(inputs).map_err(Into::into)
    }

    /// Absorbs a batch into the tenant's active store-backed monitor and
    /// mirrors the batch to the shadow candidate (which absorbs it too, so
    /// a store-backed candidate keeps pace). Returns the active monitor's
    /// count of new patterns.
    ///
    /// # Errors
    ///
    /// Routing errors plus [`RegistryError::Serve`] from the engine.
    pub fn absorb_batch(
        &self,
        model_id: &str,
        inputs: impl Into<Arc<[Vec<f64>]>>,
    ) -> Result<usize, RegistryError> {
        let (active, mirror) = self.route(model_id)?;
        let inputs: Arc<[Vec<f64>]> = inputs.into();
        let fresh = active.engine.absorb_batch(&inputs)?;
        if let Some(mirror) = mirror {
            mirror.offer(MirrorJob::Absorb { inputs });
        }
        Ok(fresh)
    }

    /// A live snapshot of the shadow diff.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`] / [`RegistryError::NoShadow`].
    pub fn shadow_stats(&self, model_id: &str) -> Result<ShadowReport, RegistryError> {
        let tenant = self.tenant(model_id)?;
        let active_version = tenant.active().version;
        let shadow = tenant.shadow.lock().unwrap_or_else(PoisonError::into_inner);
        shadow
            .as_ref()
            .map(|state| state.report(model_id, active_version))
            .ok_or_else(|| RegistryError::NoShadow(model_id.to_string()))
    }

    /// Blocks until every mirror job enqueued before this call is served —
    /// the settling point that makes shadow reports deterministic in tests.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`] / [`RegistryError::NoShadow`].
    pub fn shadow_sync(&self, model_id: &str) -> Result<(), RegistryError> {
        let tenant = self.tenant(model_id)?;
        let shadow = tenant.shadow.lock().unwrap_or_else(PoisonError::into_inner);
        shadow
            .as_ref()
            .map(ShadowState::sync)
            .ok_or_else(|| RegistryError::NoShadow(model_id.to_string()))
    }

    /// Promotes the shadow candidate to active: detaches the mirror,
    /// flushes it (the returned report covers every mirrored job), flips
    /// the active pointer atomically, and retires the old engine in the
    /// background — in-flight requests finish on the engine they started
    /// on, and the retired engine drains to `queue_depth == 0` before its
    /// workers are torn down. The flip itself is a pointer swap; live
    /// traffic never waits on the flush.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`] / [`RegistryError::NoShadow`].
    pub fn promote(&self, model_id: &str) -> Result<ShadowReport, RegistryError> {
        let tenant = self.tenant(model_id)?;
        let state = tenant
            .shadow
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .ok_or_else(|| RegistryError::NoShadow(model_id.to_string()))?;
        // New queries stop mirroring the moment the slot is empty; the
        // flush below only waits on jobs already queued.
        let active_version = tenant.active().version;
        let (report, candidate) = state.finish(model_id, active_version);
        #[cfg(feature = "obs")]
        let (started, started_ns, version) = (
            std::time::Instant::now(),
            napmon_obs::now_ns(),
            candidate.version,
        );
        let old = {
            let mut active = tenant
                .active
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::replace(&mut *active, candidate)
        };
        #[cfg(feature = "obs")]
        crate::obs::record_flip(started, started_ns, version);
        self.retire(old);
        Ok(report)
    }

    /// Abandons the shadow candidate without promoting it: detaches and
    /// flushes the mirror, returns the final diff report, and retires the
    /// candidate engine.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`] / [`RegistryError::NoShadow`].
    pub fn drop_shadow(&self, model_id: &str) -> Result<ShadowReport, RegistryError> {
        let tenant = self.tenant(model_id)?;
        let state = tenant
            .shadow
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .ok_or_else(|| RegistryError::NoShadow(model_id.to_string()))?;
        let active_version = tenant.active().version;
        let (report, candidate) = state.finish(model_id, active_version);
        self.retire(candidate);
        Ok(report)
    }

    /// Unmounts a tenant entirely: removes it from the routing table,
    /// retires its shadow (if any), drains the active engine to
    /// `queue_depth == 0`, and returns the engine's final report.
    /// Blocks for up to the configured drain timeout.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`].
    pub fn unmount(&self, model_id: &str) -> Result<ServeReport, RegistryError> {
        let tenant = {
            let mut tenants = self.tenants.write().unwrap_or_else(PoisonError::into_inner);
            tenants
                .remove(model_id)
                .ok_or_else(|| RegistryError::UnknownTenant(model_id.to_string()))?
        };
        if let Some(state) = tenant
            .shadow
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let (_report, candidate) = state.finish(model_id, tenant.active().version);
            self.retire(candidate);
        }
        let active = self.take_active(tenant);
        let outcome = drain_mounted(active, &self.config);
        Ok(outcome.report)
    }

    /// Waits out transient routing references on a removed tenant and
    /// extracts its active mount.
    fn take_active(&self, tenant: Arc<TenantState>) -> Arc<Mounted> {
        // Dispatchers hold the `Arc<TenantState>` only between the routing
        // lookup and cloning the active `Arc<Mounted>`; spin briefly until
        // this handle is the last one, then move the mount out.
        let started = Instant::now();
        let mut tenant = tenant;
        loop {
            match Arc::try_unwrap(tenant) {
                Ok(state) => {
                    return state
                        .active
                        .into_inner()
                        .unwrap_or_else(PoisonError::into_inner)
                }
                Err(shared) => {
                    if started.elapsed() >= self.config.drain_timeout {
                        // Fall back to a clone: the lingering holder keeps
                        // the mount's refcount up, which the drain below
                        // observes and times out on honestly.
                        return shared.active();
                    }
                    tenant = shared;
                    std::thread::sleep(self.config.drain_poll);
                }
            }
        }
    }

    /// Hands a replaced mount to a background drainer thread.
    fn retire(&self, old: Arc<Mounted>) {
        let config = self.config.clone();
        let handle = std::thread::Builder::new()
            .name("napmon-registry-drain".into())
            .spawn(move || drain_mounted(old, &config))
            .expect("spawn registry drainer");
        self.retired
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
    }

    /// Joins drainers that already finished and returns their outcomes;
    /// never blocks on a drain still in progress.
    pub fn reap_retired(&self) -> Vec<DrainOutcome> {
        let mut retired = self.retired.lock().unwrap_or_else(PoisonError::into_inner);
        let mut done = Vec::new();
        let mut pending = Vec::new();
        for handle in retired.drain(..) {
            if handle.is_finished() {
                if let Ok(outcome) = handle.join() {
                    done.push(outcome);
                }
            } else {
                pending.push(handle);
            }
        }
        *retired = pending;
        done
    }

    /// Retired engines whose background drain has not finished yet.
    pub fn pending_retired(&self) -> usize {
        self.retired
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    /// One row per tenant, ordered by id.
    pub fn list(&self) -> Vec<TenantInfo> {
        let tenants = self.tenants.read().unwrap_or_else(PoisonError::into_inner);
        tenants
            .values()
            .map(|tenant| {
                let active = tenant.active();
                TenantInfo {
                    model_id: tenant.model_id.clone(),
                    active_version: active.version,
                    shadow_version: tenant
                        .shadow
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .as_ref()
                        .map(ShadowState::version),
                    queue_depth: active.engine.queue_depth() as u64,
                }
            })
            .collect()
    }

    /// A merged serving report across every tenant's **active** engine
    /// (shadow engines are operational plumbing, not serving capacity).
    pub fn stats(&self) -> ServeReport {
        let actives: Vec<Arc<Mounted>> = {
            let tenants = self.tenants.read().unwrap_or_else(PoisonError::into_inner);
            tenants.values().map(|t| t.active()).collect()
        };
        ServeReport::merge(actives.iter().map(|m| m.engine.report()))
    }

    /// Tears the whole registry down: refuses new work, unmounts every
    /// tenant (shadows first, then actives, each drained to
    /// `queue_depth == 0`), joins every background drainer, and returns
    /// the full account. Idempotent — a second call returns an empty
    /// report.
    pub fn shutdown(&self) -> RegistryReport {
        self.closed.store(true, Ordering::Release);
        let tenants: Vec<Arc<TenantState>> = {
            let mut map = self.tenants.write().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *map).into_values().collect()
        };
        let mut drained = Vec::new();
        for tenant in tenants {
            if let Some(state) = tenant
                .shadow
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
            {
                let model_id = tenant.model_id.clone();
                let (_report, candidate) = state.finish(&model_id, tenant.active().version);
                drained.push(drain_mounted(candidate, &self.config));
            }
            let active = self.take_active(tenant);
            drained.push(drain_mounted(active, &self.config));
        }
        let retired = {
            let mut handles = self.retired.lock().unwrap_or_else(PoisonError::into_inner);
            handles
                .drain(..)
                .filter_map(|h| h.join().ok())
                .collect::<Vec<_>>()
        };
        RegistryReport {
            tenants: drained,
            retired,
        }
    }
}

impl Drop for MonitorRegistry {
    fn drop(&mut self) {
        if !self.closed.load(Ordering::Acquire) {
            self.shutdown();
        }
    }
}

/// Waits for a retired mount to quiesce — no dispatcher holds it
/// (`Arc::strong_count == 1`) and its queue is empty — then shuts the
/// engine down and reports. On deadline expiry the engine is left running
/// (its threads park on empty queues) and the report says so.
fn drain_mounted(mounted: Arc<Mounted>, config: &RegistryConfig) -> DrainOutcome {
    let started = Instant::now();
    let mut timed_out = false;
    loop {
        if Arc::strong_count(&mounted) == 1 && mounted.engine.queue_depth() == 0 {
            break;
        }
        if started.elapsed() >= config.drain_timeout {
            timed_out = true;
            break;
        }
        std::thread::sleep(config.drain_poll);
    }
    match Arc::try_unwrap(mounted) {
        Ok(owned) => DrainOutcome {
            model_id: owned.model_id,
            version: owned.version,
            report: owned.engine.shutdown(),
            timed_out,
        },
        Err(shared) => DrainOutcome {
            model_id: shared.model_id.clone(),
            version: shared.version,
            report: shared.engine.report(),
            timed_out: true,
        },
    }
}
