//! Multi-tenant monitor registry: many `(model_id, version)` mounts served
//! through one routing table, with atomic hot-swap and shadow deployment.
//!
//! One [`MonitorEngine`](napmon_serve::MonitorEngine) serves one monitor
//! forever; a production service fronts many models whose monitors roll
//! forward without dropping traffic. [`MonitorRegistry`] is that layer:
//!
//! ```text
//!                    MonitorRegistry
//!   model_id ─────► TenantState ──► active: Arc<Mounted>  ──► engine v3
//!                        │
//!                        └────────► shadow: ShadowState   ──► engine v4
//!                                       (mirror queue, verdict diff)
//! ```
//!
//! **Hot-swap** is an arc-swap-style pointer flip behind a `RwLock`: the
//! writer holds the lock only to exchange the `Arc<Mounted>`, readers only
//! to clone it, so the flip never stalls the serving path. In-flight
//! requests finish on the engine they resolved (they hold its `Arc`), and
//! the replaced engine is handed to a background drainer that waits for
//! `Arc::strong_count == 1` **and** `queue_depth == 0` before tearing its
//! worker threads down — retirement never cancels work.
//!
//! **Shadow deployment** mounts a candidate beside the active engine.
//! Live queries are answered by the active engine and mirrored into a
//! bounded queue (`try_send` — a full queue drops the mirror job, never
//! blocks the request); a worker replays them on the candidate and
//! accumulates a [`ShadowReport`]: agreement rate, per-class disagreement
//! counts, latency delta. An explicit [`MonitorRegistry::promote`] flushes
//! the mirror, returns the final report, and performs the atomic flip.
//!
//! **Store namespacing:** store-backed mounts live under
//! `<store_root>/tenant-<id>/v<NNNN>/member-NNNN/`, one namespace per
//! mounted version, so a candidate's pattern stores never alias the active
//! version's advisory locks mid-swap.
//!
//! The wire layer (`napmon-wire`) exposes all of this remotely: protocol
//! v2 frames carry a tenant route and the admin opcodes map one-to-one
//! onto the registry's mount/promote/unmount surface.

#[cfg(feature = "obs")]
mod obs;
pub mod registry;
pub mod shadow;

pub use registry::{DrainOutcome, MonitorRegistry, Mounted, RegistryReport, TenantInfo};
pub use shadow::ShadowReport;

use napmon_artifact::ArtifactError;
use napmon_core::MonitorError;
use napmon_serve::{EngineConfig, ServeError};
use std::path::PathBuf;
use std::time::Duration;

/// Longest tenant id the registry (and the wire route encoding) accepts.
pub const TENANT_ID_MAX_BYTES: usize = 64;

/// Whether `id` can name a tenant: 1–[`TENANT_ID_MAX_BYTES`] bytes of
/// `[A-Za-z0-9._-]`, starting with an alphanumeric. The charset keeps ids
/// path-safe — a tenant id becomes a `tenant-<id>/` store directory — and
/// the leading-alphanumeric rule rules out `.`-led and `-`-led names.
pub fn valid_tenant_id(id: &str) -> bool {
    let mut bytes = id.bytes();
    let Some(first) = bytes.next() else {
        return false;
    };
    first.is_ascii_alphanumeric()
        && id.len() <= TENANT_ID_MAX_BYTES
        && bytes.all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
}

/// Registry sizing and policy.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Engine sizing every mount is created with.
    pub engine: EngineConfig,
    /// Root directory for per-tenant namespaced pattern stores; `None`
    /// disables the store-backed mount paths.
    pub store_root: Option<PathBuf>,
    /// Mirror queue capacity (in jobs) for shadow candidates.
    pub mirror_capacity: usize,
    /// How often a drainer re-checks a retiring engine.
    pub drain_poll: Duration,
    /// How long a drain may take before giving up (the engine is then left
    /// parked rather than torn down under in-flight work).
    pub drain_timeout: Duration,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            store_root: None,
            mirror_capacity: 1024,
            drain_poll: Duration::from_millis(1),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

impl RegistryConfig {
    /// Defaults with an explicit engine sizing.
    pub fn with_engine(engine: EngineConfig) -> Self {
        Self {
            engine,
            ..Self::default()
        }
    }

    /// Sets the store root for namespaced store-backed mounts.
    pub fn store_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.store_root = Some(root.into());
        self
    }
}

/// Everything the registry can refuse or fail with.
#[derive(Debug)]
#[non_exhaustive]
pub enum RegistryError {
    /// No tenant with this id is mounted.
    UnknownTenant(String),
    /// The tenant exists but serves neither this version as active nor as
    /// shadow.
    UnknownVersion {
        /// The tenant.
        model_id: String,
        /// The version that resolved nowhere.
        version: u32,
    },
    /// The version is already mounted (active or shadow) for this tenant.
    VersionInUse {
        /// The tenant.
        model_id: String,
        /// The already-mounted version.
        version: u32,
    },
    /// Version 0 is the "active" route sentinel and cannot be mounted.
    ReservedVersion,
    /// The id cannot name a tenant (see [`valid_tenant_id`]).
    InvalidTenantId(String),
    /// No shadow candidate is attached to this tenant.
    NoShadow(String),
    /// A shadow candidate is already attached.
    ShadowInUse {
        /// The tenant.
        model_id: String,
        /// The attached candidate's version.
        shadow_version: u32,
    },
    /// The registry has no configured store root.
    NoStoreRoot,
    /// The registry has been shut down.
    Closed,
    /// The engine refused or failed the submission.
    Serve(ServeError),
    /// Monitor construction or mounting failed.
    Monitor(MonitorError),
    /// Artifact loading or validation failed.
    Artifact(ArtifactError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownTenant(id) => write!(f, "unknown tenant {id:?}"),
            RegistryError::UnknownVersion { model_id, version } => {
                write!(f, "tenant {model_id:?} has no mounted version {version}")
            }
            RegistryError::VersionInUse { model_id, version } => {
                write!(f, "tenant {model_id:?} already mounts version {version}")
            }
            RegistryError::ReservedVersion => {
                write!(f, "version 0 is reserved to route to the active version")
            }
            RegistryError::InvalidTenantId(id) => write!(
                f,
                "invalid tenant id {id:?}: need 1-{TENANT_ID_MAX_BYTES} bytes of \
                 [A-Za-z0-9._-] starting alphanumeric"
            ),
            RegistryError::NoShadow(id) => write!(f, "tenant {id:?} has no shadow candidate"),
            RegistryError::ShadowInUse {
                model_id,
                shadow_version,
            } => write!(
                f,
                "tenant {model_id:?} already shadows version {shadow_version}"
            ),
            RegistryError::NoStoreRoot => {
                write!(f, "registry configured without a store root")
            }
            RegistryError::Closed => write!(f, "registry is shut down"),
            RegistryError::Serve(e) => write!(f, "serve error: {e}"),
            RegistryError::Monitor(e) => write!(f, "monitor error: {e}"),
            RegistryError::Artifact(e) => write!(f, "artifact error: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Serve(e) => Some(e),
            RegistryError::Monitor(e) => Some(e),
            RegistryError::Artifact(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for RegistryError {
    fn from(e: ServeError) -> Self {
        RegistryError::Serve(e)
    }
}

impl From<MonitorError> for RegistryError {
    fn from(e: MonitorError) -> Self {
        RegistryError::Monitor(e)
    }
}

impl From<ArtifactError> for RegistryError {
    fn from(e: ArtifactError) -> Self {
        RegistryError::Artifact(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_id_charset() {
        for ok in ["a", "model-a", "resnet50.v2", "A_b-3", &"x".repeat(64)] {
            assert!(valid_tenant_id(ok), "{ok:?} should be valid");
        }
        for bad in [
            "",
            ".",
            "..",
            ".hidden",
            "-rf",
            "_x",
            "a/b",
            "a b",
            "a\0b",
            "ä",
            &"x".repeat(65),
        ] {
            assert!(!valid_tenant_id(bad), "{bad:?} should be invalid");
        }
    }
}
