//! Registry-side observability probes (compiled only with the `obs`
//! feature).
//!
//! Metrics land in the process-wide [`napmon_obs::global`] registry under
//! the `registry.` namespace:
//!
//! | metric                     | type      | meaning                                  |
//! |----------------------------|-----------|------------------------------------------|
//! | `registry.flip_ns`         | histogram | active-pointer swap latency (hot swap)   |
//! | `registry.flips`           | counter   | hot swaps performed (mount + promote)    |
//! | `registry.mirror_dropped`  | counter   | mirrored inputs dropped by a full queue  |
//!
//! Each flip additionally emits a [`SpanKind::HotSwapFlip`] trace span
//! (trace id 0 — deployment control flow, not request flow) carrying the
//! incoming version as its detail.
//!
//! [`SpanKind::HotSwapFlip`]: napmon_obs::SpanKind::HotSwapFlip

use napmon_obs::{Counter, LatencyHistogram, SpanKind};
use std::sync::{Arc, OnceLock};

/// Handles into the global registry, resolved once per process.
pub(crate) struct RegistryMetrics {
    pub(crate) flip_ns: Arc<LatencyHistogram>,
    pub(crate) flips: Counter,
    pub(crate) mirror_dropped: Counter,
}

pub(crate) fn metrics() -> &'static RegistryMetrics {
    static METRICS: OnceLock<RegistryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = napmon_obs::global();
        RegistryMetrics {
            flip_ns: registry.histogram("registry.flip_ns"),
            flips: registry.counter("registry.flips"),
            mirror_dropped: registry.counter("registry.mirror_dropped"),
        }
    })
}

/// Records one active-pointer flip: latency histogram, counter, and (when
/// tracing is on) a [`SpanKind::HotSwapFlip`] span naming the version.
#[inline]
pub(crate) fn record_flip(started: std::time::Instant, started_ns: u64, version: u32) {
    let metrics = metrics();
    metrics.flip_ns.record(started.elapsed().as_nanos() as u64);
    metrics.flips.inc();
    if napmon_obs::tracing_enabled() {
        let now = napmon_obs::now_ns();
        napmon_obs::record_span(
            0,
            SpanKind::HotSwapFlip,
            started_ns,
            now.saturating_sub(started_ns),
            u64::from(version),
        );
    }
}
