//! Shadow deployment: a candidate engine mounted beside the active one,
//! fed mirrored traffic off the hot path, scored by a verdict diff.
//!
//! The mirror is a bounded `sync_channel` drained by one worker thread.
//! The serving path only ever `try_send`s into it — a full queue drops the
//! mirror job (counted, surfaced in the report) rather than ever blocking
//! a live request on the candidate. The worker replays each mirrored batch
//! through the candidate engine and classifies every verdict pair:
//! agreement, warn-only-active, warn-only-shadow, or detail mismatch
//! (same warning flag, different violation evidence).

use crate::registry::Mounted;
use napmon_core::Verdict;
use napmon_obs::HistogramSnapshot;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One unit of mirrored traffic (or a test barrier).
pub(crate) enum MirrorJob {
    /// A query batch the active engine already answered; the worker
    /// replays it through the candidate and diffs the verdicts.
    Query {
        inputs: Arc<[Vec<f64>]>,
        active: Vec<Verdict>,
        /// Active-engine wall time per input, nanoseconds.
        active_ns: f64,
    },
    /// An absorb batch; replayed so a store-backed candidate keeps pace
    /// with the active monitor's operation-time enlargement.
    Absorb { inputs: Arc<[Vec<f64>]> },
    /// Barrier: the worker answers once every job ahead of it is done.
    Sync(mpsc::Sender<()>),
}

impl MirrorJob {
    /// Inputs this job carries — the weight a drop is counted at.
    fn weight(&self) -> u64 {
        match self {
            MirrorJob::Query { inputs, .. } | MirrorJob::Absorb { inputs } => inputs.len() as u64,
            MirrorJob::Sync(_) => 0,
        }
    }
}

/// Diff counters the mirror worker accumulates.
#[derive(Debug, Default, Clone)]
struct ShadowAccum {
    mirrored: u64,
    agreements: u64,
    warn_only_active: u64,
    warn_only_shadow: u64,
    detail_mismatch: u64,
    shadow_errors: u64,
    absorbed: u64,
    active_ns_total: f64,
    shadow_ns_total: f64,
    /// Per-item active-engine latency distribution over mirrored queries.
    active_latency: HistogramSnapshot,
    /// Per-item candidate latency distribution over the same queries.
    shadow_latency: HistogramSnapshot,
}

/// A send-side handle on the mirror queue: cheap to clone out of the
/// shadow slot so the serving path never holds the slot's lock across a
/// submit.
#[derive(Clone)]
pub(crate) struct MirrorHandle {
    tx: mpsc::SyncSender<MirrorJob>,
    dropped: Arc<AtomicU64>,
}

impl MirrorHandle {
    /// Offers a job to the mirror queue; a full (or closed) queue drops it
    /// and counts the loss. Never blocks.
    pub(crate) fn offer(&self, job: MirrorJob) {
        let weight = job.weight();
        if self.tx.try_send(job).is_err() {
            self.dropped.fetch_add(weight, Ordering::Relaxed);
            #[cfg(feature = "obs")]
            crate::obs::metrics().mirror_dropped.add(weight);
        }
    }
}

/// The candidate mount plus its mirror worker.
pub(crate) struct ShadowState {
    mounted: Arc<Mounted>,
    handle: MirrorHandle,
    accum: Arc<Mutex<ShadowAccum>>,
    worker: JoinHandle<()>,
}

impl ShadowState {
    /// Mounts `candidate` as a shadow and spawns its mirror worker with a
    /// queue of `capacity` jobs.
    pub(crate) fn spawn(candidate: Arc<Mounted>, capacity: usize) -> Self {
        let (tx, rx) = mpsc::sync_channel(capacity.max(1));
        let accum = Arc::new(Mutex::new(ShadowAccum::default()));
        let worker_mounted = Arc::clone(&candidate);
        let worker_accum = Arc::clone(&accum);
        let worker = std::thread::Builder::new()
            .name("napmon-shadow-mirror".into())
            .spawn(move || run_mirror(&worker_mounted, &rx, &worker_accum))
            .expect("spawn shadow mirror worker");
        Self {
            mounted: candidate,
            handle: MirrorHandle {
                tx,
                dropped: Arc::new(AtomicU64::new(0)),
            },
            accum,
            worker,
        }
    }

    /// The candidate mount.
    pub(crate) fn mounted(&self) -> &Arc<Mounted> {
        &self.mounted
    }

    /// The candidate's version.
    pub(crate) fn version(&self) -> u32 {
        self.mounted.version()
    }

    /// A clonable send-side handle for the serving path.
    pub(crate) fn handle(&self) -> MirrorHandle {
        self.handle.clone()
    }

    /// Blocks until every mirror job enqueued before this call is served —
    /// the deterministic settling point tests and reports use.
    pub(crate) fn sync(&self) {
        let (reply, rx) = mpsc::channel();
        // A blocking send is correct here: sync is a control operation,
        // not serving traffic.
        if self.handle.tx.send(MirrorJob::Sync(reply)).is_ok() {
            let _ = rx.recv();
        }
    }

    /// A live snapshot of the diff so far.
    pub(crate) fn report(&self, model_id: &str, active_version: u32) -> ShadowReport {
        let accum = self
            .accum
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone();
        build_report(
            model_id,
            active_version,
            self.version(),
            &accum,
            self.handle.dropped.load(Ordering::Relaxed),
        )
    }

    /// Closes the mirror queue, joins the worker (flushing every mirrored
    /// job), and returns the final report plus the candidate mount.
    pub(crate) fn finish(
        self,
        model_id: &str,
        active_version: u32,
    ) -> (ShadowReport, Arc<Mounted>) {
        let ShadowState {
            mounted,
            handle,
            accum,
            worker,
        } = self;
        let dropped = handle.dropped.load(Ordering::Relaxed);
        drop(handle); // closes the queue once outstanding sends settle
        let _ = worker.join();
        let accum = accum
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone();
        let report = build_report(model_id, active_version, mounted.version(), &accum, dropped);
        (report, mounted)
    }
}

fn build_report(
    model_id: &str,
    active_version: u32,
    shadow_version: u32,
    accum: &ShadowAccum,
    dropped: u64,
) -> ShadowReport {
    let mean = |total: f64| {
        if accum.mirrored == 0 {
            0.0
        } else {
            total / accum.mirrored as f64
        }
    };
    let mean_active_ns = mean(accum.active_ns_total);
    let mean_shadow_ns = mean(accum.shadow_ns_total);
    let delta = |q: f64| accum.shadow_latency.quantile(q) - accum.active_latency.quantile(q);
    ShadowReport {
        model_id: model_id.to_string(),
        active_version,
        shadow_version,
        mirrored: accum.mirrored,
        dropped,
        agreements: accum.agreements,
        warn_only_active: accum.warn_only_active,
        warn_only_shadow: accum.warn_only_shadow,
        detail_mismatch: accum.detail_mismatch,
        shadow_errors: accum.shadow_errors,
        absorbed: accum.absorbed,
        agreement_rate: if accum.mirrored == 0 {
            1.0
        } else {
            accum.agreements as f64 / accum.mirrored as f64
        },
        mean_active_ns,
        mean_shadow_ns,
        latency_delta_ns: mean_shadow_ns - mean_active_ns,
        latency_delta_p50_ns: delta(0.50),
        latency_delta_p90_ns: delta(0.90),
        latency_delta_p99_ns: delta(0.99),
        latency_delta_p999_ns: delta(0.999),
        active_latency_ns: accum.active_latency.clone(),
        shadow_latency_ns: accum.shadow_latency.clone(),
    }
}

/// The mirror worker loop: replay, diff, accumulate.
fn run_mirror(mounted: &Mounted, rx: &mpsc::Receiver<MirrorJob>, accum: &Mutex<ShadowAccum>) {
    while let Ok(job) = rx.recv() {
        match job {
            MirrorJob::Query {
                inputs,
                active,
                active_ns,
            } => {
                let n = inputs.len();
                let started = Instant::now();
                let outcome = mounted.engine().submit_batch(Arc::clone(&inputs));
                let shadow_ns = if n == 0 {
                    0.0
                } else {
                    started.elapsed().as_nanos() as f64 / n as f64
                };
                let mut a = accum.lock().unwrap_or_else(|poison| poison.into_inner());
                match outcome {
                    Ok(shadow) => {
                        for (av, sv) in active.iter().zip(&shadow) {
                            a.mirrored += 1;
                            a.active_latency.record_ns(active_ns);
                            a.shadow_latency.record_ns(shadow_ns);
                            match (av.warning, sv.warning) {
                                _ if av == sv => a.agreements += 1,
                                (true, false) => a.warn_only_active += 1,
                                (false, true) => a.warn_only_shadow += 1,
                                // Same warning flag, different evidence.
                                _ => a.detail_mismatch += 1,
                            }
                        }
                        a.active_ns_total += active_ns * n as f64;
                        a.shadow_ns_total += shadow_ns * n as f64;
                    }
                    Err(_) => a.shadow_errors += n as u64,
                }
            }
            MirrorJob::Absorb { inputs } => {
                let mut a = accum.lock().unwrap_or_else(|poison| poison.into_inner());
                match mounted.engine().absorb_batch(&inputs) {
                    Ok(fresh) => a.absorbed += fresh as u64,
                    Err(_) => a.shadow_errors += inputs.len() as u64,
                }
            }
            MirrorJob::Sync(reply) => {
                let _ = reply.send(());
            }
        }
    }
}

/// The verdict diff between an active monitor and its shadow candidate —
/// the evidence a [`promote`](crate::MonitorRegistry::promote) decision is
/// made on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShadowReport {
    /// The tenant the candidate shadows.
    pub model_id: String,
    /// Version serving live traffic while the diff accumulated.
    pub active_version: u32,
    /// The candidate's version.
    pub shadow_version: u32,
    /// Mirrored query inputs the candidate answered.
    pub mirrored: u64,
    /// Mirror jobs dropped because the queue was full (in inputs) — the
    /// price of keeping the mirror off the hot path.
    pub dropped: u64,
    /// Verdict pairs that agreed exactly (flag and evidence).
    pub agreements: u64,
    /// Active warned, candidate did not.
    pub warn_only_active: u64,
    /// Candidate warned, active did not.
    pub warn_only_shadow: u64,
    /// Same warning flag, different violation evidence.
    pub detail_mismatch: u64,
    /// Mirrored inputs the candidate failed to serve (in inputs).
    pub shadow_errors: u64,
    /// New patterns the candidate absorbed from mirrored absorb traffic.
    pub absorbed: u64,
    /// `agreements / mirrored` (`1.0` while nothing is mirrored).
    pub agreement_rate: f64,
    /// Mean active-engine latency over the mirrored queries, nanoseconds.
    pub mean_active_ns: f64,
    /// Mean candidate latency over the mirrored queries, nanoseconds.
    pub mean_shadow_ns: f64,
    /// `mean_shadow_ns - mean_active_ns` (negative: candidate is faster).
    pub latency_delta_ns: f64,
    /// Median latency delta, candidate minus active (quantile bracket
    /// midpoints of the two per-item histograms below).
    pub latency_delta_p50_ns: f64,
    /// 90th-percentile latency delta, candidate minus active.
    pub latency_delta_p90_ns: f64,
    /// 99th-percentile latency delta, candidate minus active.
    pub latency_delta_p99_ns: f64,
    /// 99.9th-percentile latency delta, candidate minus active.
    pub latency_delta_p999_ns: f64,
    /// Per-item active-engine latency histogram over mirrored queries —
    /// means hide tail regressions; the full distribution does not.
    pub active_latency_ns: HistogramSnapshot,
    /// Per-item candidate latency histogram over the same queries.
    pub shadow_latency_ns: HistogramSnapshot,
}

impl ShadowReport {
    /// Total verdict pairs that disagreed, any class.
    pub fn disagreements(&self) -> u64 {
        self.warn_only_active + self.warn_only_shadow + self.detail_mismatch
    }
}

impl std::fmt::Display for ShadowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shadow report: {} v{} vs active v{}: {} mirrored ({} dropped), \
             agreement {:.4} ({} warn-only-active, {} warn-only-shadow, {} detail), \
             latency delta {:+.0}ns mean / {:+.0}ns p50 / {:+.0}ns p99",
            self.model_id,
            self.shadow_version,
            self.active_version,
            self.mirrored,
            self.dropped,
            self.agreement_rate,
            self.warn_only_active,
            self.warn_only_shadow,
            self.detail_mismatch,
            self.latency_delta_ns,
            self.latency_delta_p50_ns,
            self.latency_delta_p99_ns,
        )
    }
}
