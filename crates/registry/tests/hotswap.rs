//! Registry lifecycle under load: atomic hot-swap, drain-safe retirement,
//! shadow differential correctness, and per-version store namespacing.
//!
//! The headline test runs continuous query traffic across **100 promote
//! flips** and requires zero errors and zero torn batches: every batch's
//! verdicts are bit-identical to exactly one of the two engine builds,
//! never a mix, and every retired engine reaches `queue_depth == 0`
//! before its workers come down.

use napmon_core::{ComposedMonitor, MonitorKind, MonitorSpec, Verdict};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_registry::{MonitorRegistry, RegistryConfig, RegistryError};
use napmon_serve::{EngineConfig, MonitorEngine};
use napmon_tensor::Prng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const INPUT_DIM: usize = 6;

fn network() -> Network {
    Network::seeded(
        501,
        INPUT_DIM,
        &[
            LayerSpec::dense(16, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    )
}

/// Training data plus probes straddling the distribution, so both verdict
/// branches occur.
fn traffic() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut rng = Prng::seed(77);
    let train: Vec<Vec<f64>> = (0..128)
        .map(|_| rng.uniform_vec(INPUT_DIM, -1.0, 1.0))
        .collect();
    let probes: Vec<Vec<f64>> = (0..48)
        .map(|i: usize| {
            if i.is_multiple_of(3) {
                rng.uniform_vec(INPUT_DIM, -2.5, 2.5)
            } else {
                train[i % train.len()].clone()
            }
        })
        .collect();
    (train, probes)
}

/// Two monitors that genuinely disagree: A sees the whole training set, B
/// only half, so B warns on patterns A considers known.
fn monitors(net: &Network, train: &[Vec<f64>]) -> (ComposedMonitor, ComposedMonitor) {
    let spec = MonitorSpec::new(2, MonitorKind::pattern());
    let a = spec.build(net, train).expect("build monitor A");
    let b = spec
        .build(net, &train[..train.len() / 2])
        .expect("build monitor B");
    (a, b)
}

fn engine(net: &Network, monitor: ComposedMonitor) -> MonitorEngine<ComposedMonitor> {
    MonitorEngine::new(net.clone(), monitor, EngineConfig::with_shards(1))
}

/// 100 promote flips under continuous query load: every served batch is
/// bit-identical to one of the two builds (no torn swap ever mixes
/// engines within a batch), no request errors, and every retired engine
/// drains to `queue_depth == 0` before teardown.
#[test]
fn hundred_promote_flips_under_load_are_atomic_and_drain_safe() {
    const FLIPS: u32 = 100;
    const LOADERS: usize = 3;

    let net = network();
    let (train, probes) = traffic();
    let (monitor_a, monitor_b) = monitors(&net, &train);

    // Reference verdicts for each build, computed off the registry.
    let reference = |monitor: ComposedMonitor| -> Vec<Verdict> {
        let engine = engine(&net, monitor);
        let verdicts = engine
            .submit_batch(probes.clone())
            .expect("reference batch");
        engine.shutdown();
        verdicts
    };
    let expected_a = reference(monitor_a.clone());
    let expected_b = reference(monitor_b.clone());
    assert_ne!(
        expected_a, expected_b,
        "fixture must distinguish the two builds or a torn swap is invisible"
    );

    let registry = Arc::new(MonitorRegistry::new(RegistryConfig::with_engine(
        EngineConfig::with_shards(1),
    )));
    registry
        .mount_engine("prod", 1, engine(&net, monitor_a.clone()))
        .expect("mount v1");

    let stop = Arc::new(AtomicBool::new(false));
    let torn = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let inputs: Arc<[Vec<f64>]> = Arc::from(probes.clone());

    let loaders: Vec<_> = (0..LOADERS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let torn = Arc::clone(&torn);
            let errors = Arc::clone(&errors);
            let served = Arc::clone(&served);
            let inputs = Arc::clone(&inputs);
            let expected_a = expected_a.clone();
            let expected_b = expected_b.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match registry.query_batch("prod", Arc::clone(&inputs)) {
                        Ok(verdicts) => {
                            if verdicts != expected_a && verdicts != expected_b {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();

    // Alternate the two builds through shadow → promote, 100 times.
    for flip in 0..FLIPS {
        let version = flip + 2;
        let monitor = if flip.is_multiple_of(2) {
            monitor_b.clone()
        } else {
            monitor_a.clone()
        };
        registry
            .mount_shadow_engine("prod", version, engine(&net, monitor))
            .unwrap_or_else(|e| panic!("mount shadow v{version}: {e}"));
        let report = registry
            .promote("prod")
            .unwrap_or_else(|e| panic!("promote v{version}: {e}"));
        assert_eq!(report.shadow_version, version);
    }

    stop.store(true, Ordering::Relaxed);
    for loader in loaders {
        loader.join().expect("loader thread");
    }

    assert_eq!(
        errors.load(Ordering::Relaxed),
        0,
        "hot-swaps surfaced errors"
    );
    assert_eq!(
        torn.load(Ordering::Relaxed),
        0,
        "a batch mixed verdicts from two engines: the swap tore"
    );
    assert!(
        served.load(Ordering::Relaxed) > u64::from(FLIPS),
        "load must actually overlap the flips"
    );

    // Every promote retired one engine; each drains to an empty queue and
    // none hit the drain deadline.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let mut outcomes = Vec::new();
    while outcomes.len() < FLIPS as usize {
        outcomes.extend(registry.reap_retired());
        assert!(
            std::time::Instant::now() < deadline,
            "retired engines never finished draining ({}/{FLIPS})",
            outcomes.len()
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(registry.pending_retired(), 0);
    for outcome in &outcomes {
        assert!(
            !outcome.timed_out,
            "v{} drain timed out instead of quiescing",
            outcome.version
        );
        assert_eq!(
            outcome.report.queue_depth, 0,
            "v{} retired with queued work",
            outcome.version
        );
    }

    // The survivor is the last-promoted version and still serves.
    let tenants = registry.list();
    assert_eq!(tenants.len(), 1);
    assert_eq!(tenants[0].active_version, FLIPS + 1);
    assert_eq!(tenants[0].shadow_version, None);

    let report = registry.shutdown();
    assert_eq!(report.tenants.len(), 1);
    assert_eq!(report.tenants[0].report.queue_depth, 0);
    assert!(!report.tenants[0].timed_out);
}

/// The shadow differential: mirrored verdicts are **bit-identical** to
/// submitting the same inputs directly to the candidate engine. The
/// mirror's per-class disagreement counts must equal a recomputation from
/// direct pinned-version submissions on both engines.
#[test]
fn shadow_report_matches_direct_candidate_submission_bit_for_bit() {
    let net = network();
    let (train, probes) = traffic();
    let (monitor_a, monitor_b) = monitors(&net, &train);

    let registry = MonitorRegistry::new(RegistryConfig::with_engine(EngineConfig::with_shards(2)));
    registry
        .mount_engine("diff", 1, engine(&net, monitor_a))
        .expect("mount active");
    registry
        .mount_shadow_engine("diff", 2, engine(&net, monitor_b))
        .expect("mount shadow");

    // Live traffic: answered by the active engine, mirrored to the shadow.
    let inputs: Arc<[Vec<f64>]> = Arc::from(probes.clone());
    let live = registry
        .query_batch("diff", Arc::clone(&inputs))
        .expect("live batch");
    for probe in probes.iter().take(8) {
        registry.query("diff", probe.clone()).expect("live query");
    }
    registry.shadow_sync("diff").expect("mirror settled");
    let report = registry.shadow_stats("diff").expect("shadow stats");

    // Direct pinned-version submissions: the ground truth the mirror must
    // reproduce exactly.
    let direct_active = registry
        .query_batch_version("diff", 1, Arc::clone(&inputs))
        .expect("direct active");
    let direct_shadow = registry
        .query_batch_version("diff", 2, Arc::clone(&inputs))
        .expect("direct shadow");
    assert_eq!(
        live, direct_active,
        "live traffic must come off the active engine"
    );

    // Recompute the diff classes from the direct verdict pairs. The first
    // 8 probes were additionally mirrored once more via `query`.
    let mut agreements = 0u64;
    let mut warn_only_active = 0u64;
    let mut warn_only_shadow = 0u64;
    let mut detail_mismatch = 0u64;
    let mut tally = |av: &Verdict, sv: &Verdict| match (av.warning, sv.warning) {
        _ if av == sv => agreements += 1,
        (true, false) => warn_only_active += 1,
        (false, true) => warn_only_shadow += 1,
        _ => detail_mismatch += 1,
    };
    for (av, sv) in direct_active.iter().zip(&direct_shadow) {
        tally(av, sv);
    }
    for (av, sv) in direct_active.iter().zip(&direct_shadow).take(8) {
        tally(av, sv);
    }

    let mirrored = (probes.len() + 8) as u64;
    assert_eq!(report.mirrored, mirrored);
    assert_eq!(
        report.dropped, 0,
        "an unconstrained mirror queue dropped jobs"
    );
    assert_eq!(report.shadow_errors, 0);
    assert_eq!(report.agreements, agreements);
    assert_eq!(report.warn_only_active, warn_only_active);
    assert_eq!(report.warn_only_shadow, warn_only_shadow);
    assert_eq!(report.detail_mismatch, detail_mismatch);
    assert!(
        report.disagreements() > 0 && report.agreements > 0,
        "fixture must exercise both agreement and disagreement"
    );
    let rate = agreements as f64 / mirrored as f64;
    assert!((report.agreement_rate - rate).abs() < 1e-12);

    // Promote: the final report covers the same mirrored jobs, and the
    // candidate's verdicts now serve live — bit-identical to the direct
    // submissions made while it was still a shadow.
    let promoted = registry.promote("diff").expect("promote");
    assert_eq!(promoted.mirrored, mirrored);
    assert_eq!(promoted.agreements, agreements);
    let after = registry
        .query_batch("diff", Arc::clone(&inputs))
        .expect("post-promote batch");
    assert_eq!(
        after, direct_shadow,
        "promotion changed the candidate's verdicts"
    );
    assert!(matches!(
        registry.shadow_stats("diff"),
        Err(RegistryError::NoShadow(_))
    ));
    registry.shutdown();
}

/// Store-backed mounts: each `(tenant, version)` gets its own namespaced
/// directory, so an active engine and its candidate hold advisory locks
/// on disjoint stores and can absorb concurrently mid-rollout.
#[test]
fn store_backed_versions_mount_side_by_side_without_lock_aliasing() {
    use napmon_core::{PatternBackend, ThresholdPolicy};
    use napmon_store::StoreProvider;

    let root = std::env::temp_dir().join(format!("napmon_registry_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let net = network();
    let (train, _) = traffic();
    let spec = MonitorSpec::new(
        2,
        MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::Store, 0),
    );
    let registry = MonitorRegistry::new(
        RegistryConfig::with_engine(EngineConfig::with_shards(1)).store_root(&root),
    );

    // Seed both versions' stores, releasing the builders' locks before
    // the registry mounts over the same directories.
    let v1_dir = registry.tenant_store_dir("resnet", 1).expect("v1 dir");
    let v2_dir = registry.tenant_store_dir("resnet", 2).expect("v2 dir");
    assert_ne!(v1_dir, v2_dir, "versions must not share a namespace");
    assert!(v1_dir.ends_with("tenant-resnet/v0001"));
    assert!(v2_dir.ends_with("tenant-resnet/v0002"));
    {
        spec.build_with_sources(&net, &train, &mut StoreProvider::new(&v1_dir))
            .expect("seed v1 store");
        spec.build_with_sources(&net, &train[..64], &mut StoreProvider::new(&v2_dir))
            .expect("seed v2 store");
    }

    // Active v1 and shadow v2 hold their stores open at the same time —
    // only possible because the namespaces are disjoint.
    registry
        .mount_from_store("resnet", 1, &spec, net.clone())
        .expect("mount v1 from store");
    let candidate = MonitorEngine::from_store(
        &spec,
        net.clone(),
        registry.tenant_store_dir("resnet", 2).expect("v2 dir"),
        EngineConfig::with_shards(1),
    )
    .expect("open v2 from store");
    registry
        .mount_shadow_engine("resnet", 2, candidate)
        .expect("mount shadow v2");

    // Absorb novel traffic: the active store grows, and the mirrored
    // absorb keeps the candidate's (separate) store in step.
    let ood: Vec<Vec<f64>> = {
        let mut rng = Prng::seed(99);
        (0..32)
            .map(|_| rng.uniform_vec(INPUT_DIM, -3.0, 3.0))
            .collect()
    };
    let fresh = registry
        .absorb_batch("resnet", ood.clone())
        .expect("absorb into active");
    assert!(fresh > 0, "novel traffic must enlarge the active store");
    registry.shadow_sync("resnet").expect("mirror settled");
    let report = registry.shadow_stats("resnet").expect("shadow stats");
    assert!(
        report.absorbed > 0,
        "mirrored absorb never reached the candidate store"
    );

    registry.promote("resnet").expect("promote v2");
    let absorbed_clean = registry
        .query_batch("resnet", ood)
        .expect("post-promote batch");
    assert!(
        absorbed_clean.iter().all(|v| !v.warning),
        "candidate lost the absorbed patterns across promotion"
    );

    // On-disk layout: one member tree per version namespace.
    for dir in [&v1_dir, &v2_dir] {
        assert!(
            dir.join("member-0000").is_dir(),
            "missing member store under {}",
            dir.display()
        );
    }

    let report = registry.unmount("resnet").expect("unmount");
    assert_eq!(report.queue_depth, 0);
    let _ = std::fs::remove_dir_all(&root);
}

/// Every refusal is a typed error: reserved/invalid ids and versions,
/// double mounts, missing shadows, unknown routes, and a closed registry.
#[test]
fn refusals_are_typed() {
    let net = network();
    let (train, probes) = traffic();
    let (monitor_a, monitor_b) = monitors(&net, &train);

    let registry = MonitorRegistry::new(RegistryConfig::with_engine(EngineConfig::with_shards(1)));
    assert!(matches!(
        registry.mount_engine("m", 0, engine(&net, monitor_a.clone())),
        Err(RegistryError::ReservedVersion)
    ));
    assert!(matches!(
        registry.mount_engine(".hidden", 1, engine(&net, monitor_a.clone())),
        Err(RegistryError::InvalidTenantId(_))
    ));
    assert!(matches!(
        registry.tenant_store_dir("m", 1),
        Err(RegistryError::NoStoreRoot)
    ));

    registry
        .mount_engine("m", 1, engine(&net, monitor_a.clone()))
        .expect("mount");
    assert!(matches!(
        registry.mount_engine("m", 1, engine(&net, monitor_b.clone())),
        Err(RegistryError::VersionInUse { version: 1, .. })
    ));
    assert!(matches!(
        registry.promote("m"),
        Err(RegistryError::NoShadow(_))
    ));
    assert!(matches!(
        registry.query("nope", probes[0].clone()),
        Err(RegistryError::UnknownTenant(_))
    ));
    assert!(matches!(
        registry.query_batch_version("m", 9, probes.clone()),
        Err(RegistryError::UnknownVersion { version: 9, .. })
    ));

    registry
        .mount_shadow_engine("m", 2, engine(&net, monitor_b.clone()))
        .expect("mount shadow");
    assert!(matches!(
        registry.mount_shadow_engine("m", 3, engine(&net, monitor_b.clone())),
        Err(RegistryError::ShadowInUse {
            shadow_version: 2,
            ..
        })
    ));
    // A pinned route reaches the shadow directly; the shadow's version is
    // also refused for a second active mount.
    assert!(registry.query_batch_version("m", 2, probes.clone()).is_ok());
    assert!(matches!(
        registry.mount_engine("m", 2, engine(&net, monitor_a.clone())),
        Err(RegistryError::VersionInUse { version: 2, .. })
    ));

    let dropped = registry.drop_shadow("m").expect("drop shadow");
    assert_eq!(dropped.shadow_version, 2);

    registry.shutdown();
    assert!(matches!(
        registry.query("m", probes[0].clone()),
        Err(RegistryError::Closed)
    ));
    assert!(matches!(
        registry.mount_engine("m", 5, engine(&net, monitor_a)),
        Err(RegistryError::Closed)
    ));
    // Shutdown is idempotent.
    let again = registry.shutdown();
    assert!(again.tenants.is_empty() && again.retired.is_empty());
}
