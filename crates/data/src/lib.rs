//! Synthetic perception datasets for the `napmon` experiments.
//!
//! The paper evaluates its monitors in a physical race-track lab: a DNN
//! regresses visual waypoints from camera images, the training data carries
//! aleatory lighting jitter, and out-of-ODD scenarios (darkness, a
//! construction site, ice on the track) are staged physically. None of
//! that data was released, so this crate synthesizes the closest
//! functional equivalents:
//!
//! - [`racetrack`] — a parametric track-view renderer producing grayscale
//!   images with waypoint labels. The in-ODD sampler jitters lighting and
//!   pixel noise per sample, reproducing the false-positive mechanism the
//!   paper attributes to "tiny changes of lighting conditions in the day".
//! - [`ood`] — procedural corruptions mirroring the staged scenarios of
//!   the paper's Figure 2 (dark conditions, construction site, ice on the
//!   track) plus fog and sensor-noise extras.
//! - [`shapes`] — a small glyph-classification dataset (per-class
//!   monitoring as in the DATE 2019 predecessor paper).
//! - [`gaussian`] — Gaussian cluster data for fast unit and property
//!   tests.
//!
//! Everything is deterministic given a seed.

pub mod dataset;
pub mod gaussian;
pub mod image;
pub mod ood;
pub mod racetrack;
pub mod shapes;

pub use dataset::Dataset;
pub use image::Image;
pub use ood::OodScenario;
pub use racetrack::{TrackConfig, TrackSampler};
