//! Gaussian cluster data for fast tests and micro-benchmarks.

use crate::dataset::Dataset;
use napmon_tensor::Prng;
use serde::{Deserialize, Serialize};

/// A mixture of isotropic Gaussian clusters, one cluster per class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianClusters {
    /// Cluster centers (class `c` is `centers[c]`).
    pub centers: Vec<Vec<f64>>,
    /// Shared isotropic standard deviation.
    pub sigma: f64,
}

impl GaussianClusters {
    /// `k` clusters on a circle of the given radius in `dim` dimensions
    /// (extra dimensions are zero-centered).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `dim < 2`, or `sigma <= 0`.
    pub fn ring(k: usize, dim: usize, radius: f64, sigma: f64) -> Self {
        assert!(k > 0, "need at least one cluster");
        assert!(dim >= 2, "ring layout needs dim >= 2");
        assert!(sigma > 0.0, "sigma must be positive");
        let centers = (0..k)
            .map(|i| {
                let angle = i as f64 * std::f64::consts::TAU / k as f64;
                let mut c = vec![0.0; dim];
                c[0] = radius * angle.cos();
                c[1] = radius * angle.sin();
                c
            })
            .collect();
        Self { centers, sigma }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.centers.len()
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.centers[0].len()
    }

    /// Samples one point of class `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn sample(&self, c: usize, rng: &mut Prng) -> Vec<f64> {
        self.centers[c]
            .iter()
            .map(|&m| rng.normal(m, self.sigma))
            .collect()
    }

    /// A balanced classification dataset with `per_class` samples each.
    pub fn dataset(&self, per_class: usize, rng: &mut Prng) -> Dataset {
        let k = self.num_classes();
        let mut inputs = Vec::with_capacity(per_class * k);
        let mut labels = Vec::with_capacity(per_class * k);
        for _ in 0..per_class {
            for c in 0..k {
                inputs.push(self.sample(c, rng));
                labels.push(c);
            }
        }
        let mut d = Dataset::classification(inputs, labels, k);
        d.shuffle(rng);
        d
    }

    /// OOD inputs: samples from a phantom cluster at the ring center (far
    /// from every in-distribution cluster when `radius >> sigma`).
    pub fn ood_inputs(&self, n: usize, rng: &mut Prng) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                (0..self.dim())
                    .map(|_| rng.normal(0.0, self.sigma))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_layout_geometry() {
        let g = GaussianClusters::ring(4, 3, 2.0, 0.1);
        assert_eq!(g.num_classes(), 4);
        assert_eq!(g.dim(), 3);
        // Centers pairwise distinct and on the radius.
        for c in &g.centers {
            let r = (c[0] * c[0] + c[1] * c[1]).sqrt();
            assert!((r - 2.0).abs() < 1e-12);
            assert_eq!(c[2], 0.0);
        }
    }

    #[test]
    fn samples_concentrate_near_their_center() {
        let g = GaussianClusters::ring(3, 2, 5.0, 0.2);
        let mut rng = Prng::seed(13);
        for c in 0..3 {
            for _ in 0..50 {
                let x = g.sample(c, &mut rng);
                let d: f64 = x
                    .iter()
                    .zip(&g.centers[c])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                assert!(d < 1.5, "sample {d} too far from center {c}");
            }
        }
    }

    #[test]
    fn dataset_is_balanced() {
        let g = GaussianClusters::ring(3, 2, 3.0, 0.3);
        let d = g.dataset(20, &mut Prng::seed(14));
        assert_eq!(d.len(), 60);
        let labels = d.labels.as_ref().unwrap();
        for c in 0..3 {
            assert_eq!(labels.iter().filter(|&&l| l == c).count(), 20);
        }
    }

    #[test]
    fn ood_points_sit_far_from_clusters() {
        let g = GaussianClusters::ring(4, 2, 6.0, 0.3);
        let mut rng = Prng::seed(15);
        for x in g.ood_inputs(30, &mut rng) {
            for c in &g.centers {
                let d: f64 = x
                    .iter()
                    .zip(c)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                assert!(d > 3.0, "OOD point too close to a cluster");
            }
        }
    }

    #[test]
    #[should_panic(expected = "dim >= 2")]
    fn ring_needs_two_dims() {
        GaussianClusters::ring(2, 1, 1.0, 0.1);
    }
}
