//! Labelled datasets with deterministic splits.

use napmon_tensor::Prng;
use serde::{Deserialize, Serialize};

/// A labelled dataset: inputs plus regression targets, with optional class
/// labels for classification tasks.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Network inputs, one vector per sample.
    pub inputs: Vec<Vec<f64>>,
    /// Training targets (regression values or one-hot rows).
    pub targets: Vec<Vec<f64>>,
    /// Class labels for classification datasets.
    pub labels: Option<Vec<usize>>,
}

impl Dataset {
    /// Creates a regression dataset.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn regression(inputs: Vec<Vec<f64>>, targets: Vec<Vec<f64>>) -> Self {
        assert_eq!(
            inputs.len(),
            targets.len(),
            "dataset: inputs vs targets length"
        );
        Self {
            inputs,
            targets,
            labels: None,
        }
    }

    /// Creates a classification dataset; targets become one-hot rows.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or a label is `>= num_classes`.
    pub fn classification(inputs: Vec<Vec<f64>>, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(
            inputs.len(),
            labels.len(),
            "dataset: inputs vs labels length"
        );
        let targets = labels
            .iter()
            .map(|&c| {
                assert!(c < num_classes, "label {c} out of range 0..{num_classes}");
                let mut row = vec![0.0; num_classes];
                row[c] = 1.0;
                row
            })
            .collect();
        Self {
            inputs,
            targets,
            labels: Some(labels),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Deterministically shuffles the samples in place.
    pub fn shuffle(&mut self, rng: &mut Prng) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut order);
        self.reorder(&order);
    }

    fn reorder(&mut self, order: &[usize]) {
        self.inputs = order.iter().map(|&i| self.inputs[i].clone()).collect();
        self.targets = order.iter().map(|&i| self.targets[i].clone()).collect();
        if let Some(labels) = &self.labels {
            self.labels = Some(order.iter().map(|&i| labels[i]).collect());
        }
    }

    /// Splits off the first `fraction` of samples (after an internal
    /// deterministic shuffle) as the first dataset; the rest become the
    /// second.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `(0, 1)`.
    pub fn split(mut self, fraction: f64, rng: &mut Prng) -> (Dataset, Dataset) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "split fraction {fraction} outside (0, 1)"
        );
        self.shuffle(rng);
        let cut = ((self.len() as f64) * fraction).round() as usize;
        let cut = cut.clamp(1, self.len().saturating_sub(1).max(1));
        let second = Dataset {
            inputs: self.inputs.split_off(cut),
            targets: self.targets.split_off(cut),
            labels: self.labels.as_mut().map(|l| l.split_off(cut)),
        };
        (self, second)
    }

    /// Appends all samples of `other`.
    ///
    /// # Panics
    ///
    /// Panics if exactly one of the two datasets carries labels.
    pub fn extend(&mut self, other: Dataset) {
        assert_eq!(
            self.labels.is_some(),
            other.labels.is_some() || self.is_empty(),
            "label presence mismatch"
        );
        self.inputs.extend(other.inputs);
        self.targets.extend(other.targets);
        match (&mut self.labels, other.labels) {
            (Some(a), Some(b)) => a.extend(b),
            (None, Some(b)) if self.targets.len() == b.len() => self.labels = Some(b),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::classification(
            (0..10).map(|i| vec![i as f64]).collect(),
            (0..10).map(|i| i % 2).collect(),
            2,
        )
    }

    #[test]
    fn classification_builds_one_hot() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.targets[3], vec![0.0, 1.0]);
        assert_eq!(d.labels.as_ref().unwrap()[3], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn classification_validates_labels() {
        Dataset::classification(vec![vec![0.0]], vec![5], 2);
    }

    #[test]
    fn split_partitions_all_samples() {
        let mut rng = Prng::seed(1);
        let (a, b) = toy().split(0.7, &mut rng);
        assert_eq!(a.len() + b.len(), 10);
        assert_eq!(a.len(), 7);
        assert_eq!(a.labels.as_ref().unwrap().len(), 7);
        assert_eq!(b.labels.as_ref().unwrap().len(), 3);
    }

    #[test]
    fn split_is_deterministic() {
        let (a1, _) = toy().split(0.5, &mut Prng::seed(42));
        let (a2, _) = toy().split(0.5, &mut Prng::seed(42));
        assert_eq!(a1, a2);
    }

    #[test]
    fn shuffle_preserves_pairing() {
        let mut d = toy();
        d.shuffle(&mut Prng::seed(3));
        for (x, l) in d.inputs.iter().zip(d.labels.as_ref().unwrap()) {
            assert_eq!((x[0] as usize) % 2, *l, "pairing broken by shuffle");
        }
    }

    #[test]
    fn extend_concatenates() {
        let mut a = toy();
        let b = toy();
        a.extend(b);
        assert_eq!(a.len(), 20);
        assert_eq!(a.labels.as_ref().unwrap().len(), 20);
    }
}
