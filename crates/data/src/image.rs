//! Grayscale images as flat `f64` vectors.

use serde::{Deserialize, Serialize};

/// A grayscale image with intensities in `[0, 1]`, stored row-major.
///
/// ```
/// use napmon_data::Image;
/// let img = Image::filled(2, 3, 0.5);
/// assert_eq!(img.pixels().len(), 6);
/// assert_eq!(img.get(1, 2), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    h: usize,
    w: usize,
    pixels: Vec<f64>,
}

impl Image {
    /// Creates an image filled with a constant intensity.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(h: usize, w: usize, value: f64) -> Self {
        assert!(h > 0 && w > 0, "image dimensions must be positive");
        Self {
            h,
            w,
            pixels: vec![value; h * w],
        }
    }

    /// Wraps existing pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != h * w` or either dimension is zero.
    pub fn from_pixels(h: usize, w: usize, pixels: Vec<f64>) -> Self {
        assert!(h > 0 && w > 0, "image dimensions must be positive");
        assert_eq!(
            pixels.len(),
            h * w,
            "pixel count {} != {h}x{w}",
            pixels.len()
        );
        Self { h, w, pixels }
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Borrows the row-major pixel buffer.
    pub fn pixels(&self) -> &[f64] {
        &self.pixels
    }

    /// Mutably borrows the pixel buffer.
    pub fn pixels_mut(&mut self) -> &mut [f64] {
        &mut self.pixels
    }

    /// Consumes the image into its pixel buffer (the network input format).
    pub fn into_pixels(self) -> Vec<f64> {
        self.pixels
    }

    /// Intensity at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.h && col < self.w,
            "pixel ({row},{col}) out of {}x{}",
            self.h,
            self.w
        );
        self.pixels[row * self.w + col]
    }

    /// Sets intensity at `(row, col)` (clamped to `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.h && col < self.w,
            "pixel ({row},{col}) out of {}x{}",
            self.h,
            self.w
        );
        self.pixels[row * self.w + col] = value.clamp(0.0, 1.0);
    }

    /// Clamps all intensities into `[0, 1]`.
    pub fn clamp(&mut self) {
        for p in &mut self.pixels {
            *p = p.clamp(0.0, 1.0);
        }
    }

    /// Renders the image as ASCII art (dark = dense glyphs), one row per
    /// line — used to "show" the synthetic Figure 2 scenarios in a
    /// terminal.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b"@%#*+=-:. ";
        let mut out = String::with_capacity((self.w + 1) * self.h);
        for r in 0..self.h {
            for c in 0..self.w {
                let v = self.get(r, c).clamp(0.0, 1.0);
                let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Mean intensity.
    pub fn mean(&self) -> f64 {
        self.pixels.iter().sum::<f64>() / self.pixels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = Image::filled(4, 3, 0.25);
        assert_eq!((img.height(), img.width()), (4, 3));
        img.set(2, 1, 0.75);
        assert_eq!(img.get(2, 1), 0.75);
        assert_eq!(img.get(0, 0), 0.25);
    }

    #[test]
    fn set_clamps_values() {
        let mut img = Image::filled(1, 1, 0.0);
        img.set(0, 0, 7.0);
        assert_eq!(img.get(0, 0), 1.0);
        img.set(0, 0, -3.0);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "pixel count")]
    fn from_pixels_checks_length() {
        Image::from_pixels(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn ascii_has_one_line_per_row() {
        let img = Image::filled(3, 5, 0.5);
        let art = img.to_ascii();
        assert_eq!(art.lines().count(), 3);
        assert!(art.lines().all(|l| l.chars().count() == 5));
    }

    #[test]
    fn ascii_dark_vs_bright_glyphs_differ() {
        let dark = Image::filled(1, 1, 0.0).to_ascii();
        let bright = Image::filled(1, 1, 1.0).to_ascii();
        assert_ne!(dark, bright);
        assert_eq!(bright.trim_end(), ""); // brightest maps to space
    }

    #[test]
    fn mean_intensity() {
        let img = Image::from_pixels(1, 4, vec![0.0, 0.5, 0.5, 1.0]);
        assert!((img.mean() - 0.5).abs() < 1e-12);
    }
}
