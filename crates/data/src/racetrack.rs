//! Synthetic race-track perception: images in, waypoints out.
//!
//! Stands in for the paper's physical lab. Each sample renders the
//! ego-view of a track whose geometry is drawn from the operational design
//! domain (ODD): curvature, lateral offset and heading vary smoothly, and
//! two *aleatory* nuisances — global lighting gain and per-pixel sensor
//! noise — are jittered per sample exactly like the "tiny changes of
//! lighting conditions in the day" that cause the false positives the
//! paper fights. The regression label is the visual waypoint the vehicle
//! should steer toward.

use crate::dataset::Dataset;
use crate::image::Image;
use napmon_tensor::Prng;
use serde::{Deserialize, Serialize};

/// Geometry and nuisance parameters of one rendered frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackParams {
    /// Track curvature (left negative, right positive).
    pub curvature: f64,
    /// Lateral offset of the ego vehicle from the track center line.
    pub offset: f64,
    /// Heading error of the ego vehicle.
    pub heading: f64,
    /// Global lighting gain (1.0 = nominal).
    pub lighting: f64,
}

/// Renderer and ODD-sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackConfig {
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Maximum |curvature| sampled inside the ODD.
    pub max_curvature: f64,
    /// Maximum |lateral offset| sampled inside the ODD.
    pub max_offset: f64,
    /// Maximum |heading error| sampled inside the ODD.
    pub max_heading: f64,
    /// Standard deviation of the per-sample lighting gain around 1.0.
    pub lighting_sigma: f64,
    /// Standard deviation of additive per-pixel sensor noise.
    pub pixel_noise: f64,
    /// Row (from the bottom, as a fraction of height) where the waypoint
    /// is read off.
    pub lookahead: f64,
}

impl Default for TrackConfig {
    fn default() -> Self {
        Self {
            height: 16,
            width: 16,
            max_curvature: 0.6,
            max_offset: 0.35,
            max_heading: 0.35,
            lighting_sigma: 0.06,
            pixel_noise: 0.02,
            lookahead: 0.75,
        }
    }
}

impl TrackConfig {
    /// Flattened input dimension (`height * width`).
    pub fn input_dim(&self) -> usize {
        self.height * self.width
    }

    /// Track-center horizontal position (in `[-1, 1]` view coordinates) at
    /// normalized distance `t ∈ [0, 1]` (0 = bottom of the image).
    pub fn center_line(&self, p: &TrackParams, t: f64) -> f64 {
        p.offset + p.heading * t + p.curvature * t * t
    }

    /// Renders the ego view of the track.
    ///
    /// The road is dark asphalt with bright lane markings, on lighter
    /// surroundings; the whole frame is scaled by the lighting gain and
    /// perturbed by sensor noise.
    pub fn render(&self, p: &TrackParams, rng: &mut Prng) -> Image {
        let (h, w) = (self.height, self.width);
        let mut img = Image::filled(h, w, 0.0);
        for row in 0..h {
            // Row 0 is the far horizon, row h-1 the nearest scanline.
            let t = 1.0 - (row as f64 + 0.5) / h as f64; // distance fraction
            let center = self.center_line(p, t);
            // Perspective: lanes converge with distance.
            let half_width = 0.42 * (1.0 - 0.65 * t);
            for col in 0..w {
                let x = (col as f64 + 0.5) / w as f64 * 2.0 - 1.0;
                let d = (x - center).abs();
                let base = if d < half_width * 0.82 {
                    0.30 // asphalt
                } else if d < half_width {
                    0.92 // lane marking
                } else {
                    0.62 + 0.08 * ((col * 7 + row * 13) % 5) as f64 / 5.0 // textured verge
                };
                let v = base * p.lighting + rng.normal(0.0, self.pixel_noise);
                img.set(row, col, v);
            }
        }
        img
    }

    /// The waypoint label for the given geometry: the track-center position
    /// at the lookahead distance, plus the lookahead itself, both in view
    /// coordinates.
    pub fn waypoint(&self, p: &TrackParams) -> Vec<f64> {
        vec![self.center_line(p, self.lookahead), self.lookahead]
    }
}

/// Samples in-ODD frames (geometry plus aleatory nuisances).
#[derive(Debug, Clone)]
pub struct TrackSampler {
    config: TrackConfig,
    rng: Prng,
}

impl TrackSampler {
    /// Creates a sampler with the given config and seed.
    pub fn new(config: TrackConfig, seed: u64) -> Self {
        Self {
            config,
            rng: Prng::seed(seed),
        }
    }

    /// The renderer configuration.
    pub fn config(&self) -> &TrackConfig {
        &self.config
    }

    /// Draws in-ODD geometry and nuisance parameters.
    pub fn sample_params(&mut self) -> TrackParams {
        let c = &self.config;
        TrackParams {
            curvature: self.rng.uniform(-c.max_curvature, c.max_curvature),
            offset: self.rng.uniform(-c.max_offset, c.max_offset),
            heading: self.rng.uniform(-c.max_heading, c.max_heading),
            lighting: (1.0 + self.rng.normal(0.0, c.lighting_sigma)).max(0.1),
        }
    }

    /// Renders one labelled in-ODD sample.
    pub fn sample(&mut self) -> (Image, Vec<f64>, TrackParams) {
        let params = self.sample_params();
        let img = self.config.render(&params, &mut self.rng);
        let label = self.config.waypoint(&params);
        (img, label, params)
    }

    /// Generates a labelled regression dataset of `n` in-ODD samples.
    pub fn dataset(&mut self, n: usize) -> Dataset {
        let mut inputs = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let (img, label, _) = self.sample();
            inputs.push(img.into_pixels());
            targets.push(label);
        }
        Dataset::regression(inputs, targets)
    }

    /// Access to the internal RNG (used by OOD generators that corrupt
    /// freshly sampled frames).
    pub fn rng_mut(&mut self) -> &mut Prng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_dimensions() {
        let c = TrackConfig::default();
        assert_eq!(c.input_dim(), 256);
    }

    #[test]
    fn rendering_is_deterministic_per_seed() {
        let c = TrackConfig::default();
        let mut a = TrackSampler::new(c, 5);
        let mut b = TrackSampler::new(c, 5);
        let (ia, la, pa) = a.sample();
        let (ib, lb, pb) = b.sample();
        assert_eq!(ia, ib);
        assert_eq!(la, lb);
        assert_eq!(pa, pb);
    }

    #[test]
    fn pixels_stay_in_unit_range() {
        let c = TrackConfig::default();
        let mut s = TrackSampler::new(c, 9);
        for _ in 0..20 {
            let (img, _, _) = s.sample();
            assert!(img.pixels().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn waypoint_tracks_geometry() {
        let c = TrackConfig::default();
        let straight = TrackParams {
            curvature: 0.0,
            offset: 0.0,
            heading: 0.0,
            lighting: 1.0,
        };
        assert_eq!(c.waypoint(&straight)[0], 0.0);
        let right = TrackParams {
            curvature: 0.5,
            offset: 0.0,
            heading: 0.0,
            lighting: 1.0,
        };
        assert!(c.waypoint(&right)[0] > 0.2);
        let offset = TrackParams {
            curvature: 0.0,
            offset: -0.3,
            heading: 0.0,
            lighting: 1.0,
        };
        assert!((c.waypoint(&offset)[0] + 0.3).abs() < 1e-12);
    }

    #[test]
    fn road_is_darker_than_verge() {
        let c = TrackConfig::default();
        let p = TrackParams {
            curvature: 0.0,
            offset: 0.0,
            heading: 0.0,
            lighting: 1.0,
        };
        let mut rng = Prng::seed(1);
        let img = c.render(&p, &mut rng);
        // Bottom row: center pixel is asphalt, border pixel is verge.
        let bottom = c.height - 1;
        let center = img.get(bottom, c.width / 2);
        let border = img.get(bottom, 0);
        assert!(
            center < border,
            "asphalt {center} should be darker than verge {border}"
        );
    }

    #[test]
    fn lighting_gain_scales_brightness() {
        let c = TrackConfig {
            pixel_noise: 0.0,
            ..TrackConfig::default()
        };
        let dim = TrackParams {
            curvature: 0.0,
            offset: 0.0,
            heading: 0.0,
            lighting: 0.4,
        };
        let bright = TrackParams {
            lighting: 1.2,
            ..dim
        };
        let i_dim = c.render(&dim, &mut Prng::seed(2));
        let i_bright = c.render(&bright, &mut Prng::seed(2));
        assert!(i_dim.mean() < i_bright.mean());
    }

    #[test]
    fn dataset_has_matching_shapes() {
        let mut s = TrackSampler::new(TrackConfig::default(), 3);
        let d = s.dataset(50);
        assert_eq!(d.len(), 50);
        assert!(d.inputs.iter().all(|x| x.len() == 256));
        assert!(d.targets.iter().all(|t| t.len() == 2));
        assert!(d.labels.is_none());
    }

    #[test]
    fn samples_vary_within_odd() {
        let mut s = TrackSampler::new(TrackConfig::default(), 11);
        let (a, _, _) = s.sample();
        let (b, _, _) = s.sample();
        assert_ne!(a, b);
    }
}
