//! Out-of-ODD scenario generators (the synthetic Figure 2).
//!
//! The paper stages three physical out-of-ODD scenarios on its race track
//! — dark conditions, a construction site, and ice on the track — and
//! measures how often each monitor flags them. These corruptions
//! reproduce the same three distribution shifts procedurally, plus two
//! extras (fog, heavy sensor noise) for wider sweeps:
//!
//! - **dark** — a global photometric shift (gain far below the ODD's
//!   lighting jitter),
//! - **construction** — a local structural anomaly: a striped barrier
//!   blocking part of the road ahead,
//! - **ice** — local photometric anomalies: high-albedo patches on the
//!   asphalt,
//! - **fog** — distance-dependent contrast washout,
//! - **sensor noise** — pixel-level corruption far beyond the ODD level.

use crate::image::Image;
use napmon_tensor::Prng;
use serde::{Deserialize, Serialize};

/// An out-of-ODD scenario, applied as a corruption to an in-ODD frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OodScenario {
    /// Dark conditions (paper scenario).
    Dark,
    /// Construction site on the track (paper scenario).
    Construction,
    /// Ice patches on the track (paper scenario).
    Ice,
    /// Fog (extra).
    Fog,
    /// Severe sensor noise (extra).
    SensorNoise,
}

impl OodScenario {
    /// The three scenarios staged in the paper.
    pub const PAPER: [OodScenario; 3] = [
        OodScenario::Dark,
        OodScenario::Construction,
        OodScenario::Ice,
    ];

    /// All implemented scenarios.
    pub const ALL: [OodScenario; 5] = [
        OodScenario::Dark,
        OodScenario::Construction,
        OodScenario::Ice,
        OodScenario::Fog,
        OodScenario::SensorNoise,
    ];

    /// Short lowercase name for tables.
    pub fn name(self) -> &'static str {
        match self {
            OodScenario::Dark => "dark",
            OodScenario::Construction => "construction",
            OodScenario::Ice => "ice",
            OodScenario::Fog => "fog",
            OodScenario::SensorNoise => "noise",
        }
    }

    /// Applies the corruption to an in-ODD frame.
    pub fn apply(self, img: &Image, rng: &mut Prng) -> Image {
        let mut out = img.clone();
        let (h, w) = (img.height(), img.width());
        match self {
            OodScenario::Dark => {
                let gain = rng.uniform(0.25, 0.45);
                for p in out.pixels_mut() {
                    *p *= gain;
                }
            }
            OodScenario::Construction => {
                // A striped barrier spanning the mid rows of the road.
                let top = h / 3;
                let bottom = top + (h / 4).max(2);
                let left = w / 4;
                let right = w - w / 4;
                for row in top..bottom.min(h) {
                    for col in left..right {
                        let stripe = ((col + row) / 2) % 2 == 0;
                        out.set(row, col, if stripe { 0.95 } else { 0.08 });
                    }
                }
            }
            OodScenario::Ice => {
                // 3-5 bright elliptical patches on the lower (road) half.
                let patches = 3 + rng.index(3);
                for _ in 0..patches {
                    let cy = h / 2 + rng.index(h / 2);
                    let cx = rng.index(w);
                    let ry = 1.0 + rng.uniform(0.0, 1.5);
                    let rx = 1.5 + rng.uniform(0.0, 2.5);
                    for row in 0..h {
                        for col in 0..w {
                            let dy = (row as f64 - cy as f64) / ry;
                            let dx = (col as f64 - cx as f64) / rx;
                            if dy * dy + dx * dx <= 1.0 {
                                let v = out.get(row, col);
                                out.set(row, col, (v + 0.85).min(1.0));
                            }
                        }
                    }
                }
            }
            OodScenario::Fog => {
                // Wash out toward white with distance (top of frame).
                for row in 0..h {
                    let t = 1.0 - (row as f64 + 0.5) / h as f64; // distance
                    let alpha = 0.85 * t + 0.25;
                    for col in 0..w {
                        let v = out.get(row, col);
                        out.set(row, col, v * (1.0 - alpha) + 0.95 * alpha);
                    }
                }
            }
            OodScenario::SensorNoise => {
                for p in out.pixels_mut() {
                    let noisy = *p + rng.normal(0.0, 0.25);
                    *p = noisy.clamp(0.0, 1.0);
                }
            }
        }
        out.clamp();
        out
    }
}

impl std::fmt::Display for OodScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::racetrack::{TrackConfig, TrackSampler};

    fn frame() -> (Image, Prng) {
        let mut s = TrackSampler::new(TrackConfig::default(), 31);
        let (img, _, _) = s.sample();
        (img, Prng::seed(77))
    }

    #[test]
    fn all_scenarios_keep_unit_range_and_shape() {
        let (img, mut rng) = frame();
        for sc in OodScenario::ALL {
            let out = sc.apply(&img, &mut rng);
            assert_eq!((out.height(), out.width()), (img.height(), img.width()));
            assert!(
                out.pixels().iter().all(|&v| (0.0..=1.0).contains(&v)),
                "{sc}"
            );
        }
    }

    #[test]
    fn dark_reduces_mean_brightness_substantially() {
        let (img, mut rng) = frame();
        let dark = OodScenario::Dark.apply(&img, &mut rng);
        assert!(
            dark.mean() < img.mean() * 0.6,
            "dark {} vs {}",
            dark.mean(),
            img.mean()
        );
    }

    #[test]
    fn ice_increases_brightness_on_road() {
        let (img, mut rng) = frame();
        let ice = OodScenario::Ice.apply(&img, &mut rng);
        assert!(ice.mean() > img.mean());
    }

    #[test]
    fn construction_inserts_high_contrast_stripes() {
        let (img, mut rng) = frame();
        let c = OodScenario::Construction.apply(&img, &mut rng);
        // The barrier rows contain near-black and near-white pixels.
        let h = img.height();
        let row = h / 3;
        let vals: Vec<f64> = (0..img.width()).map(|col| c.get(row, col)).collect();
        assert!(vals.iter().any(|&v| v > 0.9));
        assert!(vals.iter().any(|&v| v < 0.1));
    }

    #[test]
    fn fog_brightens_the_horizon_most() {
        let (img, mut rng) = frame();
        let foggy = OodScenario::Fog.apply(&img, &mut rng);
        let top_delta = foggy.get(0, 0) - img.get(0, 0);
        let bottom_delta = foggy.get(img.height() - 1, 0) - img.get(img.height() - 1, 0);
        assert!(top_delta > bottom_delta - 1e-9);
    }

    #[test]
    fn corruptions_change_the_image() {
        let (img, mut rng) = frame();
        for sc in OodScenario::ALL {
            assert_ne!(
                sc.apply(&img, &mut rng),
                img,
                "{sc} left the frame unchanged"
            );
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(OodScenario::Dark.to_string(), "dark");
        assert_eq!(OodScenario::PAPER.len(), 3);
        assert_eq!(OodScenario::ALL.len(), 5);
    }
}
