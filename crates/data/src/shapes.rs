//! Glyph classification: a small stand-in for MNIST/GTSRB-style tasks.
//!
//! The DATE 2019 predecessor evaluated on-off monitors on MNIST and GTSRB
//! with per-class pattern sets; this module provides an offline-friendly
//! equivalent: four rendered glyph classes (circle, square, triangle,
//! cross) with positional/scale jitter and noise, plus out-of-distribution
//! glyphs (star, inverted frames) for detection experiments.

use crate::dataset::Dataset;
use crate::image::Image;
use napmon_tensor::Prng;
use serde::{Deserialize, Serialize};

/// The in-distribution glyph classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Glyph {
    /// A ring.
    Circle,
    /// An axis-aligned square outline.
    Square,
    /// An upward triangle outline.
    Triangle,
    /// A plus-shaped cross.
    Cross,
}

impl Glyph {
    /// All in-distribution classes, index order = class label.
    pub const ALL: [Glyph; 4] = [Glyph::Circle, Glyph::Square, Glyph::Triangle, Glyph::Cross];

    /// Class label of this glyph.
    pub fn label(self) -> usize {
        Glyph::ALL
            .iter()
            .position(|&g| g == self)
            .expect("glyph in ALL")
    }
}

/// Shape-dataset configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShapesConfig {
    /// Image side length (square images).
    pub side: usize,
    /// Additive pixel noise sigma.
    pub noise: f64,
}

impl Default for ShapesConfig {
    fn default() -> Self {
        Self {
            side: 12,
            noise: 0.04,
        }
    }
}

impl ShapesConfig {
    /// Flattened input dimension.
    pub fn input_dim(&self) -> usize {
        self.side * self.side
    }

    fn blank(&self) -> Image {
        Image::filled(self.side, self.side, 0.05)
    }

    /// Renders one glyph with jittered center and radius.
    pub fn render(&self, glyph: Glyph, rng: &mut Prng) -> Image {
        let s = self.side as f64;
        let cx = s / 2.0 + rng.uniform(-1.2, 1.2);
        let cy = s / 2.0 + rng.uniform(-1.2, 1.2);
        let r = s * rng.uniform(0.26, 0.36);
        let mut img = self.blank();
        for row in 0..self.side {
            for col in 0..self.side {
                let x = col as f64 + 0.5 - cx;
                let y = row as f64 + 0.5 - cy;
                let on = match glyph {
                    Glyph::Circle => {
                        let d = (x * x + y * y).sqrt();
                        (d - r).abs() < 0.9
                    }
                    Glyph::Square => {
                        let m = x.abs().max(y.abs());
                        (m - r).abs() < 0.9
                    }
                    Glyph::Triangle => {
                        // Outline of an upward triangle inscribed in radius r.
                        let base = y > r * 0.5 - 0.9 && y < r * 0.5 + 0.9 && x.abs() < r;
                        let left = (x * 1.5 + y - r * 0.5).abs() < 0.9 && y > -r && y < r * 0.5;
                        let right = (-x * 1.5 + y - r * 0.5).abs() < 0.9 && y > -r && y < r * 0.5;
                        base || left || right
                    }
                    Glyph::Cross => x.abs() < 0.9 && y.abs() < r || y.abs() < 0.9 && x.abs() < r,
                };
                if on {
                    img.set(row, col, 0.95);
                }
            }
        }
        // Sensor noise.
        for p in img.pixels_mut() {
            *p = (*p + rng.normal(0.0, self.noise)).clamp(0.0, 1.0);
        }
        img
    }

    /// Generates a balanced classification dataset with `per_class`
    /// samples per glyph.
    pub fn dataset(&self, per_class: usize, rng: &mut Prng) -> Dataset {
        let mut inputs = Vec::with_capacity(per_class * Glyph::ALL.len());
        let mut labels = Vec::with_capacity(per_class * Glyph::ALL.len());
        for _ in 0..per_class {
            for glyph in Glyph::ALL {
                inputs.push(self.render(glyph, rng).into_pixels());
                labels.push(glyph.label());
            }
        }
        let mut d = Dataset::classification(inputs, labels, Glyph::ALL.len());
        d.shuffle(rng);
        d
    }

    /// Renders an out-of-distribution star glyph (five spokes).
    pub fn render_ood_star(&self, rng: &mut Prng) -> Image {
        let s = self.side as f64;
        let cx = s / 2.0 + rng.uniform(-1.0, 1.0);
        let cy = s / 2.0 + rng.uniform(-1.0, 1.0);
        let r = s * rng.uniform(0.3, 0.4);
        let mut img = self.blank();
        for k in 0..5 {
            let angle = k as f64 * std::f64::consts::TAU / 5.0 - std::f64::consts::FRAC_PI_2;
            let (dy, dx) = angle.sin_cos();
            let steps = (r * 2.0) as usize;
            for i in 0..steps {
                let t = i as f64 / steps as f64 * r;
                let row = (cy + dy * t) as isize;
                let col = (cx + dx * t) as isize;
                if row >= 0 && col >= 0 && (row as usize) < self.side && (col as usize) < self.side
                {
                    img.set(row as usize, col as usize, 0.95);
                }
            }
        }
        for p in img.pixels_mut() {
            *p = (*p + rng.normal(0.0, self.noise)).clamp(0.0, 1.0);
        }
        img
    }

    /// Renders an inverted-contrast in-distribution glyph (OOD: the glyph
    /// geometry is familiar, the photometry is not).
    pub fn render_ood_inverted(&self, rng: &mut Prng) -> Image {
        let glyph = Glyph::ALL[rng.index(4)];
        let mut img = self.render(glyph, rng);
        for p in img.pixels_mut() {
            *p = 1.0 - *p;
        }
        img
    }

    /// A batch of OOD inputs mixing stars and inverted glyphs.
    pub fn ood_inputs(&self, n: usize, rng: &mut Prng) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    self.render_ood_star(rng).into_pixels()
                } else {
                    self.render_ood_inverted(rng).into_pixels()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_balanced_and_shuffled() {
        let cfg = ShapesConfig::default();
        let d = cfg.dataset(25, &mut Prng::seed(4));
        assert_eq!(d.len(), 100);
        let labels = d.labels.as_ref().unwrap();
        for c in 0..4 {
            assert_eq!(labels.iter().filter(|&&l| l == c).count(), 25);
        }
        // Shuffled: not grouped by class.
        assert!(labels.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn glyph_classes_are_visually_distinct() {
        let cfg = ShapesConfig {
            side: 12,
            noise: 0.0,
        };
        let mut rng = Prng::seed(8);
        let mut renders: Vec<Vec<f64>> = Vec::new();
        for glyph in Glyph::ALL {
            renders.push(cfg.render(glyph, &mut rng).into_pixels());
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                let diff: f64 = renders[i]
                    .iter()
                    .zip(&renders[j])
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(diff > 3.0, "classes {i} and {j} look identical");
            }
        }
    }

    #[test]
    fn renders_are_deterministic() {
        let cfg = ShapesConfig::default();
        let a = cfg.render(Glyph::Circle, &mut Prng::seed(5));
        let b = cfg.render(Glyph::Circle, &mut Prng::seed(5));
        assert_eq!(a, b);
    }

    #[test]
    fn ood_star_differs_from_all_classes() {
        let cfg = ShapesConfig {
            side: 12,
            noise: 0.0,
        };
        let star = cfg.render_ood_star(&mut Prng::seed(6)).into_pixels();
        for glyph in Glyph::ALL {
            let g = cfg.render(glyph, &mut Prng::seed(6)).into_pixels();
            let diff: f64 = star.iter().zip(&g).map(|(a, b)| (a - b).abs()).sum();
            assert!(diff > 2.0, "star too close to {glyph:?}");
        }
    }

    #[test]
    fn inverted_glyph_flips_photometry() {
        let cfg = ShapesConfig {
            side: 12,
            noise: 0.0,
        };
        let inv = cfg.render_ood_inverted(&mut Prng::seed(7));
        // Background was dark (0.05); inverted background is bright.
        assert!(inv.mean() > 0.5);
    }

    #[test]
    fn ood_batch_has_requested_size() {
        let cfg = ShapesConfig::default();
        let batch = cfg.ood_inputs(10, &mut Prng::seed(9));
        assert_eq!(batch.len(), 10);
        assert!(batch.iter().all(|x| x.len() == cfg.input_dim()));
    }

    #[test]
    fn labels_match_all_ordering() {
        assert_eq!(Glyph::Circle.label(), 0);
        assert_eq!(Glyph::Cross.label(), 3);
    }
}
