//! Bit-sliced (block-transposed) pattern sets: the batch-query kernel.
//!
//! The packed query path ([`BitWord::hamming`]) answers one Hamming-ball
//! probe by XOR+popcount against every stored word — one word at a time,
//! one popcount per limb, with per-word loop and iterator overhead. At
//! operation scale the monitor answers *batches* of probes against a set
//! that changes rarely, which is exactly the shape a **bit-sliced**
//! (structure-of-arrays) layout serves: store bit `j` of 64 patterns in
//! one `u64`, and a whole 64-pattern block answers one query bit with a
//! single XOR — the classic bit-slicing trick from hardware-oriented
//! cryptography, applied to Hamming-ball membership.
//!
//! ## Layout
//!
//! Patterns are grouped into **superblocks** of `LANES × 64 = 256`
//! patterns. Within superblock `s`, the limb for query bit `j` and lane
//! `k` lives at `slices[(s · bits + j) · LANES + k]`; bit `p % 64` of that
//! limb is bit `j` of pattern `p = s·256 + k·64 + (p % 64)`. The four
//! lane limbs of one bit are contiguous, so the inner loop is four
//! independent 64-bit operations over adjacent memory — a shape the
//! compiler autovectorizes on stable Rust (and which the `wide` feature
//! maps onto explicitly unrolled four-lane ops; see [`lanes`](self)).
//!
//! ## Kernels
//!
//! - `tau = 0`: an accumulator of still-matching lanes,
//!   `acc &= !(slice ^ broadcast(q_j))`, with early exit when every lane
//!   has mismatched.
//! - `tau > 0`: per-lane mismatch *counter planes* — `K = ⌈log₂(tau+1)⌉`
//!   bit planes holding each pattern's running mismatch count, updated by
//!   a ripple-carry add of the mismatch mask. A carry out of the top
//!   plane marks the pattern dead (count > tau for sure); the final
//!   bitwise compare keeps patterns whose count is `≤ tau`.
//!
//! [`BitSliceSet::contains_within_batch`] iterates **blocks outer,
//! queries inner**, so one superblock (e.g. ~1.5 KiB at 48 bits) is
//! resident in L1 while every query in the batch probes it — the memory
//! access pattern behind the batch-throughput gain in `BENCH_query`.
//!
//! Every kernel is differential-pinned bit-identical to the naive
//! per-word [`BitWord::hamming`] scan by the tests below and by the
//! property suites in `napmon-core` / `napmon-store`.

use crate::word::BitWord;

/// Lanes per superblock: the kernels operate on `[u64; LANES]` at a time.
pub const LANES: usize = 4;

/// Patterns per superblock (`LANES` sub-blocks of 64).
pub const SUPERBLOCK_PATTERNS: usize = LANES * 64;

/// Four-lane limb operations. The default build writes them as indexed
/// loops (which LLVM autovectorizes); the `wide` feature selects
/// explicitly unrolled four-lane expressions so the vector shape does not
/// depend on the autovectorizer. Both forms are semantically identical
/// and CI runs the differential suites under each.
mod lanes {
    use super::LANES;

    pub type V = [u64; LANES];

    pub const ZERO: V = [0; LANES];
    pub const ONES: V = [!0u64; LANES];

    #[cfg(not(feature = "wide"))]
    mod ops {
        use super::{LANES, V};

        #[inline(always)]
        pub fn splat(x: u64) -> V {
            [x; LANES]
        }

        #[inline(always)]
        pub fn xor(a: V, b: V) -> V {
            let mut out = [0u64; LANES];
            for k in 0..LANES {
                out[k] = a[k] ^ b[k];
            }
            out
        }

        #[inline(always)]
        pub fn and(a: V, b: V) -> V {
            let mut out = [0u64; LANES];
            for k in 0..LANES {
                out[k] = a[k] & b[k];
            }
            out
        }

        #[inline(always)]
        pub fn or(a: V, b: V) -> V {
            let mut out = [0u64; LANES];
            for k in 0..LANES {
                out[k] = a[k] | b[k];
            }
            out
        }

        #[inline(always)]
        pub fn andnot(a: V, b: V) -> V {
            // a & !b
            let mut out = [0u64; LANES];
            for k in 0..LANES {
                out[k] = a[k] & !b[k];
            }
            out
        }

        #[inline(always)]
        pub fn is_zero(a: V) -> bool {
            a.iter().fold(0u64, |acc, &lane| acc | lane) == 0
        }
    }

    #[cfg(feature = "wide")]
    mod ops {
        use super::V;

        #[inline(always)]
        pub fn splat(x: u64) -> V {
            [x, x, x, x]
        }

        #[inline(always)]
        pub fn xor(a: V, b: V) -> V {
            [a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]]
        }

        #[inline(always)]
        pub fn and(a: V, b: V) -> V {
            [a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]]
        }

        #[inline(always)]
        pub fn or(a: V, b: V) -> V {
            [a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3]]
        }

        #[inline(always)]
        pub fn andnot(a: V, b: V) -> V {
            [a[0] & !b[0], a[1] & !b[1], a[2] & !b[2], a[3] & !b[3]]
        }

        #[inline(always)]
        pub fn is_zero(a: V) -> bool {
            (a[0] | a[1] | a[2] | a[3]) == 0
        }
    }

    pub use ops::{and, andnot, is_zero, or, splat, xor};
}

use lanes::V;

/// A bit-sliced set of fixed-width patterns: the structure-of-arrays
/// counterpart of a `Vec<BitWord>`, optimized for answering Hamming-ball
/// membership over many queries at once.
///
/// Insert-only (matching the monitors' append-only pattern sets); the
/// width is adopted from the first inserted word when the set was created
/// with [`BitSliceSet::new`].
///
/// ```
/// use napmon_bdd::{BitSliceSet, BitWord};
///
/// let mut set = BitSliceSet::new();
/// set.insert(&BitWord::from_bools(&[true, false, true]));
/// let near = BitWord::from_bools(&[true, true, true]);
/// assert!(!set.contains_within(&near, 0));
/// assert!(set.contains_within(&near, 1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSliceSet {
    /// Pattern width in bits; `0` until the first insert fixes it.
    bits: usize,
    /// Number of inserted patterns.
    len: usize,
    /// `superblocks() · bits · LANES` limbs in the layout documented on
    /// the module.
    slices: Vec<u64>,
}

impl BitSliceSet {
    /// An empty set whose width is adopted from the first inserted word.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set over `bits`-bit patterns.
    pub fn with_bits(bits: usize) -> Self {
        Self {
            bits,
            len: 0,
            slices: Vec::new(),
        }
    }

    /// Pattern width in bits (`0` for a fresh width-unset set).
    #[inline]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of inserted patterns.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set holds no patterns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of superblocks currently allocated.
    #[inline]
    pub fn superblocks(&self) -> usize {
        self.len.div_ceil(SUPERBLOCK_PATTERNS)
    }

    /// Limbs per superblock.
    #[inline]
    fn superblock_limbs(&self) -> usize {
        self.bits * LANES
    }

    /// Inserts one pattern. Does **not** deduplicate — callers that need
    /// set semantics keep their own exact-membership index (a hash set or
    /// the store's Bloom + binary search) and only insert fresh words.
    ///
    /// # Panics
    ///
    /// Panics if the word's width disagrees with the set's (once fixed).
    pub fn insert(&mut self, word: &BitWord) {
        if self.len == 0 && self.bits == 0 {
            self.bits = word.len();
        }
        assert_eq!(
            word.len(),
            self.bits,
            "BitSliceSet::insert: word width differs from set width"
        );
        self.insert_limbs(word.limbs());
    }

    /// Inserts one pattern given as packed limbs (`bits.div_ceil(64)` of
    /// them, trailing bits zero) — the zero-copy path for sources that
    /// keep raw limb blocks (the persistent store's segments).
    ///
    /// # Panics
    ///
    /// Panics if the limb count disagrees with the set width, or if the
    /// width was never fixed ([`BitSliceSet::with_bits`]).
    pub fn insert_limbs(&mut self, limbs: &[u64]) {
        assert!(
            self.bits > 0,
            "BitSliceSet::insert_limbs: width not set (use with_bits)"
        );
        assert_eq!(
            limbs.len(),
            self.bits.div_ceil(64),
            "BitSliceSet::insert_limbs: limb count differs from set width"
        );
        let p = self.len;
        if p.is_multiple_of(SUPERBLOCK_PATTERNS) {
            let grown = self.slices.len() + self.superblock_limbs();
            self.slices.resize(grown, 0);
        }
        let s = p / SUPERBLOCK_PATTERNS;
        let k = (p % SUPERBLOCK_PATTERNS) / 64;
        let lane_bit = 1u64 << (p % 64);
        let base = s * self.superblock_limbs() + k;
        for (c, &limb) in limbs.iter().enumerate() {
            // Visit only the set bits: trailing-limb padding is zero, so
            // every visited position is a real bit index below `bits`.
            let mut l = limb;
            while l != 0 {
                let j = c * 64 + l.trailing_zeros() as usize;
                self.slices[base + j * LANES] |= lane_bit;
                l &= l - 1;
            }
        }
        self.len = p + 1;
    }

    /// Lane mask of the patterns that actually exist in superblock `s`
    /// (the last superblock is usually partial).
    #[inline]
    fn valid_mask(&self, s: usize) -> V {
        let start = s * SUPERBLOCK_PATTERNS;
        let mut mask = lanes::ZERO;
        for (k, m) in mask.iter_mut().enumerate() {
            let have = self.len.saturating_sub(start + k * 64).min(64);
            *m = if have == 64 {
                !0u64
            } else {
                (1u64 << have) - 1
            };
        }
        mask
    }

    /// Broadcast mask of query bit `j`: all-ones when set, all-zero when
    /// clear.
    #[inline]
    fn query_mask(query: &[u64], j: usize) -> u64 {
        0u64.wrapping_sub((query[j / 64] >> (j % 64)) & 1)
    }

    /// Exact-membership kernel over superblock `s`: the lane mask of
    /// patterns identical to `query`.
    #[inline]
    fn probe_exact(&self, s: usize, query: &[u64]) -> V {
        let base = s * self.superblock_limbs();
        let mut acc = lanes::ONES;
        for j in 0..self.bits {
            let qm = lanes::splat(Self::query_mask(query, j));
            let slice: V = self.slices[base + j * LANES..base + j * LANES + LANES]
                .try_into()
                .expect("LANES limbs");
            acc = lanes::andnot(acc, lanes::xor(slice, qm));
            if lanes::is_zero(acc) {
                return lanes::ZERO;
            }
        }
        acc
    }

    /// Hamming-ball kernel over superblock `s`: the lane mask of patterns
    /// within distance `tau` (`tau ≥ 1`) of `query`. `planes` is caller
    /// scratch of [`plane_count`](Self::plane_count)`(tau)` entries,
    /// reset here.
    fn probe_within(&self, s: usize, query: &[u64], tau: usize, planes: &mut [V]) -> V {
        let base = s * self.superblock_limbs();
        let valid = self.valid_mask(s);
        planes.fill(lanes::ZERO);
        let mut dead = lanes::ZERO;
        for j in 0..self.bits {
            let qm = lanes::splat(Self::query_mask(query, j));
            let slice: V = self.slices[base + j * LANES..base + j * LANES + LANES]
                .try_into()
                .expect("LANES limbs");
            // Ripple-carry add of the mismatch mask into the counter
            // planes; a carry out of the top plane means the count
            // exceeded what K bits can hold, i.e. is certainly > tau.
            let mut carry = lanes::xor(slice, qm);
            for plane in planes.iter_mut() {
                let spill = lanes::and(*plane, carry);
                *plane = lanes::xor(*plane, carry);
                carry = spill;
                if lanes::is_zero(carry) {
                    break;
                }
            }
            dead = lanes::or(dead, carry);
            // Every live pattern mismatching everywhere still costs the
            // full bit sweep; bail out once every *valid* lane is dead.
            if j % 16 == 15 && lanes::is_zero(lanes::andnot(valid, dead)) {
                return lanes::ZERO;
            }
        }
        // Keep lanes whose K-bit count is <= tau: scan planes high to low
        // tracking "strictly greater so far" / "equal prefix so far".
        let mut gt = lanes::ZERO;
        let mut eq = lanes::ONES;
        for (plane, &counter) in planes.iter().enumerate().rev() {
            let tau_bit = if (tau >> plane) & 1 == 1 {
                lanes::ONES
            } else {
                lanes::ZERO
            };
            gt = lanes::or(gt, lanes::andnot(lanes::and(eq, counter), tau_bit));
            eq = lanes::andnot(eq, lanes::xor(counter, tau_bit));
        }
        lanes::andnot(lanes::andnot(valid, gt), dead)
    }

    /// Counter planes needed to decide `count ≤ tau` (bits of `tau`).
    #[inline]
    fn plane_count(tau: usize) -> usize {
        (usize::BITS - tau.leading_zeros()) as usize
    }

    /// Whether some stored pattern is within Hamming distance `tau` of
    /// `query` — the single-probe entry point (a batch of one).
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the set width (on a non-empty
    /// set).
    pub fn contains_within(&self, query: &BitWord, tau: usize) -> bool {
        self.contains_within_range(query, tau, 0, self.superblocks())
    }

    /// [`BitSliceSet::contains_within`] restricted to superblocks
    /// `sb_start..sb_end` — the partition-pruned entry point used by the
    /// store's segment index.
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the set width (on a non-empty
    /// set) or the superblock range is out of bounds.
    pub fn contains_within_range(
        &self,
        query: &BitWord,
        tau: usize,
        sb_start: usize,
        sb_end: usize,
    ) -> bool {
        if self.len == 0 || sb_start >= sb_end {
            return false;
        }
        assert_eq!(
            query.len(),
            self.bits,
            "BitSliceSet: query width differs from set width"
        );
        assert!(
            sb_end <= self.superblocks(),
            "superblock range out of bounds"
        );
        if tau >= self.bits {
            // Every pattern is within distance `bits`; the range holds at
            // least one valid pattern (ranges are superblock-aligned and
            // only the final superblock is partial, never empty).
            return true;
        }
        let q = query.limbs();
        if tau == 0 {
            return (sb_start..sb_end)
                .any(|s| !lanes::is_zero(lanes::and(self.probe_exact(s, q), self.valid_mask(s))));
        }
        let mut planes = vec![lanes::ZERO; Self::plane_count(tau)];
        (sb_start..sb_end).any(|s| !lanes::is_zero(self.probe_within(s, q, tau, &mut planes)))
    }

    /// Answers a whole batch of Hamming-ball probes, writing
    /// `out[i] = contains_within(queries[i], tau)`.
    ///
    /// Iterates **superblocks outer, still-pending queries inner**, so
    /// each slice block is loaded once per batch rather than once per
    /// query — the cache shape that makes batched membership several
    /// times faster than a per-query loop (see `BENCH_query`).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < queries.len()`, or if any query's width
    /// differs from the set width (on a non-empty set).
    pub fn contains_within_batch(&self, queries: &[BitWord], tau: usize, out: &mut [bool]) {
        assert!(
            out.len() >= queries.len(),
            "BitSliceSet::contains_within_batch: output slice too short"
        );
        out[..queries.len()].fill(false);
        if self.len == 0 || queries.is_empty() {
            return;
        }
        for query in queries {
            assert_eq!(
                query.len(),
                self.bits,
                "BitSliceSet: query width differs from set width"
            );
        }
        if tau >= self.bits {
            out[..queries.len()].fill(true);
            return;
        }
        let mut pending: Vec<usize> = (0..queries.len()).collect();
        let mut planes = vec![lanes::ZERO; Self::plane_count(tau.max(1))];
        for s in 0..self.superblocks() {
            let valid = self.valid_mask(s);
            let mut i = 0;
            while i < pending.len() {
                let qi = pending[i];
                let q = queries[qi].limbs();
                let hit = if tau == 0 {
                    !lanes::is_zero(lanes::and(self.probe_exact(s, q), valid))
                } else {
                    !lanes::is_zero(self.probe_within(s, q, tau, &mut planes))
                };
                if hit {
                    out[qi] = true;
                    pending.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if pending.is_empty() {
                return;
            }
        }
    }
}

impl Extend<BitWord> for BitSliceSet {
    fn extend<I: IntoIterator<Item = BitWord>>(&mut self, iter: I) {
        for word in iter {
            self.insert(&word);
        }
    }
}

impl<'a> Extend<&'a BitWord> for BitSliceSet {
    fn extend<I: IntoIterator<Item = &'a BitWord>>(&mut self, iter: I) {
        for word in iter {
            self.insert(word);
        }
    }
}

impl FromIterator<BitWord> for BitSliceSet {
    fn from_iter<I: IntoIterator<Item = BitWord>>(iter: I) -> Self {
        let mut set = Self::new();
        set.extend(iter);
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The naive oracle every kernel is pinned against.
    fn oracle(words: &[BitWord], query: &BitWord, tau: usize) -> bool {
        words.iter().any(|w| w.hamming(query) as usize <= tau)
    }

    fn pseudo_words(bits: usize, count: usize, seed: u64) -> Vec<BitWord> {
        let mut state = seed | 1;
        let mut step = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        (0..count)
            .map(|_| BitWord::from_fn(bits, |_| step() & 1 == 1))
            .collect()
    }

    #[test]
    fn empty_set_matches_nothing() {
        let set = BitSliceSet::new();
        assert!(set.is_empty());
        assert!(!set.contains_within(&BitWord::from_bools(&[true]), 5));
        let queries = vec![BitWord::from_bools(&[true, false])];
        let mut out = vec![true];
        set.contains_within_batch(&queries, 1, &mut out);
        assert!(!out[0]);
    }

    #[test]
    fn single_and_batch_agree_with_oracle_across_limb_boundaries() {
        for bits in [1usize, 3, 63, 64, 65, 127, 128, 129, 200, 300] {
            for count in [1usize, 5, 63, 64, 65, 255, 256, 257, 600] {
                let words = pseudo_words(bits, count, (bits * 1000 + count) as u64);
                let mut set = BitSliceSet::with_bits(bits);
                for w in &words {
                    set.insert(w);
                }
                assert_eq!(set.len(), count);
                let queries = pseudo_words(bits, 16, (bits + count) as u64 ^ 0xdead);
                // Mix in near-misses of stored words so hits at every tau
                // are exercised, not just random far misses.
                let mut probes = queries;
                let mut flipped = words[count / 2].clone();
                flipped.set(bits - 1, !flipped.get(bits - 1));
                probes.push(flipped);
                probes.push(words[0].clone());
                for tau in 0..4usize {
                    let mut out = vec![false; probes.len()];
                    set.contains_within_batch(&probes, tau, &mut out);
                    for (i, probe) in probes.iter().enumerate() {
                        let expect = oracle(&words, probe, tau);
                        assert_eq!(
                            set.contains_within(probe, tau),
                            expect,
                            "single bits={bits} count={count} tau={tau} probe={i}"
                        );
                        assert_eq!(
                            out[i], expect,
                            "batch bits={bits} count={count} tau={tau} probe={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tau_at_or_above_width_accepts_everything_nonempty() {
        let mut set = BitSliceSet::with_bits(5);
        set.insert(&BitWord::from_fn(5, |i| i == 0));
        let q = BitWord::from_fn(5, |i| i != 0);
        assert!(set.contains_within(&q, 5));
        assert!(set.contains_within(&q, 100));
        // Distance between 10000 and 01111 is exactly 5: tau=4 misses.
        assert!(!set.contains_within(&q, 4));
    }

    #[test]
    fn range_probe_sees_only_its_superblocks() {
        let bits = 10;
        // Superblock 0 holds only the all-zero word (x256), superblock 1
        // only the all-one word (x256).
        let mut set = BitSliceSet::with_bits(bits);
        for _ in 0..SUPERBLOCK_PATTERNS {
            set.insert(&BitWord::zeros(bits));
        }
        for _ in 0..SUPERBLOCK_PATTERNS {
            set.insert(&BitWord::from_fn(bits, |_| true));
        }
        let ones = BitWord::from_fn(bits, |_| true);
        assert!(!set.contains_within_range(&ones, 1, 0, 1));
        assert!(set.contains_within_range(&ones, 1, 1, 2));
        assert!(set.contains_within_range(&ones, 1, 0, 2));
        let zeros = BitWord::zeros(bits);
        assert!(set.contains_within_range(&zeros, 0, 0, 1));
        assert!(!set.contains_within_range(&zeros, 0, 1, 2));
    }

    #[test]
    fn insert_adopts_width_from_first_word() {
        let mut set = BitSliceSet::new();
        assert_eq!(set.bits(), 0);
        set.insert(&BitWord::from_bools(&[true, false, true]));
        assert_eq!(set.bits(), 3);
        assert!(set.contains_within(&BitWord::from_bools(&[true, false, true]), 0));
    }

    #[test]
    #[should_panic(expected = "word width differs")]
    fn width_mismatch_on_insert_panics() {
        let mut set = BitSliceSet::with_bits(4);
        set.insert(&BitWord::from_bools(&[true, false]));
    }

    #[test]
    #[should_panic(expected = "query width differs")]
    fn width_mismatch_on_query_panics() {
        let mut set = BitSliceSet::with_bits(4);
        set.insert(&BitWord::zeros(4));
        set.contains_within(&BitWord::zeros(5), 1);
    }

    proptest! {
        #[test]
        fn kernels_match_naive_hamming_scan(
            bits in 1usize..140,
            count in 1usize..400,
            tau in 0usize..5,
            seed in 0u64..u64::MAX,
        ) {
            let words = pseudo_words(bits, count, seed | 1);
            let set: BitSliceSet = words.iter().collect::<Vec<_>>().into_iter().cloned().collect();
            let probes = pseudo_words(bits, 8, seed.rotate_left(17) | 1);
            let mut out = vec![false; probes.len()];
            set.contains_within_batch(&probes, tau, &mut out);
            for (i, probe) in probes.iter().enumerate() {
                let expect = oracle(&words, probe, tau);
                prop_assert_eq!(set.contains_within(probe, tau), expect);
                prop_assert_eq!(out[i], expect);
            }
        }
    }
}
