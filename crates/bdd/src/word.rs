//! Packed Boolean words and cubes.
//!
//! The monitors' query hot path abstracts one feature vector into one bit
//! per monitored neuron and asks the pattern store for membership. The seed
//! implementation materialized a `Vec<bool>` per query — one heap
//! allocation plus byte-per-bit hashing on every monitored inference.
//! [`BitWord`] packs the word into `u64` limbs with inline storage for up
//! to [`INLINE_BITS`] bits, so on typical monitor widths (the paper
//! monitors tens of neurons) the whole membership path runs without
//! touching the heap, Hamming distances are popcounts, and hashing touches
//! one limb per 64 neurons instead of one byte per neuron.
//!
//! [`BitCube`] is the packed counterpart of `Vec<Option<bool>>` (a word
//! with don't-care positions), used by the robust construction's
//! `word2set` insertions.

use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Number of `u64` limbs stored inline (no heap) in a [`BitWord`].
pub const INLINE_WORDS: usize = 4;

/// Number of bits a [`BitWord`] can hold without heap allocation.
pub const INLINE_BITS: usize = INLINE_WORDS * 64;

#[derive(Clone)]
enum Limbs {
    Inline([u64; INLINE_WORDS]),
    Heap(Box<[u64]>),
}

/// A fixed-length packed bit vector — the query-pipeline replacement for
/// `Vec<bool>`.
///
/// Words up to [`INLINE_BITS`] bits (256 monitored neurons at 1 bit each,
/// 128 at 2 bits, …) live entirely on the stack; longer words spill to one
/// heap block. Equality, hashing, and Hamming distance operate on whole
/// limbs.
///
/// ```
/// use napmon_bdd::BitWord;
///
/// let w = BitWord::from_bools(&[true, false, true]);
/// assert_eq!(w.len(), 3);
/// assert!(w.get(0) && !w.get(1) && w.get(2));
/// let v = BitWord::from_bools(&[true, true, true]);
/// assert_eq!(w.hamming(&v), 1);
/// ```
#[derive(Clone)]
pub struct BitWord {
    len: usize,
    limbs: Limbs,
}

#[inline]
const fn limbs_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

impl BitWord {
    /// An all-zero word of `len` bits.
    pub fn zeros(len: usize) -> Self {
        let limbs = if len <= INLINE_BITS {
            Limbs::Inline([0u64; INLINE_WORDS])
        } else {
            Limbs::Heap(vec![0u64; limbs_for(len)].into_boxed_slice())
        };
        Self { len, limbs }
    }

    /// Packs a `&[bool]` slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut w = Self::zeros(bits.len());
        w.fill_with(bits.len(), |i| bits[i]);
        w
    }

    /// Builds a word of `len` bits by evaluating `f(i)` for every bit.
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> bool) -> Self {
        let mut w = Self::zeros(len);
        w.fill_with(len, f);
        w
    }

    /// Resizes to `len` bits and sets every bit from `f(i)` — the packing
    /// primitive of the query hot path. Bits are accumulated limb-by-limb
    /// in a register and stored 64 at a time, an order of magnitude cheaper
    /// than per-bit [`BitWord::set`] calls.
    pub fn fill_with(&mut self, len: usize, mut f: impl FnMut(usize) -> bool) {
        self.reset(len);
        let mut start = 0usize;
        for limb in self.limbs_mut() {
            let end = (start + 64).min(len);
            let mut chunk = 0u64;
            for i in start..end {
                chunk |= u64::from(f(i)) << (i - start);
            }
            *limb = chunk;
            start = end;
        }
    }

    /// Like [`BitWord::fill_with`] but driven by an iterator, so zipped
    /// slice sources compile to bounds-check-free loops. Takes exactly
    /// `len` items from `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` yields fewer than `len` items.
    pub fn fill_from_iter(&mut self, len: usize, mut bits: impl Iterator<Item = bool>) {
        self.reset(len);
        let mut start = 0usize;
        for limb in self.limbs_mut() {
            let end = (start + 64).min(len);
            let mut chunk = 0u64;
            for off in 0..(end - start) {
                let bit = bits.next().expect("fill_from_iter: iterator too short");
                chunk |= u64::from(bit) << off;
            }
            *limb = chunk;
            start = end;
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the word has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the word fits in inline (stack) storage.
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.limbs, Limbs::Inline(_))
    }

    /// Borrows the packed limbs (`len.div_ceil(64)` of them).
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        match &self.limbs {
            Limbs::Inline(a) => &a[..limbs_for(self.len)],
            Limbs::Heap(b) => &b[..limbs_for(self.len)],
        }
    }

    #[inline]
    fn limbs_mut(&mut self) -> &mut [u64] {
        let n = limbs_for(self.len);
        match &mut self.limbs {
            Limbs::Inline(a) => &mut a[..n],
            Limbs::Heap(b) => &mut b[..n],
        }
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit {i} out of range for {}-bit word",
            self.len
        );
        (self.limbs()[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit {i} out of range for {}-bit word",
            self.len
        );
        let limb = &mut self.limbs_mut()[i / 64];
        if value {
            *limb |= 1u64 << (i % 64);
        } else {
            *limb &= !(1u64 << (i % 64));
        }
    }

    /// Zeroes every bit, keeping the length (scratch-buffer reuse).
    #[inline]
    pub fn clear(&mut self) {
        for limb in self.limbs_mut() {
            *limb = 0;
        }
    }

    /// Resets the word to `len` zero bits, reusing the heap block when the
    /// capacity already suffices — the scratch-buffer primitive of the
    /// batched query API.
    pub fn reset(&mut self, len: usize) {
        let needed = limbs_for(len);
        match &mut self.limbs {
            Limbs::Inline(a) if len <= INLINE_BITS => a.fill(0),
            Limbs::Heap(b) if b.len() >= needed => b.fill(0),
            _ => *self = Self::zeros(len),
        }
        self.len = len;
    }

    /// Number of one bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.limbs().iter().map(|l| l.count_ones()).sum()
    }

    /// Hamming distance to `other` (popcount of the XOR).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[inline]
    pub fn hamming(&self, other: &Self) -> u32 {
        assert_eq!(self.len, other.len, "hamming: word lengths differ");
        self.limbs()
            .iter()
            .zip(other.limbs())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Unpacks to a `Vec<bool>` (cold paths: warnings, serialization).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Iterates over the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl Default for BitWord {
    /// An empty (0-bit) word; [`BitWord::reset`] grows it on first use.
    fn default() -> Self {
        Self::zeros(0)
    }
}

impl PartialEq for BitWord {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.limbs() == other.limbs()
    }
}

impl Eq for BitWord {}

impl Hash for BitWord {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.len);
        for &limb in self.limbs() {
            state.write_u64(limb);
        }
    }
}

impl fmt::Debug for BitWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitWord(")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, ")")
    }
}

impl From<&[bool]> for BitWord {
    fn from(bits: &[bool]) -> Self {
        Self::from_bools(bits)
    }
}

impl FromIterator<bool> for BitWord {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        Self::from_bools(&bits)
    }
}

/// Serialized as an array of booleans — byte-compatible with the previous
/// `Vec<bool>` representation, so existing monitor snapshots keep loading.
impl Serialize for BitWord {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.to_bools().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for BitWord {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let bits: Vec<bool> = Deserialize::deserialize(deserializer)?;
        Ok(Self::from_bools(&bits))
    }
}

/// Read-only view of an assignment, so BDD walks accept packed words,
/// `bool` slices, and arrays interchangeably (and tests keep their literal
/// `&[true, false, …]` arguments).
pub trait AsBits {
    /// Number of bits.
    fn bit_len(&self) -> usize;
    /// Bit `i`.
    fn bit(&self, i: usize) -> bool;
}

impl AsBits for BitWord {
    #[inline]
    fn bit_len(&self) -> usize {
        self.len()
    }
    #[inline]
    fn bit(&self, i: usize) -> bool {
        self.get(i)
    }
}

impl AsBits for [bool] {
    #[inline]
    fn bit_len(&self) -> usize {
        self.len()
    }
    #[inline]
    fn bit(&self, i: usize) -> bool {
        self[i]
    }
}

impl AsBits for Vec<bool> {
    #[inline]
    fn bit_len(&self) -> usize {
        self.len()
    }
    #[inline]
    fn bit(&self, i: usize) -> bool {
        self[i]
    }
}

impl<const N: usize> AsBits for [bool; N] {
    #[inline]
    fn bit_len(&self) -> usize {
        N
    }
    #[inline]
    fn bit(&self, i: usize) -> bool {
        self[i]
    }
}

impl<T: AsBits + ?Sized> AsBits for &T {
    #[inline]
    fn bit_len(&self) -> usize {
        (**self).bit_len()
    }
    #[inline]
    fn bit(&self, i: usize) -> bool {
        (**self).bit(i)
    }
}

/// A packed cube: a word with don't-care positions — the replacement for
/// `Vec<Option<bool>>` in the robust construction.
///
/// Stored as two bitwords: `care` marks the determined positions, `value`
/// holds their values (don't-care positions keep `value = 0`).
#[derive(Clone, PartialEq, Eq)]
pub struct BitCube {
    care: BitWord,
    value: BitWord,
}

impl BitCube {
    /// A cube of `len` all-don't-care positions.
    pub fn free(len: usize) -> Self {
        Self {
            care: BitWord::zeros(len),
            value: BitWord::zeros(len),
        }
    }

    /// Packs a `&[Option<bool>]` slice.
    pub fn from_options(literals: &[Option<bool>]) -> Self {
        let mut cube = Self::free(literals.len());
        for (i, lit) in literals.iter().enumerate() {
            cube.set(i, *lit);
        }
        cube
    }

    /// Number of positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.care.len()
    }

    /// Whether the cube has zero positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.care.is_empty()
    }

    /// Literal at position `i` (`None` = don't care).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<bool> {
        if self.care.get(i) {
            Some(self.value.get(i))
        } else {
            None
        }
    }

    /// Sets the literal at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, literal: Option<bool>) {
        match literal {
            None => {
                self.care.set(i, false);
                self.value.set(i, false);
            }
            Some(b) => {
                self.care.set(i, true);
                self.value.set(i, b);
            }
        }
    }

    /// Number of don't-care positions.
    #[inline]
    pub fn free_count(&self) -> u32 {
        self.len() as u32 - self.care.count_ones()
    }

    /// Unpacks to the `Vec<Option<bool>>` representation (cold paths).
    pub fn to_options(&self) -> Vec<Option<bool>> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

impl fmt::Debug for BitCube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitCube(")?;
        for i in 0..self.len() {
            match self.get(i) {
                None => write!(f, "-")?,
                Some(true) => write!(f, "1")?,
                Some(false) => write!(f, "0")?,
            }
        }
        write!(f, ")")
    }
}

impl From<&[Option<bool>]> for BitCube {
    fn from(literals: &[Option<bool>]) -> Self {
        Self::from_options(literals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    #[test]
    fn zeros_and_set_get_round_trip() {
        for len in [
            0usize,
            1,
            63,
            64,
            65,
            200,
            INLINE_BITS,
            INLINE_BITS + 1,
            1000,
        ] {
            let mut w = BitWord::zeros(len);
            assert_eq!(w.len(), len);
            assert_eq!(w.is_inline(), len <= INLINE_BITS);
            assert_eq!(w.count_ones(), 0);
            if len > 0 {
                w.set(len - 1, true);
                assert!(w.get(len - 1));
                assert_eq!(w.count_ones(), 1);
                w.set(len - 1, false);
                assert_eq!(w.count_ones(), 0);
            }
        }
    }

    #[test]
    fn from_bools_matches_bit_by_bit() {
        let bits: Vec<bool> = (0..150).map(|i| i % 3 == 0).collect();
        let w = BitWord::from_bools(&bits);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(w.get(i), b, "bit {i}");
        }
        assert_eq!(w.to_bools(), bits);
    }

    #[test]
    fn equality_and_hash_agree_across_storage() {
        let bits: Vec<bool> = (0..80).map(|i| i % 7 == 0).collect();
        let a = BitWord::from_bools(&bits);
        let b: BitWord = bits.iter().copied().collect();
        assert_eq!(a, b);
        let hash = |w: &BitWord| {
            let mut h = DefaultHasher::new();
            w.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        let mut c = b.clone();
        c.set(41, !c.get(41));
        assert_ne!(a, c);
    }

    #[test]
    fn trailing_limb_bits_do_not_leak_into_eq() {
        // Same 3-bit word reached via different mutation histories.
        let mut a = BitWord::zeros(3);
        a.set(1, true);
        let b = BitWord::from_bools(&[false, true, false]);
        assert_eq!(a, b);
    }

    #[test]
    fn hamming_is_popcount_of_xor() {
        let a = BitWord::from_bools(&[true, false, true, true, false]);
        let b = BitWord::from_bools(&[true, true, true, false, false]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
        // Across the limb boundary.
        let long_a = BitWord::from_fn(130, |i| i % 2 == 0);
        let long_b = BitWord::from_fn(130, |i| i % 2 == 1);
        assert_eq!(long_a.hamming(&long_b), 130);
    }

    #[test]
    fn reset_reuses_capacity() {
        let mut w = BitWord::zeros(500);
        assert!(!w.is_inline());
        let heap_ptr = w.limbs().as_ptr();
        w.set(499, true);
        w.reset(300);
        assert_eq!(w.len(), 300);
        assert_eq!(w.count_ones(), 0);
        assert_eq!(
            w.limbs().as_ptr(),
            heap_ptr,
            "reset must reuse the heap block"
        );
        let mut small = BitWord::zeros(10);
        small.set(3, true);
        small.reset(8);
        assert_eq!(small.count_ones(), 0);
        assert!(small.is_inline());
    }

    #[test]
    fn serde_is_bool_array_compatible() {
        let w = BitWord::from_bools(&[true, false, true]);
        let json = serde_json::to_string(&w).unwrap();
        assert_eq!(json, "[true,false,true]");
        let back: BitWord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn cube_round_trips_options() {
        let lits = vec![Some(true), None, Some(false), None, Some(true)];
        let c = BitCube::from_options(&lits);
        assert_eq!(c.len(), 5);
        assert_eq!(c.free_count(), 2);
        assert_eq!(c.to_options(), lits);
        assert_eq!(format!("{c:?}"), "BitCube(1-0-1)");
    }

    #[test]
    fn cube_set_overwrites_all_transitions() {
        let mut c = BitCube::free(2);
        c.set(0, Some(true));
        assert_eq!(c.get(0), Some(true));
        c.set(0, Some(false));
        assert_eq!(c.get(0), Some(false));
        c.set(0, None);
        assert_eq!(c.get(0), None);
    }

    #[test]
    fn as_bits_covers_all_word_shapes() {
        fn total<W: AsBits + ?Sized>(w: &W) -> usize {
            (0..w.bit_len()).filter(|&i| w.bit(i)).count()
        }
        assert_eq!(total(&[true, false, true]), 2);
        assert_eq!(total(&vec![true, true]), 2);
        assert_eq!(total([true, false].as_slice()), 1);
        assert_eq!(total(&BitWord::from_bools(&[true, true, true])), 3);
    }
}
