//! Graphviz DOT export for debugging and documentation figures.

use crate::manager::{Bdd, NodeId};
use std::collections::HashSet;
use std::fmt::Write;

/// Renders the BDD rooted at `root` as a Graphviz `digraph`.
///
/// Solid edges are then-branches, dashed edges are else-branches; the
/// terminals render as boxes. Useful for inspecting small pattern monitors.
///
/// ```
/// use napmon_bdd::{Bdd, to_dot};
/// let mut bdd = Bdd::new(2);
/// let x0 = bdd.var(0);
/// let dot = to_dot(&bdd, x0);
/// assert!(dot.contains("digraph bdd"));
/// assert!(dot.contains("x0"));
/// ```
pub fn to_dot(bdd: &Bdd, root: NodeId) -> String {
    let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
    let _ = writeln!(out, "  f [shape=box,label=\"0\"];");
    let _ = writeln!(out, "  t [shape=box,label=\"1\"];");
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if bdd.is_terminal(n) || !seen.insert(n) {
            continue;
        }
        let (var, lo, hi) = bdd.node_parts(n);
        let _ = writeln!(out, "  n{:?} [label=\"x{}\"];", id_key(n), var);
        let _ = writeln!(
            out,
            "  n{:?} -> {} [style=dashed];",
            id_key(n),
            target(bdd, lo)
        );
        let _ = writeln!(out, "  n{:?} -> {};", id_key(n), target(bdd, hi));
        stack.push(lo);
        stack.push(hi);
    }
    if bdd.is_terminal(root) {
        let _ = writeln!(out, "  root -> {};", target(bdd, root));
    }
    out.push_str("}\n");
    out
}

fn id_key(n: NodeId) -> u64 {
    // NodeId is opaque; derive a stable key from its debug formatting.
    let s = format!("{n:?}");
    s.bytes()
        .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64))
}

fn target(bdd: &Bdd, n: NodeId) -> String {
    if n == Bdd::FALSE {
        "f".to_string()
    } else if n == Bdd::TRUE {
        "t".to_string()
    } else {
        let _ = bdd;
        format!("n{:?}", id_key(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_terminal_mentions_box() {
        let bdd = Bdd::new(1);
        let dot = to_dot(&bdd, Bdd::TRUE);
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("root -> t"));
    }

    #[test]
    fn dot_of_small_function_lists_all_levels() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(2);
        let f = bdd.and(a, b);
        let dot = to_dot(&bdd, f);
        assert!(dot.contains("x0"));
        assert!(dot.contains("x2"));
        assert!(dot.contains("style=dashed"));
    }
}
