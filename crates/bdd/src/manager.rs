//! The BDD manager: arena, unique table, and operations.

use crate::fxhash::FxHashMap;
use crate::word::{AsBits, BitCube};
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Upper bound on the capacity pre-reserved for the unique table and op
/// caches.
///
/// Pattern monitors insert thousands of nodes during construction; starting
/// the tables at a realistic size avoids the rehash cascade that dominated
/// profile traces of the seed implementation. The actual reservation scales
/// with the variable count (see [`initial_capacity`]) so that per-class /
/// multi-layer deployments holding many small managers don't pay ~100 KB of
/// idle table each.
const MAX_INITIAL_TABLE_CAPACITY: usize = 1 << 12;

/// Initial table capacity for a manager over `num_vars` variables: roughly
/// one insertion wave of cube nodes, clamped to a sane range.
fn initial_capacity(num_vars: usize) -> usize {
    (num_vars * 16)
        .next_power_of_two()
        .clamp(16, MAX_INITIAL_TABLE_CAPACITY)
}

/// Index of a BDD node within its [`Bdd`] manager.
///
/// `NodeId`s are only meaningful together with the manager that created
/// them. The two terminals are [`Bdd::FALSE`] and [`Bdd::TRUE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct Node {
    /// Decision variable (level); terminals use `u32::MAX`.
    var: u32,
    /// Child when the variable is 0.
    lo: NodeId,
    /// Child when the variable is 1.
    hi: NodeId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
}

/// Hit/miss counters of the manager's internal tables, exposed so the
/// benchmark suite can attribute construction speedups to cache behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `mk` calls answered from the unique table.
    pub unique_hits: u64,
    /// `mk` calls that allocated a fresh node.
    pub unique_misses: u64,
    /// Binary operations answered from the op cache.
    pub op_hits: u64,
    /// Binary operations that recursed.
    pub op_misses: u64,
}

impl CacheStats {
    /// Fraction of `mk` calls answered from the unique table.
    pub fn unique_hit_rate(&self) -> f64 {
        let total = self.unique_hits + self.unique_misses;
        if total == 0 {
            0.0
        } else {
            self.unique_hits as f64 / total as f64
        }
    }

    /// Fraction of binary operations answered from the op cache.
    pub fn op_hit_rate(&self) -> f64 {
        let total = self.op_hits + self.op_misses;
        if total == 0 {
            0.0
        } else {
            self.op_hits as f64 / total as f64
        }
    }
}

/// A reduced ordered BDD manager over a fixed variable count.
///
/// Nodes are hash-consed (the *unique table*), so structural equality is
/// pointer equality: two [`NodeId`]s are equal iff they denote the same
/// Boolean function. Operations are memoized per `(op, lhs, rhs)`.
///
/// The manager only grows; monitors only ever add patterns, so no garbage
/// collection is needed (and none is provided).
#[derive(Debug, Clone)]
pub struct Bdd {
    num_vars: usize,
    nodes: Vec<Node>,
    unique: FxHashMap<Node, NodeId>,
    op_cache: FxHashMap<(Op, NodeId, NodeId), NodeId>,
    not_cache: FxHashMap<NodeId, NodeId>,
    stats: CacheStats,
}

impl Bdd {
    /// The constant-false terminal.
    pub const FALSE: NodeId = NodeId(0);
    /// The constant-true terminal.
    pub const TRUE: NodeId = NodeId(1);

    /// Creates a manager over `num_vars` variables (indices `0..num_vars`,
    /// ordered by index: variable 0 is the root-most level).
    pub fn new(num_vars: usize) -> Self {
        let terminals = vec![
            Node {
                var: u32::MAX,
                lo: Self::FALSE,
                hi: Self::FALSE,
            },
            Node {
                var: u32::MAX,
                lo: Self::TRUE,
                hi: Self::TRUE,
            },
        ];
        Self {
            num_vars,
            nodes: terminals,
            unique: FxHashMap::with_capacity_and_hasher(
                initial_capacity(num_vars),
                Default::default(),
            ),
            op_cache: FxHashMap::with_capacity_and_hasher(
                initial_capacity(num_vars),
                Default::default(),
            ),
            not_cache: FxHashMap::default(),
            stats: CacheStats::default(),
        }
    }

    /// Hit/miss counters of the unique table and op cache since creation
    /// (or the last [`Bdd::reset_cache_stats`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the cache counters (the caches themselves are kept).
    pub fn reset_cache_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total nodes allocated by this manager (including both terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the node is one of the two terminals.
    pub fn is_terminal(&self, n: NodeId) -> bool {
        n == Self::FALSE || n == Self::TRUE
    }

    /// The hash-consed node `(var, lo, hi)` with the reduction rule
    /// `lo == hi ⇒ lo`.
    fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            self.stats.unique_hits += 1;
            return id;
        }
        self.stats.unique_misses += 1;
        let id = NodeId(u32::try_from(self.nodes.len()).expect("BDD node arena overflow"));
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    /// The function of the single variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_vars()`.
    pub fn var(&mut self, i: usize) -> NodeId {
        assert!(
            i < self.num_vars,
            "variable {i} out of range ({} vars)",
            self.num_vars
        );
        self.mk(i as u32, Self::FALSE, Self::TRUE)
    }

    /// The negation of the single variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_vars()`.
    pub fn nvar(&mut self, i: usize) -> NodeId {
        assert!(
            i < self.num_vars,
            "variable {i} out of range ({} vars)",
            self.num_vars
        );
        self.mk(i as u32, Self::TRUE, Self::FALSE)
    }

    fn node(&self, n: NodeId) -> Node {
        self.nodes[n.index()]
    }

    /// Logical negation.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        if a == Self::FALSE {
            return Self::TRUE;
        }
        if a == Self::TRUE {
            return Self::FALSE;
        }
        if let Some(&r) = self.not_cache.get(&a) {
            return r;
        }
        let n = self.node(a);
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.not_cache.insert(a, r);
        r
    }

    fn apply(&mut self, op: Op, a: NodeId, b: NodeId) -> NodeId {
        // Terminal short-circuits.
        match op {
            Op::And => {
                if a == Self::FALSE || b == Self::FALSE {
                    return Self::FALSE;
                }
                if a == Self::TRUE {
                    return b;
                }
                if b == Self::TRUE {
                    return a;
                }
            }
            Op::Or => {
                if a == Self::TRUE || b == Self::TRUE {
                    return Self::TRUE;
                }
                if a == Self::FALSE {
                    return b;
                }
                if b == Self::FALSE {
                    return a;
                }
            }
        }
        if a == b {
            return a;
        }
        // Normalize operand order for cache hits (both ops commute).
        let key = if a <= b { (op, a, b) } else { (op, b, a) };
        if let Some(&r) = self.op_cache.get(&key) {
            self.stats.op_hits += 1;
            return r;
        }
        self.stats.op_misses += 1;
        let na = self.node(a);
        let nb = self.node(b);
        let var = na.var.min(nb.var);
        let (alo, ahi) = if na.var == var {
            (na.lo, na.hi)
        } else {
            (a, a)
        };
        let (blo, bhi) = if nb.var == var {
            (nb.lo, nb.hi)
        } else {
            (b, b)
        };
        let lo = self.apply(op, alo, blo);
        let hi = self.apply(op, ahi, bhi);
        let r = self.mk(var, lo, hi);
        self.op_cache.insert(key, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::And, a, b)
    }

    /// Disjunction.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::Or, a, b)
    }

    /// If-then-else `(c ∧ t) ∨ (¬c ∧ e)`.
    pub fn ite(&mut self, c: NodeId, t: NodeId, e: NodeId) -> NodeId {
        let nc = self.not(c);
        let a = self.and(c, t);
        let b = self.and(nc, e);
        self.or(a, b)
    }

    /// Builds the cube described by `literals` (`Some(true)` = positive,
    /// `Some(false)` = negative, `None` = don't care).
    ///
    /// Linear in the number of variables: this is the `word2set` primitive
    /// of the paper's robust monitors.
    ///
    /// # Panics
    ///
    /// Panics if `literals.len() != self.num_vars()`.
    pub fn cube(&mut self, literals: &[Option<bool>]) -> NodeId {
        assert_eq!(literals.len(), self.num_vars, "cube arity");
        let mut node = Self::TRUE;
        for (i, lit) in literals.iter().enumerate().rev() {
            node = match lit {
                None => node,
                Some(true) => self.mk(i as u32, Self::FALSE, node),
                Some(false) => self.mk(i as u32, node, Self::FALSE),
            };
        }
        node
    }

    /// `root ∨ cube(literals)` — inserts a (partial) word into a set.
    ///
    /// # Panics
    ///
    /// Panics if `literals.len() != self.num_vars()`.
    pub fn insert_cube(&mut self, root: NodeId, literals: &[Option<bool>]) -> NodeId {
        let c = self.cube(literals);
        self.or(root, c)
    }

    /// Builds the cube described by a packed [`BitCube`]. Same semantics as
    /// [`Bdd::cube`] without unpacking to `Option<bool>` literals.
    ///
    /// # Panics
    ///
    /// Panics if `cube.len() != self.num_vars()`.
    pub fn cube_packed(&mut self, cube: &BitCube) -> NodeId {
        assert_eq!(cube.len(), self.num_vars, "cube arity");
        let mut node = Self::TRUE;
        for i in (0..cube.len()).rev() {
            node = match cube.get(i) {
                None => node,
                Some(true) => self.mk(i as u32, Self::FALSE, node),
                Some(false) => self.mk(i as u32, node, Self::FALSE),
            };
        }
        node
    }

    /// `root ∨ cube_packed(cube)` — packed-cube insertion.
    ///
    /// # Panics
    ///
    /// Panics if `cube.len() != self.num_vars()`.
    pub fn insert_cube_packed(&mut self, root: NodeId, cube: &BitCube) -> NodeId {
        let c = self.cube_packed(cube);
        self.or(root, c)
    }

    /// Inserts a fully-specified word (packed or `bool`-slice form; no
    /// intermediate literal vector is allocated).
    ///
    /// # Panics
    ///
    /// Panics if `word.bit_len() != self.num_vars()`.
    pub fn insert_word<W: AsBits + ?Sized>(&mut self, root: NodeId, word: &W) -> NodeId {
        assert_eq!(word.bit_len(), self.num_vars, "insert_word arity");
        let mut node = Self::TRUE;
        for i in (0..self.num_vars).rev() {
            node = if word.bit(i) {
                self.mk(i as u32, Self::FALSE, node)
            } else {
                self.mk(i as u32, node, Self::FALSE)
            };
        }
        self.or(root, node)
    }

    /// Evaluates the function under a full assignment ([`BitWord`],
    /// `&[bool]`, or array). The walk visits at most one node per variable
    /// and performs no allocation.
    ///
    /// [`BitWord`]: crate::BitWord
    ///
    /// # Panics
    ///
    /// Panics if `assignment.bit_len() != self.num_vars()`.
    #[inline(always)]
    pub fn eval<W: AsBits + ?Sized>(&self, root: NodeId, assignment: &W) -> bool {
        assert_eq!(assignment.bit_len(), self.num_vars, "eval arity");
        let mut n = root;
        while !self.is_terminal(n) {
            let node = self.node(n);
            n = if assignment.bit(node.var as usize) {
                node.hi
            } else {
                node.lo
            };
        }
        n == Self::TRUE
    }

    /// Number of satisfying assignments over all `num_vars` variables.
    ///
    /// Returned as `f64` (pattern spaces reach `2^hundreds`; exact integers
    /// overflow, while the monitors only need coverage *ratios*).
    pub fn satcount(&self, root: NodeId) -> f64 {
        let mut memo: FxHashMap<NodeId, f64> = FxHashMap::default();
        let total_level = self.num_vars as u32;
        // count(n) = satisfying assignments over variables var(n)..num_vars.
        fn go(bdd: &Bdd, n: NodeId, memo: &mut FxHashMap<NodeId, f64>, total: u32) -> f64 {
            if n == Bdd::FALSE {
                return 0.0;
            }
            if n == Bdd::TRUE {
                return 1.0;
            }
            if let Some(&c) = memo.get(&n) {
                return c;
            }
            let node = bdd.node(n);
            let lo = go(bdd, node.lo, memo, total);
            let hi = go(bdd, node.hi, memo, total);
            let lo_var = if bdd.is_terminal(node.lo) {
                total
            } else {
                bdd.node(node.lo).var
            };
            let hi_var = if bdd.is_terminal(node.hi) {
                total
            } else {
                bdd.node(node.hi).var
            };
            let c = lo * 2f64.powi((lo_var - node.var - 1) as i32)
                + hi * 2f64.powi((hi_var - node.var - 1) as i32);
            memo.insert(n, c);
            c
        }
        let root_var = if self.is_terminal(root) {
            total_level
        } else {
            self.node(root).var
        };
        go(self, root, &mut memo, total_level) * 2f64.powi(root_var as i32)
    }

    /// Fraction of the full `2^num_vars` space that satisfies the function.
    pub fn coverage(&self, root: NodeId) -> f64 {
        self.satcount(root) / 2f64.powi(self.num_vars as i32)
    }

    /// Number of distinct nodes reachable from `root` (terminals included).
    pub fn reachable_nodes(&self, root: NodeId) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) || self.is_terminal(n) {
                continue;
            }
            let node = self.node(n);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        seen.len()
    }

    /// Internal view used by the DOT exporter.
    pub(crate) fn node_parts(&self, n: NodeId) -> (u32, NodeId, NodeId) {
        let node = self.node(n);
        (node.var, node.lo, node.hi)
    }

    /// Whether the set contains a word within Hamming distance `tau` of
    /// `word`.
    ///
    /// Variables skipped by the BDD admit both values, so they never cost
    /// distance. The search explores at most `O(nodes · tau)` states.
    ///
    /// # Panics
    ///
    /// Panics if `word.bit_len() != self.num_vars()`.
    pub fn contains_within_hamming<W: AsBits + ?Sized>(
        &self,
        root: NodeId,
        word: &W,
        tau: usize,
    ) -> bool {
        assert_eq!(
            word.bit_len(),
            self.num_vars,
            "contains_within_hamming arity"
        );
        fn go<W: AsBits + ?Sized>(bdd: &Bdd, n: NodeId, word: &W, budget: usize) -> bool {
            if n == Bdd::FALSE {
                return false;
            }
            if n == Bdd::TRUE {
                return true;
            }
            let node = bdd.node(n);
            let bit = word.bit(node.var as usize);
            let follow = if bit { node.hi } else { node.lo };
            if go(bdd, follow, word, budget) {
                return true;
            }
            if budget > 0 {
                let flipped = if bit { node.lo } else { node.hi };
                return go(bdd, flipped, word, budget - 1);
            }
            false
        }
        go(self, root, word, tau)
    }

    /// Builds the conjunction over consecutive variable *blocks* of
    /// per-block allowed symbol sets — the `word2set` of the paper's
    /// multi-bit interval monitors.
    ///
    /// Block `i` spans variables `i*bits .. (i+1)*bits` (variable
    /// `i*bits` is the most significant bit of the symbol). `blocks[i]`
    /// lists the allowed symbols of block `i`; the result accepts a word
    /// iff every block reads an allowed symbol. Because blocks occupy
    /// disjoint consecutive levels, the construction is one bottom-up pass
    /// and the result has at most `O(Σ_i bits · 2^bits)` nodes — no
    /// enumeration of the cross product.
    ///
    /// # Panics
    ///
    /// Panics if `blocks.len() * bits != num_vars`, any symbol is
    /// `>= 2^bits`, or any block's allowed set is empty.
    pub fn product_of_blocks(&mut self, blocks: &[Vec<u16>], bits: usize) -> NodeId {
        assert!(bits > 0 && bits <= 16, "bits per block must be in 1..=16");
        assert_eq!(
            blocks.len() * bits,
            self.num_vars,
            "blocks do not tile the variables"
        );
        let mut tail = Self::TRUE;
        for (i, allowed) in blocks.iter().enumerate().rev() {
            assert!(!allowed.is_empty(), "block {i} allows no symbols");
            let mut sorted: Vec<u16> = allowed.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert!(
                *sorted.last().unwrap() < (1u32 << bits) as u16,
                "block {i}: symbol out of range"
            );
            tail = self.block_node(i * bits, bits, &sorted, tail);
        }
        tail
    }

    /// Recursive helper: the sub-BDD over `bits` variables starting at
    /// `var_base` that routes allowed symbols to `tail` and others to
    /// FALSE. `allowed` is sorted.
    fn block_node(
        &mut self,
        var_base: usize,
        bits: usize,
        allowed: &[u16],
        tail: NodeId,
    ) -> NodeId {
        if allowed.is_empty() {
            return Self::FALSE;
        }
        if bits == 0 {
            return tail;
        }
        // Split on the most significant remaining bit.
        let msb = 1u16 << (bits - 1);
        let split = allowed.partition_point(|&s| s & msb == 0);
        let (lo_syms, hi_syms) = allowed.split_at(split);
        let hi_stripped: Vec<u16> = hi_syms.iter().map(|&s| s & !msb).collect();
        let lo = self.block_node(var_base + 1, bits - 1, lo_syms, tail);
        let hi = self.block_node(var_base + 1, bits - 1, &hi_stripped, tail);
        self.mk(var_base as u32, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_tensor::Prng;
    use std::collections::HashSet;

    #[test]
    fn terminals_behave() {
        let bdd = Bdd::new(2);
        assert!(bdd.eval(Bdd::TRUE, &[false, true]));
        assert!(!bdd.eval(Bdd::FALSE, &[false, true]));
        assert_eq!(bdd.satcount(Bdd::TRUE), 4.0);
        assert_eq!(bdd.satcount(Bdd::FALSE), 0.0);
    }

    #[test]
    fn single_variable_semantics() {
        let mut bdd = Bdd::new(3);
        let x1 = bdd.var(1);
        assert!(bdd.eval(x1, &[false, true, false]));
        assert!(!bdd.eval(x1, &[true, false, true]));
        assert_eq!(bdd.satcount(x1), 4.0);
        let nx1 = bdd.nvar(1);
        let neg = bdd.not(x1);
        assert_eq!(nx1, neg, "hash-consing makes equal functions identical");
    }

    #[test]
    fn de_morgan_holds_structurally() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0);
        let b = bdd.var(2);
        let and = bdd.and(a, b);
        let nand = bdd.not(and);
        let na = bdd.not(a);
        let nb = bdd.not(b);
        let or = bdd.or(na, nb);
        assert_eq!(nand, or);
    }

    #[test]
    fn ite_matches_truth_table() {
        let mut bdd = Bdd::new(3);
        let c = bdd.var(0);
        let t = bdd.var(1);
        let e = bdd.var(2);
        let f = bdd.ite(c, t, e);
        for bits in 0..8u32 {
            let a = [(bits & 4) != 0, (bits & 2) != 0, (bits & 1) != 0];
            let expected = if a[0] { a[1] } else { a[2] };
            assert_eq!(bdd.eval(f, &a), expected, "assignment {a:?}");
        }
    }

    #[test]
    fn cube_with_dont_cares_counts_expanded_words() {
        let mut bdd = Bdd::new(5);
        // 1 - - 0 -  => 2^3 = 8 words.
        let c = bdd.cube(&[Some(true), None, None, Some(false), None]);
        assert_eq!(bdd.satcount(c), 8.0);
        assert!(bdd.eval(c, &[true, true, false, false, true]));
        assert!(!bdd.eval(c, &[false, true, false, false, true]));
    }

    #[test]
    fn insert_word_then_membership() {
        let mut bdd = Bdd::new(4);
        let mut set = Bdd::FALSE;
        set = bdd.insert_word(set, &[true, false, true, false]);
        set = bdd.insert_word(set, &[false, false, false, false]);
        assert!(bdd.eval(set, &[true, false, true, false]));
        assert!(bdd.eval(set, &[false, false, false, false]));
        assert!(!bdd.eval(set, &[true, true, true, false]));
        assert_eq!(bdd.satcount(set), 2.0);
    }

    #[test]
    fn reinserting_is_idempotent() {
        let mut bdd = Bdd::new(3);
        let w = [true, true, false];
        let s1 = bdd.insert_word(Bdd::FALSE, &w);
        let s2 = bdd.insert_word(s1, &w);
        assert_eq!(s1, s2);
    }

    #[test]
    fn coverage_is_satcount_normalized() {
        let mut bdd = Bdd::new(10);
        let cube: Vec<Option<bool>> = (0..10)
            .map(|i| if i < 3 { Some(true) } else { None })
            .collect();
        let s = bdd.cube(&cube);
        assert!((bdd.coverage(s) - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn reachable_nodes_of_cube_is_linear() {
        let mut bdd = Bdd::new(64);
        let cube: Vec<Option<bool>> = (0..64).map(|i| Some(i % 2 == 0)).collect();
        let c = bdd.cube(&cube);
        // 64 decision nodes + 2 terminals.
        assert_eq!(bdd.reachable_nodes(c), 66);
    }

    #[test]
    fn product_of_blocks_matches_explicit_enumeration() {
        let mut bdd = Bdd::new(6); // 3 blocks x 2 bits
        let blocks = vec![vec![0b00u16, 0b01], vec![0b01, 0b10, 0b11], vec![0b10]];
        let f = bdd.product_of_blocks(&blocks, 2);
        assert_eq!(bdd.satcount(f), (2 * 3) as f64);
        // Word: block symbols (00, 11, 10) -> allowed.
        assert!(bdd.eval(f, &[false, false, true, true, true, false]));
        // Word: (01, 00, 10) -> block 1 forbids 00.
        assert!(!bdd.eval(f, &[false, true, false, false, true, false]));
    }

    #[test]
    #[should_panic(expected = "allows no symbols")]
    fn empty_block_panics() {
        let mut bdd = Bdd::new(2);
        bdd.product_of_blocks(&[vec![]], 2);
    }

    #[test]
    fn randomized_equivalence_with_hashset_reference() {
        let mut rng = Prng::seed(71);
        for _ in 0..20 {
            let vars = 6;
            let mut bdd = Bdd::new(vars);
            let mut root = Bdd::FALSE;
            let mut reference: HashSet<Vec<bool>> = HashSet::new();
            for _ in 0..rng.index(30) {
                // Random cube with ~30% don't-cares.
                let literals: Vec<Option<bool>> = (0..vars)
                    .map(|_| {
                        if rng.chance(0.3) {
                            None
                        } else {
                            Some(rng.chance(0.5))
                        }
                    })
                    .collect();
                root = bdd.insert_cube(root, &literals);
                // Expand into the reference set.
                let free: Vec<usize> = literals
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.is_none())
                    .map(|(i, _)| i)
                    .collect();
                for mask in 0..(1u32 << free.len()) {
                    let mut w: Vec<bool> = literals.iter().map(|l| l.unwrap_or(false)).collect();
                    for (bit, &pos) in free.iter().enumerate() {
                        w[pos] = (mask >> bit) & 1 == 1;
                    }
                    reference.insert(w);
                }
            }
            // Compare on the full truth table.
            for bits in 0..(1u32 << vars) {
                let a: Vec<bool> = (0..vars)
                    .map(|i| (bits >> (vars - 1 - i)) & 1 == 1)
                    .collect();
                assert_eq!(
                    bdd.eval(root, &a),
                    reference.contains(&a),
                    "assignment {a:?}"
                );
            }
            assert_eq!(bdd.satcount(root), reference.len() as f64);
        }
    }

    #[test]
    fn randomized_block_products_match_reference() {
        let mut rng = Prng::seed(72);
        for _ in 0..15 {
            let bits = 2;
            let neurons = 3;
            let mut bdd = Bdd::new(bits * neurons);
            let blocks: Vec<Vec<u16>> = (0..neurons)
                .map(|_| {
                    let mut symbols: Vec<u16> = (0..4u16).filter(|_| rng.chance(0.6)).collect();
                    if symbols.is_empty() {
                        symbols.push(rng.index(4) as u16);
                    }
                    symbols
                })
                .collect();
            let f = bdd.product_of_blocks(&blocks, bits);
            for word in 0..(1u32 << (bits * neurons)) {
                let a: Vec<bool> = (0..bits * neurons)
                    .map(|i| (word >> (bits * neurons - 1 - i)) & 1 == 1)
                    .collect();
                let expected = (0..neurons).all(|n| {
                    let sym = ((a[2 * n] as u16) << 1) | a[2 * n + 1] as u16;
                    blocks[n].contains(&sym)
                });
                assert_eq!(bdd.eval(f, &a), expected, "word {a:?} blocks {blocks:?}");
            }
        }
    }
}

#[cfg(test)]
mod hamming_tests {
    use super::*;

    #[test]
    fn hamming_zero_is_plain_membership() {
        let mut bdd = Bdd::new(4);
        let s = bdd.insert_word(Bdd::FALSE, &[true, false, true, true]);
        assert!(bdd.contains_within_hamming(s, &[true, false, true, true], 0));
        assert!(!bdd.contains_within_hamming(s, &[true, true, true, true], 0));
    }

    #[test]
    fn hamming_radius_grows_acceptance() {
        let mut bdd = Bdd::new(4);
        let s = bdd.insert_word(Bdd::FALSE, &[true, true, true, true]);
        let q = [false, false, true, true]; // distance 2
        assert!(!bdd.contains_within_hamming(s, &q, 1));
        assert!(bdd.contains_within_hamming(s, &q, 2));
        assert!(bdd.contains_within_hamming(s, &q, 3));
    }

    #[test]
    fn skipped_levels_cost_nothing() {
        let mut bdd = Bdd::new(4);
        // Cube 1 - - 1: middle vars free.
        let s = bdd.insert_cube(Bdd::FALSE, &[Some(true), None, None, Some(true)]);
        // Query flips both middle bits relative to any expansion: still 0 away.
        assert!(bdd.contains_within_hamming(s, &[true, true, false, true], 0));
        // One real mismatch needs budget 1.
        assert!(!bdd.contains_within_hamming(s, &[false, true, false, true], 0));
        assert!(bdd.contains_within_hamming(s, &[false, true, false, true], 1));
    }
}

/// Serialized form: the arena is enough — the unique table and operation
/// caches are rebuildable derived state.
#[derive(Serialize, Deserialize)]
struct BddData {
    num_vars: usize,
    nodes: Vec<Node>,
}

impl Serialize for Bdd {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        BddData {
            num_vars: self.num_vars,
            nodes: self.nodes.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Bdd {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let data = BddData::deserialize(deserializer)?;
        if data.nodes.len() < 2 {
            return Err(serde::de::Error::custom(
                "BDD arena must contain the two terminals",
            ));
        }
        let mut unique = FxHashMap::with_capacity_and_hasher(data.nodes.len(), Default::default());
        for (i, node) in data.nodes.iter().enumerate().skip(2) {
            unique.insert(*node, NodeId(i as u32));
        }
        Ok(Bdd {
            num_vars: data.num_vars,
            nodes: data.nodes,
            unique,
            op_cache: FxHashMap::with_capacity_and_hasher(
                initial_capacity(data.num_vars),
                Default::default(),
            ),
            not_cache: FxHashMap::default(),
            stats: CacheStats::default(),
        })
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn round_trip_preserves_semantics_and_sharing() {
        let mut bdd = Bdd::new(4);
        let mut root = Bdd::FALSE;
        root = bdd.insert_cube(root, &[Some(true), None, Some(false), None]);
        root = bdd.insert_word(root, &[false, false, true, true]);
        let json = serde_json::to_string(&(&bdd, root)).unwrap();
        let (mut back, back_root): (Bdd, NodeId) = serde_json::from_str(&json).unwrap();
        for bits in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(bdd.eval(root, &a), back.eval(back_root, &a));
        }
        assert_eq!(back.satcount(back_root), bdd.satcount(root));
        // The rebuilt unique table keeps hash-consing working: inserting an
        // already-present word must not change the root.
        let again = back.insert_word(back_root, &[false, false, true, true]);
        assert_eq!(again, back_root);
    }

    #[test]
    fn truncated_arena_is_rejected() {
        let err = serde_json::from_str::<Bdd>("{\"num_vars\":2,\"nodes\":[]}");
        assert!(err.is_err());
    }
}
