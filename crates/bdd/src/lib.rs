//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! The on-off and multi-bit activation-pattern monitors of the paper store
//! *sets of Boolean words* — one word per visited activation pattern — and
//! the robust construction inserts whole *cubes* (words with don't-care
//! positions) at once. Following the paper (and Bryant's classic
//! construction [ACM Comp. Surv. 1992]), the sets live in a BDD:
//!
//! - inserting a cube is linear in the number of variables, regardless of
//!   how many concrete words the don't-cares expand to (the paper's
//!   footnote 2: `word2set` causes no exponential blow-up);
//! - membership queries walk at most one node per variable;
//! - [`Bdd::satcount`] measures how much of the pattern space a monitor
//!   admits — the "monitor efficiency" metric discussed in the paper's
//!   conclusion.
//!
//! ```
//! use napmon_bdd::Bdd;
//!
//! let mut bdd = Bdd::new(3);
//! let f = Bdd::FALSE;
//! // Insert the cube 1-0 (x0=1, x1 free, x2=0): two words at once.
//! let set = bdd.insert_cube(f, &[Some(true), None, Some(false)]);
//! assert!(bdd.eval(set, &[true, false, false]));
//! assert!(bdd.eval(set, &[true, true, false]));
//! assert!(!bdd.eval(set, &[true, true, true]));
//! assert_eq!(bdd.satcount(set), 2.0);
//! ```

mod bitslice;
mod dot;
mod fxhash;
mod manager;
mod word;

pub use bitslice::{BitSliceSet, LANES, SUPERBLOCK_PATTERNS};
pub use dot::to_dot;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use manager::{Bdd, CacheStats, NodeId};
pub use word::{AsBits, BitCube, BitWord, INLINE_BITS, INLINE_WORDS};
