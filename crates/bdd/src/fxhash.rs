//! A fast, non-cryptographic hasher for the BDD's internal tables.
//!
//! The BDD unique table and operation caches are hit once per node visit
//! during construction; with std's default SipHash the hashing itself
//! dominates cache lookups. This is the multiply-xor scheme popularized by
//! rustc's `FxHasher`: one rotate + xor + multiply per 8 bytes. It is not
//! DoS-resistant — fine for these tables, whose keys are internal node ids,
//! never attacker-controlled data.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style multiply-xor hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into std collections.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(write: impl Fn(&mut FxHasher)) -> u64 {
        let mut h = FxHasher::default();
        write(&mut h);
        h.finish()
    }

    #[test]
    fn equal_inputs_hash_equal() {
        assert_eq!(hash_of(|h| h.write_u64(42)), hash_of(|h| h.write_u64(42)));
        assert_ne!(hash_of(|h| h.write_u64(42)), hash_of(|h| h.write_u64(43)));
    }

    #[test]
    fn byte_stream_matches_word_stream_on_aligned_input() {
        let a = hash_of(|h| h.write(&7u64.to_le_bytes()));
        let b = hash_of(|h| h.write_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn works_as_map_hasher() {
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert((i, i.wrapping_mul(31)), i);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&(17, 17 * 31)), Some(&17));
    }

    #[test]
    fn distribution_is_not_degenerate() {
        // All 10k keys into 64 buckets: no bucket should exceed 4x the mean.
        let mut buckets = [0u32; 64];
        for i in 0..10_000u64 {
            buckets[(hash_of(|h| h.write_u64(i)) >> 58) as usize] += 1;
        }
        assert!(buckets.iter().all(|&c| c < 4 * 10_000 / 64));
    }
}
