//! Snapshot tests for the Graphviz export: the DOT text of a small,
//! fully-understood BDD is pinned — node and edge counts, terminal
//! declarations, and structural stability across identical builds.

use napmon_bdd::{to_dot, Bdd};

/// Counts lines matching a predicate.
fn lines(dot: &str, pred: impl Fn(&str) -> bool) -> usize {
    dot.lines().filter(|l| pred(l)).count()
}

/// Decision-node declarations (`nXXX [label="xK"];`).
fn node_count(dot: &str) -> usize {
    lines(dot, |l| l.contains("[label=\"x"))
}

/// Edges (`->`), excluding the synthetic `root ->` marker for terminals.
fn edge_count(dot: &str) -> usize {
    lines(dot, |l| {
        l.contains("->") && !l.trim_start().starts_with("root")
    })
}

#[test]
fn single_variable_snapshot() {
    let mut bdd = Bdd::new(2);
    let x0 = bdd.var(0);
    let dot = to_dot(&bdd, x0);
    // Shape: digraph header, both terminals as boxes, one decision node
    // with a dashed else-edge and a solid then-edge.
    assert!(dot.starts_with("digraph bdd {"), "{dot}");
    assert!(dot.trim_end().ends_with('}'), "{dot}");
    assert_eq!(lines(&dot, |l| l.contains("shape=box")), 2, "{dot}");
    assert_eq!(node_count(&dot), 1, "{dot}");
    assert_eq!(edge_count(&dot), 2, "{dot}");
    assert_eq!(lines(&dot, |l| l.contains("style=dashed")), 1, "{dot}");
}

/// The conjunction x0 ∧ x1 ∧ x2 is a chain: one decision node per
/// variable, two edges each.
#[test]
fn conjunction_chain_has_one_node_per_variable() {
    let mut bdd = Bdd::new(3);
    let mut f = Bdd::TRUE;
    for v in (0..3).rev() {
        let x = bdd.var(v);
        f = bdd.and(f, x);
    }
    let dot = to_dot(&bdd, f);
    assert_eq!(node_count(&dot), 3, "{dot}");
    assert_eq!(edge_count(&dot), 6, "{dot}");
    for v in 0..3 {
        assert!(dot.contains(&format!("label=\"x{v}\"")), "{dot}");
    }
}

/// A single inserted word visits every variable; reduction keeps the
/// graph a path of `n` nodes with `2n` edges.
#[test]
fn inserted_word_renders_as_a_path() {
    let mut bdd = Bdd::new(4);
    let set = bdd.insert_word(Bdd::FALSE, &[true, false, true, false]);
    let dot = to_dot(&bdd, set);
    assert_eq!(node_count(&dot), 4, "{dot}");
    assert_eq!(edge_count(&dot), 8, "{dot}");
}

/// Terminal roots render as the synthetic `root -> t` / `root -> f`
/// marker with no decision nodes.
#[test]
fn terminal_roots_render_markers() {
    let bdd = Bdd::new(1);
    let t = to_dot(&bdd, Bdd::TRUE);
    assert!(t.contains("root -> t"), "{t}");
    assert_eq!(node_count(&t), 0, "{t}");
    let f = to_dot(&bdd, Bdd::FALSE);
    assert!(f.contains("root -> f"), "{f}");
    assert_eq!(edge_count(&f), 0, "{f}");
}

/// The export is deterministic: identical builds produce identical text
/// (the property that makes committing DOT snapshots meaningful).
#[test]
fn identical_builds_snapshot_identically() {
    let build = || {
        let mut bdd = Bdd::new(3);
        let mut set = Bdd::FALSE;
        set = bdd.insert_word(set, &[true, false, true]);
        set = bdd.insert_word(set, &[false, true, true]);
        (bdd, set)
    };
    let (bdd_a, root_a) = build();
    let (bdd_b, root_b) = build();
    let dot_a = to_dot(&bdd_a, root_a);
    assert_eq!(dot_a, to_dot(&bdd_b, root_b));
    // And the pinned shape of this two-word set: the shared x2 suffix is
    // merged by reduction, so two 3-bit words cost 4 nodes, not 6.
    assert_eq!(node_count(&dot_a), 4, "{dot_a}");
    assert_eq!(edge_count(&dot_a), 2 * node_count(&dot_a), "{dot_a}");
}
