//! Property tests pinning the packed `BitWord`/`BitCube` semantics to the
//! unpacked `Vec<bool>` / `Vec<Option<bool>>` reference they replaced.
//!
//! Widths are drawn across the inline/heap storage boundary
//! ([`INLINE_BITS`] = 256), so every property exercises both storage
//! variants and the partial trailing limb.

use napmon_bdd::{BitCube, BitWord, INLINE_BITS};
use proptest::prelude::*;

/// Widths hugging the interesting boundaries: empty, one limb, the limb
/// seam, the inline/heap seam, and deep heap.
fn width_for(index: usize) -> usize {
    const SPECIAL: [usize; 10] = [
        0,
        1,
        63,
        64,
        65,
        INLINE_BITS - 1,
        INLINE_BITS,
        INLINE_BITS + 1,
        500,
        1000,
    ];
    SPECIAL[index % SPECIAL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn from_bools_get_roundtrip(raw in collection::vec(0u32..2, 0..600)) {
        let bits: Vec<bool> = raw.iter().map(|&b| b == 1).collect();
        let word = BitWord::from_bools(&bits);
        prop_assert_eq!(word.len(), bits.len());
        prop_assert_eq!(word.is_inline(), bits.len() <= INLINE_BITS);
        for (i, &b) in bits.iter().enumerate() {
            prop_assert!(word.get(i) == b, "bit {i} mismatch");
        }
        prop_assert_eq!(word.to_bools(), bits);
    }

    #[test]
    fn set_tracks_vec_bool_reference(
        width_index in 0usize..10,
        ops in collection::vec((0usize..1000, 0u32..2), 0..64),
    ) {
        let width = width_for(width_index).max(1);
        let mut reference = vec![false; width];
        let mut word = BitWord::zeros(width);
        for (pos, value) in ops {
            let (i, b) = (pos % width, value == 1);
            reference[i] = b;
            word.set(i, b);
        }
        prop_assert_eq!(word.to_bools(), reference.clone());
        prop_assert_eq!(
            word.count_ones() as usize,
            reference.iter().filter(|&&b| b).count()
        );
        // A fresh word packed from the reference is equal and hashes equal
        // (equality is limb-wise; stray trailing bits would break this).
        prop_assert_eq!(word, BitWord::from_bools(&reference));
    }

    #[test]
    fn hamming_matches_positionwise_reference(pairs in collection::vec(0u32..4, 1..600)) {
        // Each 2-bit draw feeds one position of two equal-length words.
        let a_bits: Vec<bool> = pairs.iter().map(|p| p & 1 == 1).collect();
        let b_bits: Vec<bool> = pairs.iter().map(|p| p & 2 == 2).collect();
        let a = BitWord::from_bools(&a_bits);
        let b = BitWord::from_bools(&b_bits);
        let expected = a_bits
            .iter()
            .zip(&b_bits)
            .filter(|(x, y)| x != y)
            .count() as u32;
        prop_assert_eq!(a.hamming(&b), expected);
        prop_assert_eq!(b.hamming(&a), expected);
        prop_assert_eq!(a.hamming(&a), 0);
        // Hamming distance zero iff equal.
        prop_assert_eq!(a == b, expected == 0);
    }

    #[test]
    fn fill_variants_agree_and_popcount_is_exact(raw in collection::vec(0u32..2, 0..600)) {
        let bits: Vec<bool> = raw.iter().map(|&b| b == 1).collect();
        let ones = bits.iter().filter(|&&b| b).count() as u32;

        let filled = BitWord::from_fn(bits.len(), |i| bits[i]);
        prop_assert_eq!(filled.count_ones(), ones);
        prop_assert_eq!(&filled, &BitWord::from_bools(&bits));

        let mut from_iter = BitWord::default();
        from_iter.fill_from_iter(bits.len(), bits.iter().copied());
        prop_assert_eq!(&from_iter, &filled);

        // Iteration round-trips.
        prop_assert_eq!(filled.iter().collect::<Vec<bool>>(), bits);
    }

    #[test]
    fn reset_clears_any_history(
        raw in collection::vec(0u32..2, 1..600),
        new_width_index in 0usize..10,
    ) {
        let bits: Vec<bool> = raw.iter().map(|&b| b == 1).collect();
        let mut word = BitWord::from_bools(&bits);
        let new_width = width_for(new_width_index);
        word.reset(new_width);
        prop_assert_eq!(word.len(), new_width);
        prop_assert_eq!(word.count_ones(), 0);
        // A reset word is indistinguishable from a fresh all-zero word.
        prop_assert_eq!(word, BitWord::zeros(new_width));
    }

    #[test]
    fn cube_tracks_vec_option_reference(raw in collection::vec(0u32..3, 0..600)) {
        // 0 => don't care, 1 => Some(false), 2 => Some(true).
        let literals: Vec<Option<bool>> = raw
            .iter()
            .map(|&v| match v {
                0 => None,
                1 => Some(false),
                _ => Some(true),
            })
            .collect();
        let cube = BitCube::from_options(&literals);
        prop_assert_eq!(cube.len(), literals.len());
        for (i, &lit) in literals.iter().enumerate() {
            prop_assert!(cube.get(i) == lit, "literal {i} mismatch");
        }
        prop_assert_eq!(
            cube.free_count() as usize,
            literals.iter().filter(|l| l.is_none()).count()
        );
        prop_assert_eq!(cube.to_options(), literals);
    }

    #[test]
    fn cube_set_transitions_match_reference(
        width_index in 0usize..10,
        ops in collection::vec((0usize..1000, 0u32..3), 0..64),
    ) {
        let width = width_for(width_index).max(1);
        let mut reference: Vec<Option<bool>> = vec![None; width];
        let mut cube = BitCube::free(width);
        for (pos, value) in ops {
            let i = pos % width;
            let lit = match value {
                0 => None,
                1 => Some(false),
                _ => Some(true),
            };
            reference[i] = lit;
            cube.set(i, lit);
        }
        prop_assert_eq!(cube.to_options(), reference);
    }
}
