//! Property tests for histogram correctness: merge algebra, bucket
//! containment, and quantile brackets against a sorted oracle.
//!
//! Sample sets deliberately mix three magnitudes — exact low range,
//! mid-range values dense around log2 bucket boundaries, and full-range
//! `u64`s — so brackets are exercised across bucket-width transitions.

use napmon_obs::{bucket_bounds, bucket_index, HistogramSnapshot, NUM_BUCKETS};
use proptest::prelude::*;

fn build(samples: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Values hugging powers of two, where bucket width doubles.
fn boundary_values(shifts: &[u64], jitters: &[i64]) -> Vec<u64> {
    shifts
        .iter()
        .zip(jitters)
        .map(|(&shift, &jitter)| {
            let base = 1u64 << (shift % 64);
            if jitter >= 0 {
                base.saturating_add(jitter as u64)
            } else {
                base.saturating_sub(jitter.unsigned_abs())
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every recorded sample lands in a bucket whose bounds contain it.
    #[test]
    fn bucket_bounds_contain_every_sample(
        full in collection::vec(0u64..=u64::MAX, 0..64),
        small in collection::vec(0u64..=4096, 0..64),
        shifts in collection::vec(0u64..64, 0..32),
        jitters in collection::vec(-17i64..=17, 32),
    ) {
        let mut samples = full;
        samples.extend(small);
        samples.extend(boundary_values(&shifts, &jitters));
        for &v in &samples {
            let idx = bucket_index(v);
            prop_assert!(idx < NUM_BUCKETS);
            let (lo, hi) = bucket_bounds(idx);
            prop_assert!(lo <= v && v <= hi, "{v} outside bucket {idx} = [{lo}, {hi}]");
        }
        // And the histogram as a whole agrees with its inputs.
        let h = build(&samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        if let (Some(&min), Some(&max)) =
            (samples.iter().min(), samples.iter().max())
        {
            prop_assert_eq!(h.min(), min as f64);
            prop_assert_eq!(h.max(), max as f64);
        }
    }

    /// Merge is commutative and associative: any shard-merge order gives
    /// bit-identical state.
    #[test]
    fn merge_is_commutative_and_associative(
        a in collection::vec(0u64..=u64::MAX, 0..48),
        b in collection::vec(0u64..=1 << 20, 0..48),
        c in collection::vec(0u64..=4096, 0..48),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Merging equals recording the concatenation.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&ab_c, &build(&all));
    }

    /// Quantile brackets contain the exact sorted-oracle order statistic,
    /// at canonical quantiles and arbitrary ones, across bucket widths.
    #[test]
    fn quantile_brackets_contain_sorted_oracle(
        small in collection::vec(0u64..=64, 0..40),
        mid in collection::vec(0u64..=1 << 24, 1..40),
        shifts in collection::vec(0u64..64, 0..24),
        jitters in collection::vec(-9i64..=9, 24),
        q_extra in 0.0f64..1.0,
    ) {
        let mut samples = small;
        samples.extend(mid);
        samples.extend(boundary_values(&shifts, &jitters));
        let h = build(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0, q_extra] {
            let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
            let oracle = sorted[(rank - 1) as usize];
            let (lo, hi) = h.quantile_bounds(q).expect("non-empty");
            prop_assert!(
                lo <= oracle && oracle <= hi,
                "q={q}: oracle {oracle} outside bracket [{lo}, {hi}] (n={n})"
            );
        }
    }
}
