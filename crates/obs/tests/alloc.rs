//! Proof that steady-state observability is **zero heap allocation**:
//! recording a histogram sample, a trace-ring span, or an under-threshold
//! slow-log observation never allocates once the structures exist.
//!
//! This extends the serving engine's counting-allocator test to the
//! instrumentation layer itself — the probes ride the hottest paths in
//! the system, so "drop-oldest, zero steady-state alloc" is a contract,
//! not an aspiration.
//!
//! Own test binary so the allocator swap cannot perturb other tests.

use napmon_obs::{
    HistogramSnapshot, LatencyHistogram, MetricsRegistry, SlowLog, SpanKind, TraceEvent, TraceRing,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_recording_never_allocates() {
    const EVENTS: usize = 10_000;

    // Construction allocates (rings, bucket arrays, registry entries) —
    // that all happens here, before the counter is armed.
    let ring = TraceRing::with_capacity(256);
    let mut plain = HistogramSnapshot::new();
    let atomic = LatencyHistogram::new();
    let registry = MetricsRegistry::new();
    let counter = registry.counter("test.hits");
    let gauge = registry.gauge("test.depth");
    let shared_hist = registry.histogram("test.ns");
    let slow = SlowLog::new(8, 1_000_000);

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for i in 0..EVENTS as u64 {
        ring.record(TraceEvent {
            trace_id: i,
            kind: SpanKind::Verdict,
            start_ns: i,
            dur_ns: 3,
            detail: i % 7,
        });
        plain.record(i * 37);
        atomic.record(i * 37);
        shared_hist.record(i * 37);
        counter.inc();
        gauge.set(i);
        // Under threshold: the slow log's cheap path.
        slow.observe(i, "Query", i % 1000);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let counted = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(ring.recorded(), EVENTS as u64);
    assert_eq!(plain.count(), EVENTS as u64);
    assert_eq!(atomic.count(), EVENTS as u64);
    assert_eq!(counter.get(), EVENTS as u64);
    assert!(slow.snapshot().is_empty());
    assert_eq!(
        counted, 0,
        "steady-state observability recording performed {counted} allocations over \
         {EVENTS} events; the record paths must be allocation-free"
    );
}

// With probes compiled in, the full global probe surface (thread-local
// ring lookup included) must also be allocation-free once the thread's
// ring exists.
#[cfg(feature = "probes")]
#[test]
fn global_probe_surface_is_allocation_free_once_warm() {
    const EVENTS: usize = 10_000;

    napmon_obs::set_tracing(true);
    // Warm-up: allocates this thread's ring and registers it.
    napmon_obs::record_span(1, SpanKind::Verdict, napmon_obs::now_ns(), 1, 0);

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for i in 0..EVENTS as u64 {
        let t0 = napmon_obs::now_ns();
        napmon_obs::record_span(i, SpanKind::QueueWait, t0, napmon_obs::now_ns() - t0, i);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let counted = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        counted, 0,
        "warm global probe path performed {counted} allocations over {EVENTS} spans"
    );
}
