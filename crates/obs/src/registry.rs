//! The namespaced metrics registry: named counters, gauges, and
//! histograms with lock-free hot paths.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes a write lock
//! once per name and hands back a cheap `Arc`-backed handle; every
//! subsequent `inc` / `set` / `record` through the handle is a single
//! relaxed atomic — no lock, no CAS loop. Handles resolved for the same
//! name share one underlying cell, so a counter can be bumped from many
//! threads and snapshotted consistently.
//!
//! Names are dot-namespaced by subsystem (`wire.op.query`,
//! `store.bloom.hits`, `registry.flip_ns`); the Prometheus-style text
//! exposition rewrites dots to underscores to stay within the exposition
//! grammar.

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Schema version stamped into every [`MetricsSnapshot`].
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// A monotonically increasing counter handle. Clone freely; all clones
/// (and all handles resolved for the same name) share one cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A standalone counter not attached to any registry.
    #[must_use]
    pub fn standalone() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle (unsigned).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is higher than the current one.
    #[inline]
    pub fn raise_to(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<LatencyHistogram>>,
}

/// A registry of named metrics.
///
/// Registration takes a write lock once per name and hands back a cheap
/// `Arc`-backed handle; every subsequent `inc` / `set` / `record`
/// through the handle is a single relaxed atomic — no lock, no CAS loop.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: RwLock<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (registering on first use) the counter named `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(cell) = self.inner.read().expect("metrics lock").counters.get(name) {
            return Counter(Arc::clone(cell));
        }
        let mut inner = self.inner.write().expect("metrics lock");
        let cell = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// Resolves (registering on first use) the gauge named `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(cell) = self.inner.read().expect("metrics lock").gauges.get(name) {
            return Gauge(Arc::clone(cell));
        }
        let mut inner = self.inner.write().expect("metrics lock");
        let cell = inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Gauge(Arc::clone(cell))
    }

    /// Resolves (registering on first use) the histogram named `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        if let Some(h) = self
            .inner
            .read()
            .expect("metrics lock")
            .histograms
            .get(name)
        {
            return Arc::clone(h);
        }
        let mut inner = self.inner.write().expect("metrics lock");
        let h = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(LatencyHistogram::new()));
        Arc::clone(h)
    }

    /// A consistent-enough point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read().expect("metrics lock");
        MetricsSnapshot {
            schema_version: METRICS_SCHEMA_VERSION,
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read().expect("metrics lock");
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// Plain-data, serializable copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Schema version ([`METRICS_SCHEMA_VERSION`] at capture time).
    pub schema_version: u32,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters add, gauges take the max,
    /// histograms merge bucket-wise. Names only in one side pass through.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.schema_version = self.schema_version.max(other.schema_version);
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Prometheus-style text exposition of the snapshot.
    ///
    /// Dot-namespaced metric names are rewritten with underscores
    /// (`wire.op.query` → `wire_op_query`); histograms are rendered as
    /// summaries with `quantile` labels carrying the bracket midpoints,
    /// plus `_sum` and `_count` series.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let clean = |name: &str| name.replace(['.', '-'], "_");
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = clean(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = clean(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, hist) in &self.histograms {
            let name = clean(name);
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")] {
                let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", hist.quantile(q));
            }
            let _ = writeln!(out, "{name}_sum {}", hist.sum());
            let _ = writeln!(out, "{name}_count {}", hist.count());
        }
        out
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry used by subsystems (store, registry crate)
/// whose call sites cannot practically thread a per-instance registry.
///
/// The wire server keeps its *own* per-server registry for metrics whose
/// exact values tests assert on (degradation counters); the scrape surface
/// merges both.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_and_snapshot_sees_them() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.add(2);
        reg.gauge("x.depth").set(7);
        reg.histogram("x.ns").record(1000);
        let snap = reg.snapshot();
        assert_eq!(snap.schema_version, METRICS_SCHEMA_VERSION);
        assert_eq!(snap.counters["x.hits"], 3);
        assert_eq!(snap.gauges["x.depth"], 7);
        assert_eq!(snap.histograms["x.ns"].count(), 1);
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let reg_a = MetricsRegistry::new();
        let reg_b = MetricsRegistry::new();
        reg_a.counter("n").add(5);
        reg_b.counter("n").add(7);
        reg_b.counter("only_b").inc();
        reg_a.gauge("g").set(3);
        reg_b.gauge("g").set(9);
        reg_a.histogram("h").record(10);
        reg_b.histogram("h").record(20);
        let mut merged = reg_a.snapshot();
        merged.merge(&reg_b.snapshot());
        assert_eq!(merged.counters["n"], 12);
        assert_eq!(merged.counters["only_b"], 1);
        assert_eq!(merged.gauges["g"], 9);
        assert_eq!(merged.histograms["h"].count(), 2);
    }

    #[test]
    fn text_exposition_is_prometheus_shaped() {
        let reg = MetricsRegistry::new();
        reg.counter("wire.op.query").add(4);
        reg.histogram("serve.latency_ns").record(128);
        let text = reg.snapshot().render_text();
        assert!(text.contains("# TYPE wire_op_query counter"));
        assert!(text.contains("wire_op_query 4"));
        assert!(text.contains("serve_latency_ns_count 1"));
        assert!(text.contains("quantile=\"0.99\""));
        // Metric names never carry dots in the exposition.
        for line in text.lines() {
            let name = line.split([' ', '{']).next().unwrap_or("");
            assert!(!name.contains('.'), "unescaped name in {line:?}");
        }
    }

    #[test]
    fn snapshot_serde_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("a").inc();
        reg.histogram("b").record(42);
        let snap = reg.snapshot();
        let back: MetricsSnapshot = serde::from_value(serde::to_value(&snap).unwrap()).unwrap();
        assert_eq!(back, snap);
    }
}
