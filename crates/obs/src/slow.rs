//! The slow-request log: a threshold-gated, bounded last-N ring of
//! requests that exceeded a latency budget.
//!
//! The hot path pays one relaxed atomic load per request (the threshold
//! check); only requests actually over the threshold take the ring's
//! mutex, so a healthy server never contends here.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One logged slow request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowRequest {
    /// Trace id of the request (0 when it carried none).
    pub trace_id: u64,
    /// Opcode name as served (`"Query"`, `"Absorb"`, …).
    pub opcode: String,
    /// End-to-end service time, nanoseconds.
    pub total_ns: u64,
    /// The threshold in force when the request was logged, nanoseconds.
    pub threshold_ns: u64,
}

/// A bounded log of the most recent requests slower than a configurable
/// threshold.
#[derive(Debug)]
pub struct SlowLog {
    threshold_ns: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<SlowRequest>>,
}

impl SlowLog {
    /// A log keeping the last `capacity` requests over `threshold_ns`.
    /// A threshold of `u64::MAX` disables logging.
    #[must_use]
    pub fn new(capacity: usize, threshold_ns: u64) -> Self {
        let capacity = capacity.max(1);
        SlowLog {
            threshold_ns: AtomicU64::new(threshold_ns),
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// The current threshold in nanoseconds.
    #[must_use]
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Re-arms the log with a new threshold (effective immediately).
    pub fn set_threshold_ns(&self, threshold_ns: u64) {
        self.threshold_ns.store(threshold_ns, Ordering::Relaxed);
    }

    /// Considers one completed request; logs it if over the threshold.
    /// Cheap when under: one atomic load, no lock.
    #[inline]
    pub fn observe(&self, trace_id: u64, opcode: &str, total_ns: u64) {
        let threshold = self.threshold_ns.load(Ordering::Relaxed);
        if total_ns < threshold {
            return;
        }
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(SlowRequest {
            trace_id,
            opcode: opcode.to_string(),
            total_ns,
            threshold_ns: threshold,
        });
    }

    /// The retained entries, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SlowRequest> {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logs_only_over_threshold_and_keeps_last_n() {
        let log = SlowLog::new(3, 100);
        log.observe(1, "Query", 50); // under: dropped
        for i in 0..5u64 {
            log.observe(i, "Query", 100 + i);
        }
        let entries = log.snapshot();
        assert_eq!(entries.len(), 3);
        let ids: Vec<u64> = entries.iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert!(entries.iter().all(|e| e.total_ns >= e.threshold_ns));
    }

    #[test]
    fn max_threshold_disables_logging() {
        let log = SlowLog::new(4, u64::MAX);
        log.observe(1, "Query", u64::MAX - 1);
        assert!(log.snapshot().is_empty());
        log.set_threshold_ns(10);
        log.observe(2, "Stats", 11);
        assert_eq!(log.snapshot().len(), 1);
    }
}
